#!/usr/bin/env python
"""Documentation checker: links resolve, snippets run, examples run.

Four phases, each selectable (all run by default):

- ``--links``: every relative markdown link in the repo's ``*.md`` files
  must point at an existing file/directory (anchors and external URLs
  are ignored).
- ``--snippets``: every ```` ```python ```` block in README.md and
  ARCHITECTURE.md is executed; blocks within one file share a namespace
  and run in order, so later blocks may use names an earlier one
  defined.  Blocks containing a literal ``...`` placeholder, or
  preceded by an ``<!-- no-run -->`` comment, are compile-checked but
  not executed.  Execution happens in a scratch directory so snippets
  may write files.
- ``--examples``: every ``examples/*.py`` script must exit 0.
- ``--cli-flags``: every ``python -m repro <cmd> ...`` command quoted in
  the repo's markdown (fenced blocks and inline code spans) must name a
  real subcommand, and every ``--flag`` it passes must appear in that
  subcommand's ``--help``.  Catches docs drifting from the argparse
  surface.

Stdlib only; exit status is the number of failing checks.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Tuple

REPO = Path(__file__).resolve().parent.parent
SNIPPET_FILES = ("README.md", "ARCHITECTURE.md")
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules", ".benchmarks"}

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(
    r"(?P<prefix>(?:<!--\s*no-run\s*-->\s*\n)?)```python\n(?P<body>.*?)```",
    re.DOTALL,
)


def iter_markdown_files() -> List[Path]:
    files = []
    for path in sorted(REPO.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        files.append(path)
    return files


def check_links() -> List[str]:
    failures = []
    for md in iter_markdown_files():
        text = md.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            if "/" not in target and "." not in target:
                # Bare word: almost certainly prose that happens to look
                # like a link (e.g. "ViewMailServer[TL=3](san)" in the
                # Figure-6 chain notation), not a file reference.
                continue
            resolved = (md.parent / target).resolve()
            if not resolved.exists():
                failures.append(
                    f"{md.relative_to(REPO)}: broken link -> {match.group(1)}"
                )
    return failures


def extract_snippets(md: Path) -> List[Tuple[int, str, bool]]:
    """``(line_number, code, runnable)`` per python fence, in order."""
    text = md.read_text(encoding="utf-8")
    snippets = []
    for match in FENCE_RE.finditer(text):
        line = text[: match.start()].count("\n") + 1
        body = match.group("body")
        runnable = not match.group("prefix") and "..." not in body
        snippets.append((line, body, runnable))
    return snippets


def check_snippets() -> List[str]:
    failures = []
    for name in SNIPPET_FILES:
        md = REPO / name
        if not md.exists():
            failures.append(f"{name}: file missing")
            continue
        namespace: dict = {"__name__": f"snippet:{name}"}
        with tempfile.TemporaryDirectory(prefix="docs-snippets-") as scratch:
            cwd = os.getcwd()
            os.chdir(scratch)
            try:
                for line, code, runnable in extract_snippets(md):
                    label = f"{name}:{line}"
                    try:
                        compiled = compile(code, label, "exec")
                    except SyntaxError as exc:
                        failures.append(f"{label}: does not parse: {exc}")
                        continue
                    if not runnable:
                        continue
                    try:
                        exec(compiled, namespace)
                    except Exception as exc:  # noqa: BLE001 - report, don't crash
                        failures.append(
                            f"{label}: raised {type(exc).__name__}: {exc}"
                        )
            finally:
                os.chdir(cwd)
    return failures


def check_examples() -> List[str]:
    failures = []
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    for script in sorted((REPO / "examples").glob("*.py")):
        proc = subprocess.run(
            [sys.executable, str(script)],
            cwd=REPO,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        if proc.returncode != 0:
            tail = "\n".join(proc.stderr.strip().splitlines()[-5:])
            failures.append(
                f"examples/{script.name}: exit {proc.returncode}\n    {tail}"
            )
    return failures


FLAG_RE = re.compile(r"--[a-zA-Z][\w-]*")
CODE_SPAN_RE = re.compile(r"`([^`\n]+)`")
ANY_FENCE_RE = re.compile(r"```[^\n]*\n(.*?)```", re.DOTALL)

_help_cache: dict = {}


def _repro_help(subcommand: str) -> Tuple[int, str]:
    """``(exit_status, combined output)`` of ``python -m repro <cmd> --help``."""
    if subcommand not in _help_cache:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", subcommand, "--help"],
            cwd=REPO,
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        _help_cache[subcommand] = (proc.returncode, proc.stdout + proc.stderr)
    return _help_cache[subcommand]


def iter_cli_commands(md: Path) -> List[Tuple[int, str]]:
    """``(line_number, command_text)`` for each ``-m repro`` invocation.

    Looks inside fenced blocks of any language and inline code spans;
    backslash continuations inside a fence are joined into one command.
    """
    text = md.read_text(encoding="utf-8")
    commands = []

    def add(line: int, chunk: str) -> None:
        if "-m repro" in chunk:
            commands.append((line, chunk))

    fence_spans = []
    for match in ANY_FENCE_RE.finditer(text):
        fence_spans.append((match.start(), match.end()))
        body = match.group(1)
        base_line = text[: match.start()].count("\n") + 2
        joined: List[str] = []
        start_line = base_line
        for offset, raw in enumerate(body.splitlines()):
            if not joined:
                start_line = base_line + offset
            joined.append(raw.rstrip("\\").strip())
            if raw.rstrip().endswith("\\"):
                continue
            add(start_line, " ".join(joined))
            joined = []
        if joined:
            add(start_line, " ".join(joined))

    for match in CODE_SPAN_RE.finditer(text):
        if any(lo <= match.start() < hi for lo, hi in fence_spans):
            continue
        add(text[: match.start()].count("\n") + 1, match.group(1))
    return commands


def check_cli_flags() -> List[str]:
    failures = []
    import shlex

    for md in iter_markdown_files():
        for line, command in iter_cli_commands(md):
            label = f"{md.relative_to(REPO)}:{line}"
            try:
                tokens = shlex.split(command)
            except ValueError:
                tokens = command.split()
            try:
                after = tokens[tokens.index("repro") + 1 :]
            except (ValueError, IndexError):
                continue
            subcommand = next((t for t in after if not t.startswith("-")), None)
            if subcommand is None or subcommand[0] in "<{[$":
                # Placeholder, e.g. "<cmd>" or a quoted usage line's
                # "{fig5,fig6,...}" choice set — nothing to validate.
                continue
            status, help_text = _repro_help(subcommand)
            if status != 0:
                failures.append(f"{label}: unknown subcommand '{subcommand}'")
                continue
            known = set(FLAG_RE.findall(help_text))
            for token in after:
                flag = FLAG_RE.match(token)
                if flag and flag.group(0) not in known:
                    failures.append(
                        f"{label}: '{subcommand}' has no flag {flag.group(0)}"
                    )
    return failures


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", action="store_true")
    parser.add_argument("--snippets", action="store_true")
    parser.add_argument("--examples", action="store_true")
    parser.add_argument("--cli-flags", action="store_true")
    args = parser.parse_args(argv)
    run_all = not (args.links or args.snippets or args.examples or args.cli_flags)

    sys.path.insert(0, str(REPO / "src"))
    failures: List[str] = []
    if run_all or args.links:
        failures += check_links()
    if run_all or args.snippets:
        failures += check_snippets()
    if run_all or args.examples:
        failures += check_examples()
    if run_all or args.cli_flags:
        failures += check_cli_flags()

    for failure in failures:
        print(f"FAIL {failure}")
    if not failures:
        print("docs OK")
    return len(failures)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
