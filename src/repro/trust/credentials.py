"""Delegation credentials, dRBAC-style (paper §6).

The paper's second limitation: credential-to-property translation is a
service-specific function.  §6 proposes a service-independent mechanism:
"associate both network and service components with different types of
credentials, whose namespace refers to the properties of interest in
each case.  Transforming properties in one namespace into properties in
another then becomes a simple matter of issuing a different kind of
credential, which delegates to one all of the privileges associated with
the other."  The cited mechanism is dRBAC [10].

Model (a faithful miniature of dRBAC):

- a **role** is a namespaced name, ``"net.SecureLink"`` or
  ``"mail.Confidentiality=T"`` — written ``namespace.name``;
- an **attribution** credential asserts that a subject (a node or link)
  holds a role, signed by the namespace's issuing authority;
- a **delegation** credential asserts that any holder of role A also
  holds role B (possibly across namespaces), signed by B's authority —
  this is the translation step;
- credentials carry validity intervals and may be revoked; the engine
  re-derives the role closure on every query, which is what lets the
  monitoring integration react to credential expiry (§6: "continuous
  monitoring of credential validity").

Signatures are simulated by issuer identity checks: a credential for
namespace ``ns`` is only accepted if its issuer is ``ns``'s registered
authority.  (Real dRBAC uses public-key signatures; the *logic* —
namespace-scoped issuance and delegation-chain discovery — is what the
framework depends on, and that is reproduced exactly.)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

__all__ = ["Role", "Credential", "TrustError"]

_serials = itertools.count(1)


class TrustError(ValueError):
    """Malformed role/credential or unauthorized issuance."""


@dataclass(frozen=True)
class Role:
    """A namespaced role, e.g. ``Role("mail", "TrustLevel=3")``."""

    namespace: str
    name: str

    def __post_init__(self) -> None:
        if not self.namespace or not self.name:
            raise TrustError("role needs both a namespace and a name")
        if "." in self.namespace:
            raise TrustError(f"namespace may not contain '.': {self.namespace!r}")

    @classmethod
    def parse(cls, text: str) -> "Role":
        ns, _, name = text.partition(".")
        if not name:
            raise TrustError(f"malformed role {text!r}; expected 'namespace.name'")
        return cls(ns, name)

    def __str__(self) -> str:
        return f"{self.namespace}.{self.name}"


@dataclass(frozen=True)
class Credential:
    """One signed assertion.

    ``kind`` is ``"attribution"`` (subject holds role) or
    ``"delegation"`` (holders of ``from_role`` also hold ``role``).
    ``issuer`` must be the authority of ``role.namespace`` for the
    credential to be honored.  Validity is a half-open interval
    ``[valid_from, valid_until)`` in simulation milliseconds; ``None``
    bounds are open.
    """

    role: Role
    issuer: str
    subject: Optional[str] = None  # attribution target
    from_role: Optional[Role] = None  # delegation source
    valid_from: Optional[float] = None
    valid_until: Optional[float] = None
    serial: int = field(default_factory=lambda: next(_serials))

    def __post_init__(self) -> None:
        if (self.subject is None) == (self.from_role is None):
            raise TrustError(
                "credential must have exactly one of subject (attribution) "
                "or from_role (delegation)"
            )
        if (
            self.valid_from is not None
            and self.valid_until is not None
            and self.valid_from >= self.valid_until
        ):
            raise TrustError("empty validity interval")

    @property
    def kind(self) -> str:
        return "attribution" if self.subject is not None else "delegation"

    def valid_at(self, now: Optional[float]) -> bool:
        """Is the credential within its validity interval at ``now``?

        ``now=None`` means "ignore time" (static queries).
        """
        if now is None:
            return True
        if self.valid_from is not None and now < self.valid_from:
            return False
        if self.valid_until is not None and now >= self.valid_until:
            return False
        return True

    def __repr__(self) -> str:
        if self.subject is not None:
            return f"<Cred#{self.serial} {self.subject} holds {self.role} (by {self.issuer})>"
        return f"<Cred#{self.serial} {self.from_role} => {self.role} (by {self.issuer})>"
