"""The trust engine: role-closure queries over delegation graphs.

Answers "which roles does subject X hold at time t?" by forward chaining
from X's attribution credentials through valid delegation credentials,
honoring namespace authorities and revocation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from .credentials import Credential, Role, TrustError

__all__ = ["TrustEngine"]


class TrustEngine:
    """Credential store + role-closure evaluator."""

    def __init__(self) -> None:
        self._authorities: Dict[str, str] = {}
        self._credentials: List[Credential] = []
        self._revoked: Set[int] = set()

    # -- authorities ---------------------------------------------------------
    def register_authority(self, namespace: str, authority: str) -> None:
        """Declare who may issue credentials for ``namespace``."""
        if namespace in self._authorities:
            raise TrustError(f"namespace {namespace!r} already has an authority")
        self._authorities[namespace] = authority

    def authority_of(self, namespace: str) -> Optional[str]:
        return self._authorities.get(namespace)

    # -- issuance ------------------------------------------------------------
    def issue(self, credential: Credential) -> Credential:
        """Accept a credential if its issuer owns the role's namespace."""
        authority = self._authorities.get(credential.role.namespace)
        if authority is None:
            raise TrustError(
                f"no authority registered for namespace {credential.role.namespace!r}"
            )
        if credential.issuer != authority:
            raise TrustError(
                f"{credential.issuer!r} may not issue for namespace "
                f"{credential.role.namespace!r} (authority is {authority!r})"
            )
        self._credentials.append(credential)
        return credential

    def attribute(
        self,
        subject: str,
        role: Role | str,
        issuer: Optional[str] = None,
        valid_from: Optional[float] = None,
        valid_until: Optional[float] = None,
    ) -> Credential:
        """Convenience: issue an attribution credential."""
        role = Role.parse(role) if isinstance(role, str) else role
        issuer = issuer or self._authorities.get(role.namespace, "")
        return self.issue(
            Credential(
                role=role,
                issuer=issuer,
                subject=subject,
                valid_from=valid_from,
                valid_until=valid_until,
            )
        )

    def delegate(
        self,
        from_role: Role | str,
        to_role: Role | str,
        issuer: Optional[str] = None,
        valid_from: Optional[float] = None,
        valid_until: Optional[float] = None,
    ) -> Credential:
        """Convenience: issue a delegation (translation) credential."""
        from_role = Role.parse(from_role) if isinstance(from_role, str) else from_role
        to_role = Role.parse(to_role) if isinstance(to_role, str) else to_role
        issuer = issuer or self._authorities.get(to_role.namespace, "")
        return self.issue(
            Credential(
                role=to_role,
                issuer=issuer,
                from_role=from_role,
                valid_from=valid_from,
                valid_until=valid_until,
            )
        )

    def revoke(self, credential: Credential) -> None:
        """Revoke by serial; takes effect on the next query."""
        self._revoked.add(credential.serial)

    def is_revoked(self, credential: Credential) -> bool:
        return credential.serial in self._revoked

    # -- queries ------------------------------------------------------------
    def _live(self, now: Optional[float]) -> List[Credential]:
        return [
            c
            for c in self._credentials
            if c.serial not in self._revoked and c.valid_at(now)
        ]

    def roles_of(self, subject: str, now: Optional[float] = None) -> Set[Role]:
        """Role closure of ``subject`` at time ``now`` (forward chaining)."""
        live = self._live(now)
        held: Set[Role] = {
            c.role for c in live if c.subject == subject
        }
        delegations: Dict[Role, List[Role]] = {}
        for c in live:
            if c.from_role is not None:
                delegations.setdefault(c.from_role, []).append(c.role)
        queue = deque(held)
        while queue:
            role = queue.popleft()
            for target in delegations.get(role, ()):
                if target not in held:
                    held.add(target)
                    queue.append(target)
        return held

    def holds(self, subject: str, role: Role | str, now: Optional[float] = None) -> bool:
        role = Role.parse(role) if isinstance(role, str) else role
        return role in self.roles_of(subject, now)

    def chain(
        self, subject: str, role: Role | str, now: Optional[float] = None
    ) -> Optional[List[Credential]]:
        """A witnessing credential chain from subject to role, or None.

        BFS over live credentials; the returned list starts with an
        attribution and ends with the credential granting ``role``.
        """
        role = Role.parse(role) if isinstance(role, str) else role
        live = self._live(now)
        # parent pointers over roles
        start: Dict[Role, Credential] = {}
        for c in live:
            if c.subject == subject and c.role not in start:
                start[c.role] = c
        prev: Dict[Role, Credential] = dict(start)
        queue = deque(start)
        while queue:
            cur = queue.popleft()
            if cur == role:
                # walk back
                path: List[Credential] = []
                r = role
                while True:
                    cred = prev[r]
                    path.append(cred)
                    if cred.subject is not None:
                        break
                    assert cred.from_role is not None
                    r = cred.from_role
                path.reverse()
                return path
            for c in live:
                if c.from_role == cur and c.role not in prev:
                    prev[c.role] = c
                    queue.append(c.role)
        return None

    def __len__(self) -> int:
        return len(self._credentials) - len(
            self._revoked & {c.serial for c in self._credentials}
        )
