"""dRBAC-style decentralized trust management (paper §6 extension)."""

from .credentials import Credential, Role, TrustError
from .engine import TrustEngine
from .translator import TrustTranslator, parse_role_value

__all__ = [
    "Role",
    "Credential",
    "TrustError",
    "TrustEngine",
    "TrustTranslator",
    "parse_role_value",
]
