"""Service-independent credential translation via the trust engine.

This realizes §6's proposal end to end: network authorities attribute
roles in the ``net`` namespace to nodes and links ("net.trust=3",
"net.secure"); the *service* authority issues delegation credentials
translating those into roles in its own namespace
("mail.TrustLevel=3", "mail.Confidentiality=T"); the planner then reads
node/path environments straight out of role closures — no
service-specific translation *function* anywhere.

Role-to-property convention: a role named ``<Property>=<value>`` in the
service's namespace asserts that property value; values parse as
``T``/``F`` booleans, integers, floats, or strings.  When a subject
holds several values of one property, numeric properties resolve to the
maximum for ``at_least`` match modes, minimum for ``at_most``, and the
latest-issued otherwise; booleans resolve to *and* over path hops.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..network.credentials import CredentialTranslator, Environment
from ..network.topology import LinkInfo, NodeInfo, PathInfo
from ..spec import ServiceSpec
from .engine import TrustEngine

__all__ = ["TrustTranslator", "parse_role_value"]


def parse_role_value(text: str) -> Any:
    """Parse the value part of a ``Property=value`` role name."""
    if text == "T":
        return True
    if text == "F":
        return False
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            continue
    return text


class TrustTranslator(CredentialTranslator):
    """A :class:`CredentialTranslator` backed by a :class:`TrustEngine`.

    ``clock`` supplies the query time (wire it to ``sim.now`` so
    credential expiry affects planning); ``None`` ignores validity.
    """

    def __init__(
        self,
        engine: TrustEngine,
        service_namespace: str,
        spec: Optional[ServiceSpec] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.engine = engine
        self.namespace = service_namespace
        self.spec = spec
        self.clock = clock

    def _now(self) -> Optional[float]:
        return self.clock() if self.clock is not None else None

    def _match_mode(self, prop: str) -> str:
        if self.spec is not None and prop in self.spec.properties:
            return self.spec.properties[prop].match_mode
        return "exact"

    def _subject_properties(self, subject: str) -> Dict[str, Any]:
        values: Dict[str, List[Any]] = {}
        for role in self.engine.roles_of(subject, self._now()):
            if role.namespace != self.namespace or "=" not in role.name:
                continue
            prop, _, raw = role.name.partition("=")
            values.setdefault(prop, []).append(parse_role_value(raw))
        out: Dict[str, Any] = {}
        for prop, vals in values.items():
            out[prop] = self._resolve(prop, vals)
        return out

    def _resolve(self, prop: str, vals: List[Any]) -> Any:
        if len(vals) == 1:
            return vals[0]
        if all(isinstance(v, bool) for v in vals):
            return all(vals)
        if all(isinstance(v, (int, float)) for v in vals):
            mode = self._match_mode(prop)
            return min(vals) if mode == "at_most" else max(vals)
        return vals[-1]

    # -- CredentialTranslator hooks ----------------------------------------
    def node_environment(self, node: NodeInfo) -> Environment:
        return Environment(self._subject_properties(node.name))

    def path_environment(self, path: PathInfo) -> Environment:
        if not path.hops:
            # Local interactions inherit the node's own properties.
            return Environment(self._subject_properties(path.src))
        combined: Optional[Dict[str, Any]] = None
        for hop in path.hops:
            env = self._subject_properties(hop.name)
            if combined is None:
                combined = env
                continue
            merged: Dict[str, Any] = {}
            for prop in set(combined) & set(env):
                a, b = combined[prop], env[prop]
                if isinstance(a, bool) and isinstance(b, bool):
                    merged[prop] = a and b
                elif isinstance(a, (int, float)) and isinstance(b, (int, float)):
                    merged[prop] = min(a, b)
                elif a == b:
                    merged[prop] = a
                # differing non-orderable values: not vouched end-to-end
            combined = merged
        return Environment(combined or {})
