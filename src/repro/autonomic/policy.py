"""Declarative threshold policies over telemetry series.

The policy engine is the *detect* stage of the autonomic loop
(monitor -> detect -> plan -> evolve, after Dearle et al.,
arXiv:1006.4730): it rides the :class:`~repro.obs.timeseries.TelemetrySampler`
tick as a scan hook, evaluates each :class:`ThresholdRule` against the
latest sample of every matching series, and emits a typed
:class:`ScaleSignal` once a breach has been *sustained* for the rule's
hysteresis window (``sustain`` consecutive ticks).  Cooldown between
actions is deliberately not handled here — the
:class:`~repro.autonomic.manager.AutonomicManager` owns actuation and
rate-limits it — so the engine keeps firing every tick while a
violation persists, which is exactly what a cooldown gate needs to see.

Determinism: series are scanned in the sampler's sorted order, streak
state is keyed by ``(rule, series)``, and nothing here reads wall
clocks or entropy — same seed, same samples, same signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "ScaleSignal",
    "ThresholdRule",
    "PolicyEngine",
    "DEFAULT_RULES",
    "default_rules",
]


@dataclass(frozen=True)
class ScaleSignal:
    """One detected constraint violation, ready for actuation.

    ``value`` is the worst offending sample (max for ``above`` rules,
    min for ``below``), ``series`` its formatted key, and ``sustained``
    how many consecutive ticks that series has been in breach.
    """

    time_ms: float
    action: str  # "scale_out" | "scale_in" | "flush"
    rule: str
    series: str
    value: float
    threshold: float
    sustained: int

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (flight records and summary artifacts)."""
        return {
            "time_ms": self.time_ms,
            "action": self.action,
            "rule": self.rule,
            "series": self.series,
            "value": self.value,
            "threshold": self.threshold,
            "sustained": self.sustained,
        }


@dataclass
class ThresholdRule:
    """A declarative utilization constraint.

    A rule matches every sampler series named ``series`` whose labels
    contain ``labels`` as a subset.  Each matching series keeps its own
    breach streak; the rule fires when, depending on ``aggregate``:

    - ``"any"``: at least one series has been in breach for ``sustain``
      consecutive ticks (hot-spot detection), or
    - ``"all"``: *every* fresh matching series is in breach and the
      slowest streak has reached ``sustain`` (quorum cool-down — used
      for scale-in so one busy node vetoes retirement).

    ``max_age_ticks`` bounds staleness: a series whose latest sample is
    older than ``max_age_ticks * interval_ms`` is ignored (it belongs
    to a retired instance or a dead node).
    """

    name: str
    series: str
    threshold: float
    action: str
    direction: str = "above"  # "above" | "below"
    sustain: int = 3
    aggregate: str = "any"  # "any" | "all"
    labels: Dict[str, str] = field(default_factory=dict)
    max_age_ticks: float = 2.5

    def breached(self, value: float) -> bool:
        """Whether one sampled value crosses the threshold (inclusive)."""
        if self.direction == "above":
            return value >= self.threshold
        return value <= self.threshold


def default_rules(
    *,
    hot_utilization: float = 0.90,
    deep_queue: float = 16.0,
    slow_p99_ms: float = 1800.0,
    cold_utilization: float = 0.45,
    dirty_backlog: float = 512.0,
) -> List[ThresholdRule]:
    """The stock rule set used by ``SmockRuntime(autonomic=True)``.

    Scale-out triggers are ``any``-aggregated (one saturated node is a
    violation); the scale-in trigger is ``all``-aggregated over node
    utilization so retirement waits for the whole fleet to go quiet.
    Thresholds are tuned for the fig. 5 mail topology under the PR 7
    load cells (100-cpu nodes, 32-deep accept queues).
    """
    return [
        ThresholdRule(
            name="node-hot",
            series="node.cpu_utilization",
            threshold=hot_utilization,
            action="scale_out",
            direction="above",
            sustain=3,
        ),
        ThresholdRule(
            name="queue-deep",
            series="node.cpu_queue_depth",
            threshold=deep_queue,
            action="scale_out",
            direction="above",
            sustain=2,
        ),
        ThresholdRule(
            name="op-p99-slow",
            series="smock.request_sim_ms.p99",
            threshold=slow_p99_ms,
            action="scale_out",
            direction="above",
            sustain=4,
        ),
        ThresholdRule(
            name="node-cold",
            series="node.cpu_utilization",
            threshold=cold_utilization,
            action="scale_in",
            direction="below",
            sustain=8,
            aggregate="all",
        ),
        ThresholdRule(
            name="dirty-backlog",
            series="coherence.dirty_units",
            threshold=dirty_backlog,
            action="flush",
            direction="above",
            sustain=4,
        ),
    ]


#: Stock rules with the documented defaults (see DESIGN.md §8).
DEFAULT_RULES: List[ThresholdRule] = default_rules()


class PolicyEngine:
    """Evaluate threshold rules once per sampler tick.

    Attach with :meth:`attach` (registers a sampler scan hook) and
    subscribe actuation callbacks with :meth:`subscribe`.  The engine
    never schedules simulator events of its own — when the sampler is
    disabled the engine is inert, preserving byte-identical runs.
    """

    def __init__(
        self,
        sampler: Any,
        rules: Optional[List[ThresholdRule]] = None,
        on_signal: Optional[Callable[[ScaleSignal], None]] = None,
    ) -> None:
        self.sampler = sampler
        self.rules = list(DEFAULT_RULES if rules is None else rules)
        self.signals: List[ScaleSignal] = []
        self.evaluations = 0
        self._listeners: List[Callable[[ScaleSignal], None]] = []
        self._streaks: Dict[Tuple[str, Tuple[str, Any]], int] = {}
        self._attached = False
        if on_signal is not None:
            self._listeners.append(on_signal)

    # -- wiring ---------------------------------------------------------------
    def attach(self) -> "PolicyEngine":
        """Hook the engine into the sampler's per-tick scan list."""
        if not self._attached:
            self.sampler.add_scan(self._scan)
            self._attached = True
        return self

    def subscribe(self, fn: Callable[[ScaleSignal], None]) -> None:
        """Register a listener called synchronously for every signal."""
        self._listeners.append(fn)

    # -- introspection --------------------------------------------------------
    def streak(self, rule_name: str, series: Any) -> int:
        """Current consecutive-breach count for ``(rule, series)``."""
        return self._streaks.get((rule_name, (series.name, series.labels)), 0)

    # -- evaluation -----------------------------------------------------------
    def _matching(self, rule: ThresholdRule) -> List[Any]:
        required = rule.labels.items()
        out = []
        for ts in self.sampler.all_series():
            if ts.name != rule.series:
                continue
            if required:
                have = dict(ts.labels)
                if any(have.get(k) != v for k, v in required):
                    continue
            out.append(ts)
        return out

    def _scan(self, now: float) -> None:
        self.evaluations += 1
        interval = self.sampler.interval_ms or 1.0
        for rule in self.rules:
            fired = self._evaluate(rule, now, interval)
            if fired is not None:
                self.signals.append(fired)
                for fn in self._listeners:
                    fn(fired)

    def _evaluate(
        self, rule: ThresholdRule, now: float, interval: float
    ) -> Optional[ScaleSignal]:
        max_age = rule.max_age_ticks * interval
        fresh = 0
        breaches: List[Tuple[float, str, int]] = []  # (value, key, streak)
        for ts in self._matching(rule):
            latest = ts.latest()
            if latest is None:
                continue
            t_ms, value = latest
            if now - t_ms > max_age:
                continue
            fresh += 1
            key = (rule.name, (ts.name, ts.labels))
            if rule.breached(value):
                streak = self._streaks.get(key, 0) + 1
                self._streaks[key] = streak
                breaches.append((value, _format(ts), streak))
            else:
                self._streaks.pop(key, None)
        if not fresh:
            return None
        if rule.aggregate == "all":
            if len(breaches) != fresh:
                return None
            if min(streak for _v, _k, streak in breaches) < rule.sustain:
                return None
            candidates = breaches
        else:
            candidates = [b for b in breaches if b[2] >= rule.sustain]
            if not candidates:
                return None
        if rule.direction == "above":
            value, key, streak = max(candidates, key=lambda b: (b[0], b[1]))
        else:
            value, key, streak = min(candidates, key=lambda b: (b[0], b[1]))
        return ScaleSignal(
            time_ms=now,
            action=rule.action,
            rule=rule.name,
            series=key,
            value=value,
            threshold=rule.threshold,
            sustained=streak,
        )


def _format(ts: Any) -> str:
    if not ts.labels:
        return str(ts.name)
    inner = ",".join(f"{k}={v}" for k, v in ts.labels)
    return f"{ts.name}{{{inner}}}"
