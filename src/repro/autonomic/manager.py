"""Actuation of autonomic scale decisions (the *plan* + *evolve* stages).

The :class:`AutonomicManager` closes the loop the ROADMAP calls
"load-driven replanning": the :class:`~repro.autonomic.policy.PolicyEngine`
detects sustained utilization-constraint violations in the telemetry
series, and the manager turns them into replanning rounds through the
existing :class:`~repro.smock.replanner.ReplanManager` machinery — the
same deploy / rebind / flush-then-retire / anti-entropy path that
liveness failover uses, so elastic scale-out inherits all of PR 5's
state-preservation guarantees for free.

How a scale round differs from a liveness round:

- the trigger is a synthetic ``ChangeEvent(kind="utilization")``, which
  the replanner treats as an *attribute* trigger: every binding replans
  from scratch (the previous structure is exactly what is in question);
- before planning, the manager writes each binding's *measured* offered
  rate (sampled from its proxy's request counter) into
  ``PlanRequest.request_rate`` — clamped to the chain's single-node
  capacity ceiling so one overloaded binding stays plannable — which
  makes the planner's condition 3 (:mod:`repro.planner.load`) reject
  saturated co-location and spread chains across nodes;
- as each binding's plan lands, the manager reserves its computed CPU
  and bandwidth demand on the network (and bumps the topology epoch),
  so later bindings in the same round bin-pack around earlier ones
  instead of piling onto the same "best" node;
- before an instance is retired, the manager drains its in-flight
  requests (bounded wait), then the replanner's normal retire path
  flushes coherence buffers upstream and the anti-entropy sweep
  reconciles any buffers reported lost — no acked update is dropped.

Determinism: decisions derive only from sampled series and seeded
simulation state; the manager schedules work via the simulator and
keeps no wall-clock or RNG state of its own.  With
``SmockRuntime(autonomic=False)`` nothing here is constructed and runs
are byte-identical to a build without this module.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from ..network.monitor import ChangeEvent
from ..planner.load import compute_loads
from .policy import PolicyEngine, ScaleSignal, ThresholdRule

__all__ = ["AutonomicConfig", "AutonomicEvent", "AutonomicManager"]


@dataclass
class AutonomicConfig:
    """Knobs of the autonomic loop (all times in sim milliseconds)."""

    #: threshold rules; ``None`` uses :data:`~repro.autonomic.policy.DEFAULT_RULES`
    rules: Optional[List[ThresholdRule]] = None
    #: minimum gap between successive scale-out actuations
    cooldown_ms: float = 4000.0
    #: minimum gap between successive scale-in actuations (longer: the
    #: cost of retiring too eagerly is a re-scale-out flap)
    scale_in_cooldown_ms: float = 8000.0
    #: planner headroom: planned rates target this fraction of capacity
    headroom: float = 0.75
    #: offered-rate estimate: mean of the last N sampler ticks
    rate_window_ticks: int = 4
    #: floor on any planned per-binding rate (req/s)
    min_rate: float = 1.0
    #: scale-out requires this much total measured offered load (req/s)
    #: — saturation with no client traffic (e.g. bind-time planning work
    #: burning the server node's CPU) is not a reason to add replicas
    min_offered_per_s: float = 5.0
    #: bounded wait for in-flight requests before retiring an instance
    drain_timeout_ms: float = 2000.0
    #: poll interval while draining
    drain_poll_ms: float = 50.0

    @classmethod
    def coerce(cls, value: Any) -> Optional["AutonomicConfig"]:
        """Accept ``True`` / dict / instance; ``False``/``None`` -> None."""
        if not value:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(f"autonomic must be bool/dict/AutonomicConfig, got {value!r}")


@dataclass
class AutonomicEvent:
    """Record of one actuated autonomic decision (for tests/experiments)."""

    time_ms: float
    action: str
    rule: str
    series: str
    value: float
    #: per-client planned request rates written for this round
    planned_rates: Dict[str, float] = field(default_factory=dict)
    installed: List[str] = field(default_factory=list)
    retired: List[str] = field(default_factory=list)
    rebound: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (summary ``events`` list and flight records)."""
        return {
            "time_ms": self.time_ms,
            "action": self.action,
            "rule": self.rule,
            "series": self.series,
            "value": self.value,
            "planned_rates": dict(self.planned_rates),
            "installed": list(self.installed),
            "retired": list(self.retired),
            "rebound": list(self.rebound),
        }


class AutonomicManager:
    """Wire the policy engine to the replanner over a runtime.

    Construction is cheap and side-effect-free; :meth:`attach` (called
    by ``SmockRuntime`` when the ``autonomic`` knob is truthy) registers
    the sampler hooks.  Bindings arrive via :meth:`track` /
    :meth:`track_access` — the same call shape the replanner uses, and
    the manager forwards to it.
    """

    def __init__(self, runtime: Any, config: Optional[AutonomicConfig] = None) -> None:
        self.runtime = runtime
        self.config = config or AutonomicConfig()
        self.engine: Optional[PolicyEngine] = None
        self.events: List[AutonomicEvent] = []
        #: signals that were gated off (cooldown / already replanning)
        self.suppressed = 0
        self._last_fire: Dict[str, float] = {}
        self._pending: Optional[AutonomicEvent] = None
        self._mode: Optional[str] = None
        self._scaled_out = False
        self._baseline_views: Optional[int] = None
        #: most view replicas alive after any round (for scale-in grading)
        self.views_peak = 0
        #: per-proxy (prev_counter, rate-history) for offered-rate probes
        self._rate_state: Dict[int, Tuple[float, Deque[float]]] = {}
        #: planner reservations added by the previous round: (kind, name, amount)
        self._reserved: List[Tuple[str, str, float]] = []

    # -- wiring ---------------------------------------------------------------
    def attach(self) -> "AutonomicManager":
        """Register sampler hooks and claim the replanner's autonomic slot."""
        sampler = getattr(self.runtime, "sampler", None)
        if sampler is None or not sampler.enabled:
            raise RuntimeError(
                "autonomic needs telemetry: construct the runtime with "
                "telemetry_interval_ms set (or let autonomic default it)"
            )
        sampler.add_scan(self._rate_scan)
        self.engine = PolicyEngine(sampler, rules=self.config.rules)
        self.engine.attach()
        self.engine.subscribe(self._on_signal)
        self._ensure_replanner().autonomic = self
        return self

    @property
    def replanner(self) -> Any:
        return self._ensure_replanner()

    def _ensure_replanner(self) -> Any:
        """Reuse the runtime's replanner, or create a dormant one.

        The created :class:`~repro.network.monitor.NetworkMonitor` is
        *not started* — the autonomic loop triggers rounds itself, and a
        later ``enable_self_healing()`` call upgrades this replanner in
        place with a live monitor and failure detector.
        """
        existing = getattr(self.runtime, "replanner", None)
        if existing is not None:
            return existing
        from ..network.monitor import NetworkMonitor
        from ..smock.replanner import ReplanManager

        monitor = NetworkMonitor(self.runtime.sim, self.runtime.network)
        replanner = ReplanManager(self.runtime, monitor)
        self.runtime.monitor = monitor
        self.runtime.replanner = replanner
        return replanner

    # -- binding registration -------------------------------------------------
    def track(self, proxy: Any, request: Any, plan: Any) -> None:
        """Register an active binding (forwards to the replanner)."""
        self.replanner.track(proxy, request, plan)

    def track_access(self, proxy: Any, access: Any) -> None:
        """Register a binding from a GenericServer access record."""
        self.replanner.track_access(proxy, access)

    # -- offered-rate sampling ------------------------------------------------
    def _rate_scan(self, now: float) -> None:
        """Per-tick sampler scan: instantaneous offered req/s per binding."""
        sampler = self.runtime.sampler
        interval = sampler.interval_ms or 1.0
        replanner = getattr(self.runtime, "replanner", None)
        if replanner is None:
            return
        window = max(1, self.config.rate_window_ticks)
        for binding in replanner.bindings:
            proxy = binding.proxy
            count = float(getattr(proxy, "requests", 0))
            prev, history = self._rate_state.get(
                id(proxy), (count, deque(maxlen=window))
            )
            history = history if history.maxlen == window else deque(
                history, maxlen=window
            )
            rate = max(0.0, (count - prev) * 1000.0 / interval)
            history.append(rate)
            self._rate_state[id(proxy)] = (count, history)
            sampler.series(
                "autonomic.offered_per_s", client=binding.request.client_node
            ).append(now, rate)

    def _measured_rate(self, binding: Any) -> float:
        state = self._rate_state.get(id(binding.proxy))
        if not state or not state[1]:
            return 0.0
        history = state[1]
        return sum(history) / len(history)

    def _rate_cap(self, binding: Any) -> float:
        """Highest per-binding rate the planner can still place.

        Computed against the binding's *current* plan at unit rate: the
        binding's whole chain must fit under ``headroom`` of each node's
        total capacity and each component's declared capacity, so a
        measured rate beyond any single chain's ceiling is clamped and
        the overflow left to admission control to shed.
        """
        planner = self.runtime.primary.planner
        ctx = planner.ctx
        report = compute_loads(ctx, binding.plan, 1.0)
        cap = float("inf")
        headroom = self.config.headroom
        for node_name, demand in report.node_cpu.items():
            if demand <= 0:
                continue
            capacity = ctx.network.node(node_name).cpu_capacity
            cap = min(cap, headroom * capacity / demand)
        for idx, inbound in report.inbound.items():
            if inbound <= 0:
                continue
            unit = ctx.spec.unit(binding.plan.placements[idx].unit)
            cap = min(cap, headroom * unit.behaviors.capacity / inbound)
        return cap if cap != float("inf") else self.config.min_rate

    # -- signal actuation -----------------------------------------------------
    def _on_signal(self, signal: ScaleSignal) -> None:
        sim = self.runtime.sim
        now = sim.now
        metrics = self.runtime.obs.metrics
        metrics.inc("autonomic.signals", rule=signal.rule, action=signal.action)
        replanner = self.replanner
        if self._pending is not None or replanner._replanning:
            self.suppressed += 1
            return
        if signal.action == "scale_in" and not self._scaled_out:
            return
        cooldown = (
            self.config.scale_in_cooldown_ms
            if signal.action == "scale_in"
            else self.config.cooldown_ms
        )
        last = self._last_fire.get(signal.action)
        if last is not None and now - last < cooldown:
            self.suppressed += 1
            metrics.inc("autonomic.cooldown_skips", action=signal.action)
            return
        if signal.action == "flush":
            self._last_fire[signal.action] = now
            metrics.inc("autonomic.actions", action="flush")
            self._record_flight(signal)
            sim.process(self._flush_round(signal), name="autonomic-flush")
            return
        if not replanner.bindings:
            return
        if signal.action == "scale_out":
            total = sum(self._measured_rate(b) for b in replanner.bindings)
            if total < self.config.min_offered_per_s:
                self.suppressed += 1
                metrics.inc("autonomic.idle_skips")
                return
        if self._baseline_views is None:
            self._baseline_views = self._view_count()
        self._last_fire[signal.action] = now
        metrics.inc("autonomic.actions", action=signal.action)
        event = AutonomicEvent(
            time_ms=now,
            action=signal.action,
            rule=signal.rule,
            series=signal.series,
            value=signal.value,
        )
        for binding in replanner.bindings:
            cap = self._rate_cap(binding)
            measured = self._measured_rate(binding)
            planned = max(self.config.min_rate, min(measured, cap))
            binding.request.request_rate = planned
            event.planned_rates[binding.request.client_node] = round(planned, 3)
        self._pending = event
        self._mode = signal.action
        self._record_flight(signal)
        trigger = ChangeEvent(
            time_ms=now,
            kind="utilization",
            subject=signal.series,
            attribute=signal.rule,
            old=None,
            new=signal.value,
        )
        sim.process(replanner.replan_all(trigger=trigger), name="autonomic-replan")

    def _record_flight(self, signal: ScaleSignal) -> None:
        flight = getattr(self.runtime.sampler, "flight", None)
        if flight is not None:
            flight.record("autonomic", self.runtime.sim.now, data=signal.as_dict())

    def _flush_round(self, signal: ScaleSignal) -> Generator[Any, Any, None]:
        """Actuate a ``flush`` signal: push dirty replica buffers upstream."""
        bundle = self.runtime.primary
        directory = bundle.coherence
        flushed = 0
        for instance in list(bundle.instances.values()):
            if getattr(instance, "failed", False):
                continue
            replica_id = getattr(instance, "replica_id", None)
            flush = getattr(instance, "_sync", None)
            if replica_id is None or flush is None:
                continue
            entry = directory._replicas.get(replica_id)
            if entry is None or not entry.dirty:
                continue
            try:
                yield from flush()
                flushed += 1
            except Exception:  # noqa: BLE001 - partitioned replica: retry later
                continue
        metrics = self.runtime.obs.metrics
        if flushed:
            metrics.inc("autonomic.flushed_replicas", flushed)
        self.events.append(
            AutonomicEvent(
                time_ms=self.runtime.sim.now,
                action="flush",
                rule=signal.rule,
                series=signal.series,
                value=signal.value,
            )
        )

    # -- replanner round hooks ------------------------------------------------
    def on_round_start(self, trigger: Optional[ChangeEvent]) -> None:
        """Release the previous round's capacity reservations.

        Runs at the head of *every* replanning round while attached (the
        round will re-reserve per binding as plans land), so liveness
        rounds and autonomic rounds stay consistent with one ledger.
        """
        network = self.runtime.network
        if not self._reserved:
            return
        for kind, name, amount in self._reserved:
            if kind == "node":
                network.node(name).reserved_cpu -= amount
            else:
                self._link(name).reserved_mbps -= amount
        self._reserved.clear()
        network.touch()

    def on_binding_planned(self, binding: Any, plan: Any) -> None:
        """Reserve the planned chain's demand so later bindings in the
        same round bin-pack around it (condition 3 sees the load)."""
        rate = binding.request.request_rate
        if rate <= 0:
            return
        planner = self.runtime.primary.planner
        network = self.runtime.network
        report = compute_loads(planner.ctx, plan, rate)
        for node_name, demand in report.node_cpu.items():
            if demand <= 0:
                continue
            network.node(node_name).reserved_cpu += demand
            self._reserved.append(("node", node_name, demand))
        for link_name, mbps in report.link_mbps.items():
            if mbps <= 0:
                continue
            self._link(link_name).reserved_mbps += mbps
            self._reserved.append(("link", link_name, mbps))
        network.touch()

    def drain_instance(self, instance: Any) -> Generator[Any, Any, None]:
        """Bounded wait for an instance's in-flight requests to finish.

        Live migration step 1: the proxy has already been rebound to the
        new placement, so no *new* requests arrive here; we wait (up to
        ``drain_timeout_ms``) for requests already past admission to
        complete before the retire path flushes and uninstalls.
        """
        sim = self.runtime.sim
        inflight = getattr(instance, "inflight", 0)
        if not inflight:
            return
        start = sim.now
        deadline = start + self.config.drain_timeout_ms
        while getattr(instance, "inflight", 0) > 0 and sim.now < deadline:
            yield sim.timeout(self.config.drain_poll_ms)
        metrics = self.runtime.obs.metrics
        metrics.observe("autonomic.drain_wait_ms", sim.now - start)
        if getattr(instance, "inflight", 0) > 0:
            metrics.inc("autonomic.drain_timeouts")

    def on_round_end(self, event: Any) -> None:
        """Fold the round's results into the pending autonomic event."""
        pending = self._pending
        mode = self._mode
        self._pending = None
        self._mode = None
        self.views_peak = max(self.views_peak, self._view_count())
        if pending is None:
            return
        pending.installed = list(event.installed)
        pending.retired = list(event.retired)
        pending.rebound = list(event.rebound)
        self.events.append(pending)
        metrics = self.runtime.obs.metrics
        if mode == "scale_out":
            if event.installed:
                self._scaled_out = True
                metrics.inc("autonomic.scale_out.installed", len(event.installed))
        elif mode == "scale_in":
            if event.retired:
                metrics.inc("autonomic.scale_in.retired", len(event.retired))
            if (
                self._baseline_views is not None
                and self._view_count() <= self._baseline_views
            ):
                self._scaled_out = False
        flight = getattr(self.runtime.sampler, "flight", None)
        if flight is not None:
            flight.record(
                "autonomic_round", self.runtime.sim.now, data=pending.as_dict()
            )

    # -- helpers --------------------------------------------------------------
    def _view_count(self) -> int:
        bundle = self.runtime.primary
        count = 0
        for instance in bundle.instances.values():
            unit = bundle.spec.unit(instance.unit.name)
            if unit.is_view:
                count += 1
        # Keep the peak current even on runs where no replan round ever
        # fires (on_round_end is the other updater) — summaries read it.
        if count > self.views_peak:
            self.views_peak = count
        return count

    def _link(self, name: str) -> Any:
        for link in self.runtime.network.links():
            if link.name == name:
                return link
        raise KeyError(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AutonomicManager events={len(self.events)} "
            f"scaled_out={self._scaled_out} suppressed={self.suppressed}>"
        )
