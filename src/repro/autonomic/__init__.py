"""Autonomic load-driven replanning (ROADMAP item 4).

Closes the monitor -> detect -> plan -> evolve loop of Dearle et al.
(arXiv:1006.4730, arXiv:1006.4572) over this repo's pieces: the
telemetry sampler (PR 6) monitors, the :mod:`~repro.autonomic.policy`
engine detects sustained threshold violations, and the
:mod:`~repro.autonomic.manager` actuates them as utilization-triggered
replanning rounds — elastic view scale-out/in and live migration riding
the existing replanner/coherence machinery.  Everything is behind
``SmockRuntime(autonomic=False)``: off means not constructed, and runs
are byte-identical.
"""

from .manager import AutonomicConfig, AutonomicEvent, AutonomicManager
from .policy import DEFAULT_RULES, PolicyEngine, ScaleSignal, ThresholdRule, default_rules

__all__ = [
    "AutonomicConfig",
    "AutonomicEvent",
    "AutonomicManager",
    "DEFAULT_RULES",
    "PolicyEngine",
    "ScaleSignal",
    "ThresholdRule",
    "default_rules",
]
