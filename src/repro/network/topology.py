"""Static network model used by the planner.

The planner (paper §3.3) sees the network as a graph of nodes and links
"modeled in terms of their resource characteristics (CPU capacity,
bandwidth, latency) and application-independent credentials".  This
module provides that graph: :class:`NodeInfo`, :class:`LinkInfo`, the
:class:`Network` container, and path routing used to evaluate end-to-end
environments between candidate component placements.

A :class:`Network` can also be *materialized* into live simulation
objects (:class:`~repro.sim.SimNode`, :class:`~repro.sim.SimLink`) when a
deployment actually executes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..sim import SimLink, SimNode, Simulator, transfer_time_ms

__all__ = ["NodeInfo", "LinkInfo", "PathInfo", "Network", "NetworkError"]


class NetworkError(KeyError):
    """Unknown node/link or disconnected endpoints."""


@dataclass
class NodeInfo:
    """Planner-visible description of one host.

    ``credentials`` holds application-independent facts (e.g. site name,
    administrative domain, hardware class).  Services never read these
    directly; the credential-translation layer turns them into service
    properties (paper §3.3, §6).
    """

    name: str
    cpu_capacity: float = 1000.0
    credentials: Dict[str, Any] = field(default_factory=dict)
    #: remaining CPU budget, in work-units/sec, decremented as the
    #: planner commits components (condition 3).
    reserved_cpu: float = 0.0
    #: believed liveness — flipped by failure detectors, not by fault
    #: injection, so the planner's view lags reality by the detection
    #: latency (exactly as a real deployment's would).
    up: bool = True

    @property
    def free_cpu(self) -> float:
        return self.cpu_capacity - self.reserved_cpu

    def copy(self) -> "NodeInfo":
        return NodeInfo(
            name=self.name,
            cpu_capacity=self.cpu_capacity,
            credentials=dict(self.credentials),
            reserved_cpu=self.reserved_cpu,
            up=self.up,
        )


@dataclass
class LinkInfo:
    """Planner-visible description of one link (Figure 5 annotations)."""

    a: str
    b: str
    latency_ms: float = 0.0
    bandwidth_mbps: float = 100.0
    secure: bool = True
    credentials: Dict[str, Any] = field(default_factory=dict)
    reserved_mbps: float = 0.0
    #: liveness — a partitioned link is invisible to routing (traffic
    #: reroutes immediately, as IP would) but stays in the graph so the
    #: monitor can observe the outage and replanning can react.
    up: bool = True

    @property
    def name(self) -> str:
        return f"{self.a}<->{self.b}"

    @property
    def free_mbps(self) -> float:
        return self.bandwidth_mbps - self.reserved_mbps

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def copy(self) -> "LinkInfo":
        return LinkInfo(
            a=self.a,
            b=self.b,
            latency_ms=self.latency_ms,
            bandwidth_mbps=self.bandwidth_mbps,
            secure=self.secure,
            credentials=dict(self.credentials),
            reserved_mbps=self.reserved_mbps,
            up=self.up,
        )


@dataclass
class PathInfo:
    """Aggregate environment of a multi-hop path between two nodes.

    ``secure`` is the conjunction over hops; latency sums; bandwidth is
    the bottleneck minimum.  A zero-hop path (both components on the same
    node) is secure with zero latency and unbounded bandwidth.
    """

    src: str
    dst: str
    hops: Tuple[LinkInfo, ...]

    @property
    def latency_ms(self) -> float:
        return sum(h.latency_ms for h in self.hops)

    @property
    def bandwidth_mbps(self) -> float:
        if not self.hops:
            return float("inf")
        return min(h.bandwidth_mbps for h in self.hops)

    @property
    def free_mbps(self) -> float:
        if not self.hops:
            return float("inf")
        return min(h.free_mbps for h in self.hops)

    @property
    def secure(self) -> bool:
        return all(h.secure for h in self.hops)

    @property
    def is_local(self) -> bool:
        return not self.hops

    def transfer_time_ms(self, size_bytes: int) -> float:
        """Analytic end-to-end one-way transfer time for a message."""
        if not self.hops:
            return 0.0
        return sum(
            transfer_time_ms(size_bytes, h.bandwidth_mbps, h.latency_ms)
            for h in self.hops
        )


def _link_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class Network:
    """Mutable graph of :class:`NodeInfo` and :class:`LinkInfo`.

    Nodes are keyed by name; at most one link per node pair (the paper's
    topologies are simple graphs).  Shortest paths are by latency, which
    matches how the case-study deployments are reasoned about.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, NodeInfo] = {}
        self._links: Dict[Tuple[str, str], LinkInfo] = {}
        self._adj: Dict[str, List[str]] = {}
        self._path_cache: Dict[Tuple[str, str], PathInfo] = {}
        self._version = 0
        self._fingerprint: Optional[int] = None

    # -- construction ----------------------------------------------------
    def add_node(
        self,
        name: str,
        cpu_capacity: float = 1000.0,
        credentials: Optional[Dict[str, Any]] = None,
    ) -> NodeInfo:
        """Add a host; raises on duplicates."""
        if name in self._nodes:
            raise NetworkError(f"duplicate node {name!r}")
        info = NodeInfo(name, cpu_capacity, dict(credentials or {}))
        self._nodes[name] = info
        self._adj[name] = []
        self._invalidate()
        return info

    def add_link(
        self,
        a: str,
        b: str,
        latency_ms: float = 0.0,
        bandwidth_mbps: float = 100.0,
        secure: bool = True,
        credentials: Optional[Dict[str, Any]] = None,
    ) -> LinkInfo:
        """Add a link between existing nodes; raises on duplicates."""
        if a not in self._nodes:
            raise NetworkError(f"unknown node {a!r}")
        if b not in self._nodes:
            raise NetworkError(f"unknown node {b!r}")
        if a == b:
            raise NetworkError("self-links are not allowed")
        key = _link_key(a, b)
        if key in self._links:
            raise NetworkError(f"duplicate link {a!r}<->{b!r}")
        info = LinkInfo(a, b, latency_ms, bandwidth_mbps, secure, dict(credentials or {}))
        self._links[key] = info
        self._adj[a].append(b)
        self._adj[b].append(a)
        self._invalidate()
        return info

    def remove_link(self, a: str, b: str) -> None:
        """Delete a link (used by dynamic-replanning experiments)."""
        key = _link_key(a, b)
        if key not in self._links:
            raise NetworkError(f"no link {a!r}<->{b!r}")
        del self._links[key]
        self._adj[a].remove(b)
        self._adj[b].remove(a)
        self._invalidate()

    def _invalidate(self) -> None:
        self._path_cache.clear()
        self._version += 1
        self._fingerprint = None

    @property
    def version(self) -> int:
        """Bumped on every topology/attribute mutation via this API."""
        return self._version

    def state_fingerprint(self) -> int:
        """Stable hash of all planning-relevant network state.

        Covers exactly what a search reads: per node the liveness,
        CPU capacity/reservation and credentials; per link the liveness,
        latency, bandwidth/reservation, security flag and credentials.
        Computed lazily and cached until the next mutation, so it costs
        one dict scan per topology change, not per lookup.

        Unlike :attr:`version` (which increases monotonically), the
        fingerprint is *content-based*: a crash/restart cycle or a
        flapping link returns the network to a previously seen
        fingerprint, letting the :class:`~repro.planner.cache.PlanCache`
        recognize the recurring world and serve plans it already solved.
        """
        if self._fingerprint is None:
            nodes = tuple(
                (
                    n.name,
                    n.up,
                    n.cpu_capacity,
                    n.reserved_cpu,
                    tuple(sorted((k, repr(v)) for k, v in n.credentials.items())),
                )
                for n in sorted(self._nodes.values(), key=lambda n: n.name)
            )
            links = tuple(
                (
                    l.a,
                    l.b,
                    l.up,
                    l.latency_ms,
                    l.bandwidth_mbps,
                    l.reserved_mbps,
                    l.secure,
                    tuple(sorted((k, repr(v)) for k, v in l.credentials.items())),
                )
                for l in sorted(self._links.values(), key=lambda l: (l.a, l.b))
            )
            self._fingerprint = hash((nodes, links))
        return self._fingerprint

    def touch(self) -> None:
        """Record an external attribute mutation (e.g. by a monitor)."""
        self._invalidate()

    # -- liveness (fault tolerance layer) ---------------------------------
    def set_link_up(self, a: str, b: str, up: bool) -> LinkInfo:
        """Partition/heal a link; routing reacts immediately."""
        info = self.link(a, b)
        if info.up != up:
            info.up = up
            self._invalidate()
        return info

    def set_node_up(self, name: str, up: bool) -> NodeInfo:
        """Record believed node liveness (failure detectors call this)."""
        info = self.node(name)
        if info.up != up:
            info.up = up
            self._invalidate()
        return info

    # -- lookup ----------------------------------------------------------
    def node(self, name: str) -> NodeInfo:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def link(self, a: str, b: str) -> LinkInfo:
        try:
            return self._links[_link_key(a, b)]
        except KeyError:
            raise NetworkError(f"no link {a!r}<->{b!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def has_link(self, a: str, b: str) -> bool:
        return _link_key(a, b) in self._links

    def nodes(self) -> Iterator[NodeInfo]:
        return iter(self._nodes.values())

    def links(self) -> Iterator[LinkInfo]:
        return iter(self._links.values())

    def node_names(self) -> List[str]:
        return list(self._nodes)

    def neighbors(self, name: str) -> Sequence[str]:
        if name not in self._adj:
            raise NetworkError(f"unknown node {name!r}")
        return tuple(self._adj[name])

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def n_links(self) -> int:
        return len(self._links)

    # -- routing -----------------------------------------------------------
    def path(self, src: str, dst: str) -> PathInfo:
        """Lowest-latency path from ``src`` to ``dst`` (Dijkstra, cached).

        Partitioned links and believed-dead intermediate nodes are
        invisible to routing.  The endpoints themselves are *not*
        liveness-checked: a message may be routed toward a crashed host
        (and fail there) exactly as IP would carry it.  Raises
        :class:`NetworkError` if disconnected.
        """
        if src not in self._nodes:
            raise NetworkError(f"unknown node {src!r}")
        if dst not in self._nodes:
            raise NetworkError(f"unknown node {dst!r}")
        if src == dst:
            return PathInfo(src, dst, ())
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached

        dist: Dict[str, float] = {src: 0.0}
        prev: Dict[str, str] = {}
        heap: List[Tuple[float, str]] = [(0.0, src)]
        while heap:
            d, u = heapq.heappop(heap)
            if u == dst:
                break
            if d > dist.get(u, float("inf")):
                continue
            if u != src and not self._nodes[u].up:
                continue  # dead routers forward nothing
            for v in self._adj[u]:
                link = self._links[_link_key(u, v)]
                if not link.up:
                    continue
                nd = d + link.latency_ms
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        if dst not in dist:
            raise NetworkError(f"no path {src!r} -> {dst!r}")

        hops: List[LinkInfo] = []
        cur = dst
        while cur != src:
            p = prev[cur]
            hops.append(self._links[_link_key(p, cur)])
            cur = p
        hops.reverse()
        info = PathInfo(src, dst, tuple(hops))
        self._path_cache[key] = info
        self._path_cache[(dst, src)] = PathInfo(dst, src, tuple(reversed(hops)))
        return info

    def connected(self, src: str, dst: str) -> bool:
        try:
            self.path(src, dst)
            return True
        except NetworkError:
            return False

    # -- reservations (planner condition 3 bookkeeping) --------------------
    def snapshot(self) -> "Network":
        """Deep copy for what-if planning without mutating live state."""
        other = Network()
        for n in self._nodes.values():
            other._nodes[n.name] = n.copy()
            other._adj[n.name] = list(self._adj[n.name])
        for k, l in self._links.items():
            other._links[k] = l.copy()
        other._version = self._version
        return other

    # -- materialization ----------------------------------------------------
    def materialize(self, sim: Simulator) -> Tuple[Dict[str, SimNode], Dict[Tuple[str, str], SimLink]]:
        """Instantiate live simulation nodes/links mirroring this graph."""
        nodes = {
            n.name: SimNode(sim, n.name, n.cpu_capacity, dict(n.credentials))
            for n in self._nodes.values()
        }
        links = {
            key: SimLink(
                sim, l.a, l.b, l.latency_ms, l.bandwidth_mbps, l.secure, l.name
            )
            for key, l in self._links.items()
        }
        return nodes, links

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Network nodes={len(self._nodes)} links={len(self._links)}>"
