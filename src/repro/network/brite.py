"""BRITE-style random topology generation.

The paper's case-study network "was generated using Boston University's
BRITE tool" [19].  BRITE's two classic flat router-level models are
reimplemented here with the same parameter surface:

- **Waxman**: nodes placed uniformly in a plane; an edge (u, v) exists
  with probability ``alpha * exp(-d(u, v) / (beta * L))`` where ``L`` is
  the maximum possible distance.  Incremental growth with ``m`` edges per
  joining node guarantees connectivity.
- **Barabási–Albert** (preferential attachment): each joining node
  connects ``m`` edges to existing nodes with probability proportional
  to their degree.

Both are seeded and deterministic.  Link latencies derive from Euclidean
distance (speed-of-light-ish scaling) and bandwidths are drawn uniformly
from a configurable range, mirroring BRITE's bandwidth assignment modes.
A fraction of links can be marked insecure to produce heterogeneous
security environments for the planner.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .topology import Network

__all__ = ["BriteConfig", "generate_waxman", "generate_barabasi_albert", "generate"]


@dataclass
class BriteConfig:
    """Parameters shared by the generator models.

    Defaults follow BRITE's documented defaults (alpha=0.15, beta=0.2,
    1000x1000 plane).
    """

    n_nodes: int = 20
    m_edges: int = 2  #: new edges per joining node (incremental growth)
    alpha: float = 0.15
    beta: float = 0.2
    plane_size: float = 1000.0
    #: latency per unit of Euclidean distance, in ms (distance scaling)
    ms_per_unit: float = 0.05
    bandwidth_range_mbps: Tuple[float, float] = (8.0, 100.0)
    cpu_capacity_range: Tuple[float, float] = (500.0, 2000.0)
    #: probability that a generated link is flagged insecure
    insecure_fraction: float = 0.3
    #: trust level assigned to each node, drawn uniformly from this range
    trust_level_range: Tuple[int, int] = (1, 5)
    seed: int = 0
    node_prefix: str = "n"

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if not 1 <= self.m_edges < self.n_nodes:
            raise ValueError("m_edges must be in [1, n_nodes)")
        if not 0.0 <= self.insecure_fraction <= 1.0:
            raise ValueError("insecure_fraction must be in [0, 1]")


def _place_nodes(cfg: BriteConfig, rng: random.Random) -> List[Tuple[float, float]]:
    return [
        (rng.uniform(0, cfg.plane_size), rng.uniform(0, cfg.plane_size))
        for _ in range(cfg.n_nodes)
    ]


def _add_nodes(net: Network, cfg: BriteConfig, rng: random.Random) -> List[str]:
    names = []
    for i in range(cfg.n_nodes):
        name = f"{cfg.node_prefix}{i}"
        lo, hi = cfg.cpu_capacity_range
        tl_lo, tl_hi = cfg.trust_level_range
        net.add_node(
            name,
            cpu_capacity=rng.uniform(lo, hi),
            credentials={
                "trust_level": rng.randint(tl_lo, tl_hi),
                "site": f"site{i % max(1, cfg.n_nodes // 5)}",
            },
        )
        names.append(name)
    return names


def _add_link(
    net: Network,
    cfg: BriteConfig,
    rng: random.Random,
    names: List[str],
    pos: List[Tuple[float, float]],
    i: int,
    j: int,
) -> None:
    (x1, y1), (x2, y2) = pos[i], pos[j]
    dist = math.hypot(x1 - x2, y1 - y2)
    lo, hi = cfg.bandwidth_range_mbps
    net.add_link(
        names[i],
        names[j],
        latency_ms=max(0.1, dist * cfg.ms_per_unit),
        bandwidth_mbps=rng.uniform(lo, hi),
        secure=rng.random() >= cfg.insecure_fraction,
    )


def generate_waxman(cfg: BriteConfig) -> Network:
    """Incremental-growth Waxman topology (BRITE's RTWaxman model)."""
    rng = random.Random(cfg.seed)
    net = Network()
    pos = _place_nodes(cfg, rng)
    names = _add_nodes(net, cfg, rng)
    max_dist = cfg.plane_size * math.sqrt(2.0)

    for i in range(1, cfg.n_nodes):
        # Connect node i to up to m existing nodes, Waxman-weighted.
        candidates = list(range(i))
        weights = []
        for j in candidates:
            (x1, y1), (x2, y2) = pos[i], pos[j]
            d = math.hypot(x1 - x2, y1 - y2)
            weights.append(cfg.alpha * math.exp(-d / (cfg.beta * max_dist)))
        chosen: List[int] = []
        # Weighted sampling without replacement.
        pool = list(zip(candidates, weights))
        for _ in range(min(cfg.m_edges, len(pool))):
            total = sum(w for _, w in pool)
            if total <= 0:
                j = pool[rng.randrange(len(pool))][0]
            else:
                r = rng.uniform(0, total)
                acc = 0.0
                j = pool[-1][0]
                for cand, w in pool:
                    acc += w
                    if r <= acc:
                        j = cand
                        break
            chosen.append(j)
            pool = [(c, w) for c, w in pool if c != j]
        for j in chosen:
            _add_link(net, cfg, rng, names, pos, i, j)
    return net


def generate_barabasi_albert(cfg: BriteConfig) -> Network:
    """Preferential-attachment topology (BRITE's RTBarabasiAlbert model)."""
    rng = random.Random(cfg.seed)
    net = Network()
    pos = _place_nodes(cfg, rng)
    names = _add_nodes(net, cfg, rng)

    # Degree-weighted target list (repeat node index once per degree).
    targets: List[int] = [0]
    for i in range(1, cfg.n_nodes):
        chosen: List[int] = []
        pool = list(set(targets)) if targets else [0]
        for _ in range(min(cfg.m_edges, len(pool))):
            # Sample proportional to degree from the repeat list, skipping
            # already-chosen endpoints.
            for _attempt in range(64):
                j = targets[rng.randrange(len(targets))]
                if j not in chosen and j != i:
                    break
            else:
                remaining = [p for p in pool if p not in chosen and p != i]
                if not remaining:
                    break
                j = rng.choice(remaining)
            chosen.append(j)
        if not chosen and i > 0:
            chosen = [i - 1]
        for j in chosen:
            _add_link(net, cfg, rng, names, pos, i, j)
            targets.extend((i, j))
    return net


_MODELS = {
    "waxman": generate_waxman,
    "barabasi_albert": generate_barabasi_albert,
    "ba": generate_barabasi_albert,
}


def generate(model: str = "waxman", cfg: Optional[BriteConfig] = None, **kwargs) -> Network:
    """Generate a topology by model name ('waxman' or 'barabasi_albert').

    ``kwargs`` override :class:`BriteConfig` fields when ``cfg`` is None.
    """
    if cfg is None:
        cfg = BriteConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either cfg or keyword overrides, not both")
    try:
        fn = _MODELS[model.lower()]
    except KeyError:
        raise ValueError(
            f"unknown model {model!r}; expected one of {sorted(_MODELS)}"
        ) from None
    return fn(cfg)
