"""Translation of network credentials into service properties.

The framework keeps service *properties* semantics-free; a node's or
link's application-independent *credentials* (site, domain, shaper
class...) must be translated into the properties a given service cares
about "based on external service-specific functions" (paper §3.3).

Two translator flavours are provided:

- :class:`FunctionTranslator` — arbitrary Python callables, the paper's
  current mechanism.
- :class:`RuleTranslator` — a declarative credential->property rule
  table.  This is the stepping stone towards the dRBAC-based
  service-independent mechanism sketched in §6 (fully realized in
  :mod:`repro.trust`).

Both produce an :class:`Environment`: the bag of property values the
planner feeds into installation conditions and property-modification
rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from .topology import LinkInfo, NodeInfo, PathInfo

__all__ = [
    "Environment",
    "CredentialTranslator",
    "FunctionTranslator",
    "RuleTranslator",
    "CredentialRule",
]


@dataclass(frozen=True)
class Environment:
    """Service-property values describing a node or path environment.

    Accessed like a read-only mapping.  Missing properties return the
    sentinel ``None``, which property-modification rules treat as "ANY".
    """

    values: Mapping[str, Any] = field(default_factory=dict)

    def get(self, prop: str, default: Any = None) -> Any:
        return self.values.get(prop, default)

    def __getitem__(self, prop: str) -> Any:
        return self.values[prop]

    def __contains__(self, prop: str) -> bool:
        return prop in self.values

    def merged(self, other: "Environment") -> "Environment":
        """Right-biased merge (``other`` wins on conflicts)."""
        merged = dict(self.values)
        merged.update(other.values)
        return Environment(merged)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.values.items()))
        return f"Environment({inner})"


EMPTY_ENVIRONMENT = Environment({})


class CredentialTranslator:
    """Base translator: override the two hooks.

    The default translation is empty (no service properties derivable
    from the environment), which makes every installation condition that
    requires a property fail closed — the safe default for a
    security-oriented framework.
    """

    def node_environment(self, node: NodeInfo) -> Environment:
        """Service properties of a host environment."""
        return EMPTY_ENVIRONMENT

    def path_environment(self, path: PathInfo) -> Environment:
        """Service properties of a (possibly multi-hop) path environment."""
        return EMPTY_ENVIRONMENT


class FunctionTranslator(CredentialTranslator):
    """Translator built from two plain callables (paper's current design)."""

    def __init__(
        self,
        node_fn: Optional[Callable[[NodeInfo], Dict[str, Any]]] = None,
        path_fn: Optional[Callable[[PathInfo], Dict[str, Any]]] = None,
    ) -> None:
        self._node_fn = node_fn
        self._path_fn = path_fn

    def node_environment(self, node: NodeInfo) -> Environment:
        if self._node_fn is None:
            return EMPTY_ENVIRONMENT
        return Environment(dict(self._node_fn(node)))

    def path_environment(self, path: PathInfo) -> Environment:
        if self._path_fn is None:
            return EMPTY_ENVIRONMENT
        return Environment(dict(self._path_fn(path)))


@dataclass(frozen=True)
class CredentialRule:
    """One declarative translation: credential key -> property name.

    ``value_map`` optionally remaps credential values; ``default`` is
    used when the credential is absent.  ``None`` default means the
    property is simply not emitted for that environment.
    """

    credential: str
    property: str
    value_map: Optional[Mapping[Any, Any]] = None
    default: Any = None

    def apply(self, credentials: Mapping[str, Any], out: Dict[str, Any]) -> None:
        if self.credential in credentials:
            raw = credentials[self.credential]
            if self.value_map is not None:
                if raw in self.value_map:
                    out[self.property] = self.value_map[raw]
                elif self.default is not None:
                    out[self.property] = self.default
            else:
                out[self.property] = raw
        elif self.default is not None:
            out[self.property] = self.default


class RuleTranslator(CredentialTranslator):
    """Declarative rule-table translator.

    Node rules read ``NodeInfo.credentials``; link rules read each hop's
    credentials plus the built-in pseudo-credentials ``secure`` (bool),
    ``latency_ms`` and ``bandwidth_mbps``.  Path translation combines the
    per-hop results with per-property *combiners* (default: boolean
    ``and`` for bools, ``min`` for numbers, equality-or-None otherwise) —
    the conservative aggregate for multi-hop environments.
    """

    def __init__(
        self,
        node_rules: Optional[list[CredentialRule]] = None,
        link_rules: Optional[list[CredentialRule]] = None,
        combiners: Optional[Dict[str, Callable[[Any, Any], Any]]] = None,
    ) -> None:
        self.node_rules = list(node_rules or [])
        self.link_rules = list(link_rules or [])
        self.combiners = dict(combiners or {})

    def node_environment(self, node: NodeInfo) -> Environment:
        out: Dict[str, Any] = {}
        for rule in self.node_rules:
            rule.apply(node.credentials, out)
        return Environment(out)

    def _link_environment(self, link: LinkInfo) -> Dict[str, Any]:
        creds: Dict[str, Any] = dict(link.credentials)
        creds.setdefault("secure", link.secure)
        creds.setdefault("latency_ms", link.latency_ms)
        creds.setdefault("bandwidth_mbps", link.bandwidth_mbps)
        out: Dict[str, Any] = {}
        for rule in self.link_rules:
            rule.apply(creds, out)
        return out

    def _combine(self, prop: str, a: Any, b: Any) -> Any:
        fn = self.combiners.get(prop)
        if fn is not None:
            return fn(a, b)
        if isinstance(a, bool) and isinstance(b, bool):
            return a and b
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            return min(a, b)
        return a if a == b else None

    def path_environment(self, path: PathInfo) -> Environment:
        if not path.hops:
            # Local environment: emit each rule's most permissive value by
            # evaluating against a perfect loopback hop.
            loopback = LinkInfo(path.src, path.dst or path.src, 0.0, float("inf"), True)
            return Environment(self._link_environment(loopback))
        combined: Optional[Dict[str, Any]] = None
        for hop in path.hops:
            env = self._link_environment(hop)
            if combined is None:
                combined = env
            else:
                merged: Dict[str, Any] = {}
                for prop in set(combined) | set(env):
                    if prop in combined and prop in env:
                        merged[prop] = self._combine(prop, combined[prop], env[prop])
                    # Properties present on only some hops are dropped:
                    # we cannot vouch for them end to end.
                combined = merged
        return Environment(combined or {})
