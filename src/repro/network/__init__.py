"""Network substrate: topology model, BRITE-style generation,
credential translation, and Remos-style monitoring."""

from .brite import BriteConfig, generate, generate_barabasi_albert, generate_waxman
from .credentials import (
    CredentialRule,
    CredentialTranslator,
    Environment,
    FunctionTranslator,
    RuleTranslator,
)
from .monitor import ChangeEvent, NetworkMonitor
from .topology import LinkInfo, Network, NetworkError, NodeInfo, PathInfo

__all__ = [
    "Network",
    "NetworkError",
    "NodeInfo",
    "LinkInfo",
    "PathInfo",
    "BriteConfig",
    "generate",
    "generate_waxman",
    "generate_barabasi_albert",
    "Environment",
    "CredentialTranslator",
    "FunctionTranslator",
    "RuleTranslator",
    "CredentialRule",
    "NetworkMonitor",
    "ChangeEvent",
]
