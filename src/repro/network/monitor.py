"""Remos-style network monitoring (paper §6, first limitation).

The paper's planner assumes a static network; §6 proposes integrating a
monitoring tool (Remos [8]) that "obtains relevant information about the
state of the network and communicates it to network-aware applications
through a well-defined and uniform set of APIs", letting the planner
decide whether a redeployment is called for.

:class:`NetworkMonitor` provides that API against the simulated network:

- *queries* — current latency/bandwidth/security of links, CPU of nodes;
- *subscriptions* — callbacks fired when an observed attribute changes;
- *scripted perturbations* — experiments inject changes at simulated
  times (a link slows down, a node loses trust) and the monitor reports
  them on its next polling round, modeling real monitoring lag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim import Simulator
from .topology import Network

__all__ = ["ChangeEvent", "NetworkMonitor"]


@dataclass(frozen=True)
class ChangeEvent:
    """One observed attribute change."""

    time_ms: float
    kind: str  # "link" or "node"
    subject: str  # link name "a<->b" or node name
    attribute: str
    old: Any
    new: Any


Subscriber = Callable[[ChangeEvent], None]


class NetworkMonitor:
    """Polls a :class:`Network` inside a simulation and reports changes.

    ``poll_interval_ms`` models monitoring lag: a perturbation applied
    between polls is only observed (and subscribers notified) at the next
    poll boundary, as with a real Remos deployment.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        poll_interval_ms: float = 1000.0,
    ) -> None:
        if poll_interval_ms <= 0:
            raise ValueError("poll_interval_ms must be positive")
        self.sim = sim
        self.network = network
        self.poll_interval_ms = poll_interval_ms
        self._subscribers: List[Subscriber] = []
        self._snapshot: Dict[Tuple[str, str, str], Any] = {}
        self.history: List[ChangeEvent] = []
        self._running = False
        self._take_snapshot(initial=True)

    # -- query API (the "well-defined and uniform set of APIs") -----------
    def link_latency_ms(self, a: str, b: str) -> float:
        return self.network.link(a, b).latency_ms

    def link_bandwidth_mbps(self, a: str, b: str) -> float:
        return self.network.link(a, b).bandwidth_mbps

    def link_secure(self, a: str, b: str) -> bool:
        return self.network.link(a, b).secure

    def node_cpu_capacity(self, name: str) -> float:
        return self.network.node(name).cpu_capacity

    def node_credential(self, name: str, key: str, default: Any = None) -> Any:
        return self.network.node(name).credentials.get(key, default)

    # -- subscriptions ------------------------------------------------------
    def subscribe(self, fn: Subscriber) -> None:
        """Call ``fn(change)`` for every change observed at a poll."""
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Subscriber) -> None:
        self._subscribers.remove(fn)

    # -- perturbation injection ---------------------------------------------
    def perturb_link(
        self,
        a: str,
        b: str,
        latency_ms: Optional[float] = None,
        bandwidth_mbps: Optional[float] = None,
        secure: Optional[bool] = None,
    ) -> None:
        """Mutate link attributes now; observed at the next poll."""
        link = self.network.link(a, b)
        if latency_ms is not None:
            link.latency_ms = latency_ms
        if bandwidth_mbps is not None:
            link.bandwidth_mbps = bandwidth_mbps
        if secure is not None:
            link.secure = secure
        self.network.touch()

    def perturb_node(
        self,
        name: str,
        cpu_capacity: Optional[float] = None,
        credentials: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Mutate node attributes now; observed at the next poll."""
        node = self.network.node(name)
        if cpu_capacity is not None:
            node.cpu_capacity = cpu_capacity
        if credentials:
            node.credentials.update(credentials)
        self.network.touch()

    def schedule_perturbation(self, at_ms: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` (which should call perturb_*) at simulated time."""
        self.sim.call_at(at_ms, fn)

    # -- external event injection (failure detectors) -------------------------
    def report(self, change: ChangeEvent) -> None:
        """Inject an externally-observed change (e.g. a heartbeat-based
        failure detection) into the subscriber stream.

        The change is folded into the monitor's snapshot first, so a
        subsequent poll does not re-observe (and re-dispatch) the same
        fact — one observed transition, one event, regardless of how
        many observation channels saw it.
        """
        key = (change.kind, change.subject, change.attribute)
        if self._snapshot.get(key) == change.new:
            return  # already known: duplicate observation, suppressed
        self._snapshot[key] = change.new
        self._dispatch([change])

    # -- polling loop ---------------------------------------------------------
    def start(self) -> None:
        """Begin periodic polling as a simulation process."""
        if self._running:
            return
        self._running = True
        self.sim.process(self._poll_loop(), name="network-monitor")

    def stop(self) -> None:
        self._running = False

    def _poll_loop(self):
        while self._running:
            yield self.sim.timeout(self.poll_interval_ms)
            self.poll()

    def poll(self) -> List[ChangeEvent]:
        """One observation round; returns (and dispatches) changes.

        Changes are *coalesced* within the round: at most one event per
        (kind, subject, attribute), carrying the first old value and the
        last new one, and events whose old and new values are equal (a
        perturbation that round-tripped inside the observation window)
        are dropped entirely — subscribers never fire on a no-op.
        """
        changes = self._coalesce(self._take_snapshot(initial=False))
        self._dispatch(changes)
        return changes

    def _dispatch(self, changes: List[ChangeEvent]) -> None:
        for change in changes:
            self.history.append(change)
            for fn in list(self._subscribers):
                fn(change)

    @staticmethod
    def _coalesce(changes: List[ChangeEvent]) -> List[ChangeEvent]:
        merged: Dict[Tuple[str, str, str], ChangeEvent] = {}
        for change in changes:
            key = (change.kind, change.subject, change.attribute)
            prior = merged.get(key)
            if prior is None:
                merged[key] = change
            else:  # keep first old, last new
                merged[key] = ChangeEvent(
                    change.time_ms, change.kind, change.subject,
                    change.attribute, prior.old, change.new,
                )
        return [c for c in merged.values() if c.old != c.new]

    def _take_snapshot(self, initial: bool) -> List[ChangeEvent]:
        now = self.sim.now
        current: Dict[Tuple[str, str, str], Any] = {}
        for link in self.network.links():
            base = ("link", link.name)
            current[(*base, "latency_ms")] = link.latency_ms
            current[(*base, "bandwidth_mbps")] = link.bandwidth_mbps
            current[(*base, "secure")] = link.secure
            current[(*base, "up")] = link.up
        for node in self.network.nodes():
            base = ("node", node.name)
            current[(*base, "cpu_capacity")] = node.cpu_capacity
            # Node *liveness* is deliberately not polled: a crashed host
            # is observable only through missed heartbeats (see
            # repro.faults.detector), never by inspecting sim state.
            for key, val in node.credentials.items():
                current[(*base, f"credential:{key}")] = val

        changes: List[ChangeEvent] = []
        if not initial:
            for key, new in current.items():
                old = self._snapshot.get(key)
                if old != new:
                    kind, subject, attribute = key
                    changes.append(
                        ChangeEvent(now, kind, subject, attribute, old, new)
                    )
        self._snapshot = current
        return changes
