"""Streaming workload for the video service.

A streaming session pulls frames back-to-back (closed loop, like the
mail workload's "maximum rate permitted by a deployment") and reports
the *achieved* frame rate and per-frame latency jitter — the service's
QoS metrics, measured rather than declared.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Generator, List

from ...sim.resources import Monitor
from ...smock import ServiceProxy

__all__ = ["StreamConfig", "StreamResult", "open_loop_video_ops", "stream_session"]


@dataclass
class StreamConfig:
    """One viewing session."""

    content: str = "feature"
    n_frames: int = 100
    #: fraction of frames re-requested (seek-back; exercises caches)
    replay_fraction: float = 0.1
    #: outstanding frame requests (player prefetch buffer).  A serial
    #: puller is throughput-bound by the WAN round trip; real players
    #: pipeline, which is what lets the delivered rate reach the
    #: bandwidth-determined frame rate the planner reasons about.
    pipeline_depth: int = 4
    seed: int = 0


@dataclass
class StreamResult:
    """Measured QoS of one session."""

    content: str
    frame_latency: Monitor = field(default_factory=lambda: Monitor("frame"))
    errors: List[str] = field(default_factory=list)
    started_ms: float = 0.0
    finished_ms: float = 0.0

    @property
    def achieved_fps(self) -> float:
        """Frames delivered per second of simulated wall time."""
        elapsed_s = (self.finished_ms - self.started_ms) / 1e3
        if elapsed_s <= 0:
            return float("inf")
        return self.frame_latency.count / elapsed_s

    @property
    def jitter_ms(self) -> float:
        """p99 - median frame latency."""
        return self.frame_latency.percentile(99) - self.frame_latency.percentile(50)


def stream_session(
    proxy: ServiceProxy, config: StreamConfig
) -> Generator[Any, Any, StreamResult]:
    """Process generator: pull ``n_frames`` frames at maximum rate,
    keeping up to ``pipeline_depth`` requests in flight."""
    rng = random.Random((config.seed, config.content).__repr__())
    sim = proxy.runtime.sim
    result = StreamResult(content=config.content, started_ms=sim.now)

    # Same per-op workload-layer latency histogram the mail workload
    # records, so SLO reports cover both services uniformly.
    metrics = proxy.runtime.obs.metrics
    play_hist = None
    if metrics.enabled:
        play_hist = metrics.windowed_histogram(
            "workload.op_sim_ms", service="video", op="play"
        )

    # Pre-draw the frame schedule (deterministic given the seed).
    schedule: List[int] = []
    seq = 0
    for _ in range(config.n_frames):
        if seq > 0 and rng.random() < config.replay_fraction:
            schedule.append(rng.randrange(seq))
        else:
            schedule.append(seq)
            seq += 1

    cursor = [0]

    def puller() -> Generator[Any, Any, None]:
        while cursor[0] < len(schedule):
            i = cursor[0]
            cursor[0] += 1
            frame_no = schedule[i]
            t0 = sim.now
            resp = yield from proxy.request(
                "play", {"content": config.content, "seq": frame_no}, size_bytes=128
            )
            result.frame_latency.observe(sim.now - t0)
            if play_hist is not None:
                play_hist.observe(sim.now - t0)
            if not resp.ok:
                result.errors.append(f"frame[{i}]: {resp.error}")

    depth = max(1, config.pipeline_depth)
    workers = [
        sim.process(puller(), name=f"stream:{config.content}:{k}")
        for k in range(depth)
    ]
    yield sim.all_of(workers)
    result.finished_ms = sim.now
    return result


def open_loop_video_ops(n_titles: int = 100, frames_per_title: int = 1000):
    """Op factory for the open-loop load driver (:mod:`repro.load`).

    Each arrival pulls one frame of one title — an independent
    pay-per-frame viewer rather than a pipelined session.  Hot-*title*
    skew rides on the driver's Zipf user draw: the arriving user's rank
    in the roster picks the title, so celebrity users map onto celebrity
    content with the same tail shape.
    """
    if n_titles < 1:
        raise ValueError(f"need n_titles >= 1, got {n_titles}")

    def ops(rng: random.Random, user: str, roster: List[str]):
        try:
            title = roster.index(user) % n_titles
        except ValueError:  # pragma: no cover - roster always contains user
            title = 0
        payload = {"content": f"clip{title:03d}", "seq": rng.randrange(frames_per_title)}
        return ("play", payload, 128)

    return ops
