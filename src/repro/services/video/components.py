"""Runtime components of the video service.

Frames are synthetic byte payloads whose *sizes* are real (they cross
the simulated links), stamped with sequence numbers so caching and
compression are observable in tests.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Generator, Optional

from ...smock import RuntimeComponent, ServiceRequest, ServiceResponse

__all__ = [
    "VideoClientComponent",
    "PackagerComponent",
    "VideoSourceComponent",
    "ViewVideoSourceComponent",
    "VIDEO_COMPONENT_CLASSES",
    "RAW_FRAME_BYTES",
    "COMPRESSED_FRAME_BYTES",
]

RAW_FRAME_BYTES = 50_000
COMPRESSED_FRAME_BYTES = 5_000


def _frame_payload(content_id: str, seq: int) -> bytes:
    seed = f"{content_id}:{seq}".encode()
    # deterministic pseudo-frame, small in memory; size is modeled on the wire
    return (seed * 8)[:64]


class VideoSourceComponent(RuntimeComponent):
    """Master copy of every piece of content."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.frames_served = 0

    def op_get_frame(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        content = req.payload.get("content", "default")
        seq = int(req.payload.get("seq", 0))
        self.frames_served += 1
        return ServiceResponse(
            payload={
                "content": content,
                "seq": seq,
                "frame": _frame_payload(content, seq),
                "compressed": False,
                "source": self.label,
            },
            size_bytes=RAW_FRAME_BYTES,
        )
        yield  # pragma: no cover - generator marker


class ViewVideoSourceComponent(RuntimeComponent):
    """Cache view: keeps recently served frames for popular content."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.cache: Dict[tuple, ServiceResponse] = {}
        self.hits = 0
        self.misses = 0
        self.replica_id: Optional[int] = None

    def op_get_frame(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        key = (req.payload.get("content", "default"), int(req.payload.get("seq", 0)))
        cached = self.cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        resp = yield from self.call("RawStreamInterface", req)
        if resp.ok:
            self.cache[key] = resp
        return resp


class PackagerComponent(RuntimeComponent):
    """Transcodes a raw stream into the compressed container."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.frames_packaged = 0

    def op_get_frame(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        resp = yield from self.call("RawStreamInterface", req)
        if not resp.ok:
            return resp
        raw = resp.payload["frame"]
        packaged = zlib.compress(raw)
        self.frames_packaged += 1
        return ServiceResponse(
            payload={**resp.payload, "frame": packaged, "compressed": True},
            size_bytes=COMPRESSED_FRAME_BYTES,
        )


class VideoClientComponent(RuntimeComponent):
    """Pulls compressed frames and decodes them."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.frames_played = 0

    def op_play(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        downstream = req.child(
            op="get_frame",
            payload={
                "content": req.payload.get("content", "default"),
                "seq": req.payload.get("seq", 0),
            },
            size_bytes=128,
        )
        resp = yield from self.call("CompressedStreamInterface", downstream)
        if not resp.ok:
            return resp
        frame = resp.payload["frame"]
        if resp.payload.get("compressed"):
            frame = zlib.decompress(frame)
        self.frames_played += 1
        return ServiceResponse(
            payload={**resp.payload, "frame": frame, "compressed": False},
            size_bytes=256,
        )


VIDEO_COMPONENT_CLASSES = {
    "VideoClient": VideoClientComponent,
    "Packager": PackagerComponent,
    "VideoSource": VideoSourceComponent,
    "ViewVideoSource": ViewVideoSourceComponent,
}
