"""A QoS-sensitive video streaming service.

The paper argues its property machinery "is generally applicable to
properties other than just security, e.g. QoS properties such as
delivered video frame rate" (§3.3).  This service exercises exactly
that:

- ``FrameRate`` / ``FrameRateC`` are Number properties with AtLeast
  matching and *computed* modification rules: the environment throttles
  a stream's deliverable frame rate to what the path bandwidth sustains
  (raw and compressed streams consume very different bandwidth per
  frame, hence two interface flavours).
- ``VideoSource`` serves raw frames; ``Packager`` converts a raw stream
  into a compressed one (cheap CPU, 10x smaller frames); ``VideoClient``
  consumes a compressed stream.
- A data view ``ViewVideoSource`` caches popular content near clients
  (RRF 0.3).

On a fast network the planner may place the Packager anywhere; across a
slow link only the source side is valid — placing it viewer-side would
ship raw frames through the bottleneck and the modification rule throttles
the delivered ``FrameRate`` below the Packager's requirement.  This is
the QoS analogue of the mail service's Encryptor/Decryptor placement.

The spec is built programmatically (computed rule outputs are not
expressible in the textual form), demonstrating the Python construction
API alongside the mail service's parsed form.
"""

from __future__ import annotations

from ...spec import (
    ANY,
    Behaviors,
    ComponentDef,
    Condition,
    EnvRef,
    InterfaceBinding,
    InterfaceDef,
    ModificationRule,
    NumberDomain,
    PropertyDef,
    PropertyModificationRule,
    ServiceSpec,
    StringDomain,
    ValueRange,
    ViewDef,
    IntervalDomain,
)

__all__ = [
    "build_video_spec",
    "RAW_MBPS_PER_FPS",
    "COMPRESSED_MBPS_PER_FPS",
    "SOURCE_FPS",
    "CLIENT_MIN_FPS",
]

#: bandwidth demand of one raw frame/second of stream (Mb/s per fps)
RAW_MBPS_PER_FPS = 0.4
#: same for the packaged/compressed stream
COMPRESSED_MBPS_PER_FPS = 0.04
#: what the source produces
SOURCE_FPS = 60.0
#: what clients insist on
CLIENT_MIN_FPS = 24.0


def _throttle(in_value, env_value):
    """Deliverable rate = min(offered, what the environment sustains)."""
    if in_value is ANY:
        return env_value
    if env_value is None:
        return None  # capacity not vouched for on this path
    return min(in_value, env_value)


def build_video_spec() -> ServiceSpec:
    spec = ServiceSpec(
        "video",
        description="QoS-sensitive streaming service (frame-rate properties)",
    )
    spec.add_property(
        PropertyDef("FrameRate", NumberDomain(), match_mode="at_least",
                    description="raw-stream frames/second")
    )
    spec.add_property(
        PropertyDef("FrameRateC", NumberDomain(), match_mode="at_least",
                    description="compressed-stream frames/second")
    )
    spec.add_property(PropertyDef("Popularity", IntervalDomain(1, 5), match_mode="at_least"))

    spec.add_interface(InterfaceDef("ViewerInterface", ("FrameRateC",)))
    spec.add_interface(InterfaceDef("CompressedStreamInterface", ("FrameRateC",)))
    spec.add_interface(InterfaceDef("RawStreamInterface", ("FrameRate",)))

    spec.add_component(
        ComponentDef(
            "VideoClient",
            implements=(InterfaceBinding("ViewerInterface", {"FrameRateC": CLIENT_MIN_FPS}),),
            requires=(
                InterfaceBinding("CompressedStreamInterface", {"FrameRateC": CLIENT_MIN_FPS}),
            ),
            behaviors=Behaviors(
                request_rate=30.0,
                cpu_per_request=0.2,
                bytes_per_request=128,
                bytes_per_response=5_000,
                code_size_bytes=120_000,
            ),
        )
    )
    spec.add_component(
        ComponentDef(
            "Packager",
            implements=(InterfaceBinding("CompressedStreamInterface", {"FrameRateC": ANY}),),
            requires=(InterfaceBinding("RawStreamInterface", {"FrameRate": CLIENT_MIN_FPS}),),
            behaviors=Behaviors(
                cpu_per_request=1.5,
                bytes_per_request=128,
                bytes_per_response=50_000,  # pulls raw frames
                code_size_bytes=100_000,
            ),
        )
    )
    spec.add_component(
        ComponentDef(
            "VideoSource",
            implements=(InterfaceBinding("RawStreamInterface", {"FrameRate": SOURCE_FPS}),),
            conditions=(Condition("SourceSite", True),),
            behaviors=Behaviors(
                capacity=200.0,
                cpu_per_request=0.5,
                bytes_per_request=128,
                bytes_per_response=50_000,
                code_size_bytes=500_000,
            ),
        )
    )
    spec.add_view(
        ViewDef(
            "ViewVideoSource",
            represents="VideoSource",
            kind="data",
            factors={"Popularity": EnvRef("Node", "Popularity")},
            implements=(InterfaceBinding("RawStreamInterface", {"FrameRate": SOURCE_FPS}),),
            requires=(InterfaceBinding("RawStreamInterface", {"FrameRate": CLIENT_MIN_FPS}),),
            conditions=(Condition("Popularity", ValueRange(1, 5)),),
            behaviors=Behaviors(
                capacity=100.0,
                cpu_per_request=0.4,
                bytes_per_request=128,
                bytes_per_response=50_000,
                rrf=0.3,
                code_size_bytes=300_000,
            ),
        )
    )

    spec.add_rule(
        PropertyModificationRule(
            "FrameRate", rules=(ModificationRule(ANY, ANY, _throttle),)
        )
    )
    spec.add_rule(
        PropertyModificationRule(
            "FrameRateC", rules=(ModificationRule(ANY, ANY, _throttle),)
        )
    )
    return spec.validate()
