"""Credential translation for the video service.

Node credentials: ``source_site`` (bool — where masters live) becomes
``SourceSite``; ``popularity`` (how hot the local audience is, drives the
cache view's factor) becomes ``Popularity``.

Path environments translate *bandwidth* into the two deliverable
frame-rate capacities — the QoS counterpart of the mail service's
secure-link -> Confidentiality translation:

    FrameRate  capacity = bottleneck_mbps / RAW_MBPS_PER_FPS
    FrameRateC capacity = bottleneck_mbps / COMPRESSED_MBPS_PER_FPS
"""

from __future__ import annotations

from typing import Any, Dict

from ...network import FunctionTranslator, NodeInfo, PathInfo
from .spec import COMPRESSED_MBPS_PER_FPS, RAW_MBPS_PER_FPS

__all__ = ["video_translator"]


def _node_props(node: NodeInfo) -> Dict[str, Any]:
    props: Dict[str, Any] = {
        "SourceSite": bool(node.credentials.get("source_site", False)),
    }
    if "popularity" in node.credentials:
        props["Popularity"] = int(node.credentials["popularity"])
    # A node sustains its own streams at memory speed.
    props["FrameRate"] = float("inf")
    props["FrameRateC"] = float("inf")
    return props


def _path_props(path: PathInfo) -> Dict[str, Any]:
    if path.is_local:
        return {"FrameRate": float("inf"), "FrameRateC": float("inf")}
    bw = path.bandwidth_mbps
    return {
        "FrameRate": bw / RAW_MBPS_PER_FPS,
        "FrameRateC": bw / COMPRESSED_MBPS_PER_FPS,
    }


def video_translator() -> FunctionTranslator:
    return FunctionTranslator(node_fn=_node_props, path_fn=_path_props)
