"""QoS-sensitive video streaming service (frame-rate properties)."""

from .components import (
    COMPRESSED_FRAME_BYTES,
    PackagerComponent,
    RAW_FRAME_BYTES,
    VIDEO_COMPONENT_CLASSES,
    VideoClientComponent,
    VideoSourceComponent,
    ViewVideoSourceComponent,
)
from .spec import (
    CLIENT_MIN_FPS,
    COMPRESSED_MBPS_PER_FPS,
    RAW_MBPS_PER_FPS,
    SOURCE_FPS,
    build_video_spec,
)
from .translator import video_translator

__all__ = [
    "build_video_spec",
    "video_translator",
    "VIDEO_COMPONENT_CLASSES",
    "VideoClientComponent",
    "PackagerComponent",
    "VideoSourceComponent",
    "ViewVideoSourceComponent",
    "RAW_MBPS_PER_FPS",
    "COMPRESSED_MBPS_PER_FPS",
    "SOURCE_FPS",
    "CLIENT_MIN_FPS",
    "RAW_FRAME_BYTES",
    "COMPRESSED_FRAME_BYTES",
]

from .workload import StreamConfig, StreamResult, open_loop_video_ops, stream_session

__all__ += ["StreamConfig", "StreamResult", "open_loop_video_ops", "stream_session"]
