"""Declarative specification of the security-sensitive mail service.

This is the *completed* version of the paper's Figure 2 (which is
"incomplete" by its own caption).  Completions, and why:

- ``TrustLevel`` is declared ``Match: AtLeast``: the paper's example has
  ``MailClient`` requiring ``TrustLevel = 4`` linked to a ``MailServer``
  implementing ``TrustLevel = 5`` (Figure 6, New York), so requirement
  matching on this property must be ordered, not exact.
- The ``Encryptor`` implements ``TrustLevel = ANY`` on ServerInterface:
  an encryption relay is transparent to trust — it delivers whatever its
  downstream provides.  (Figure 2 lists only Confidentiality for it,
  which under strict superset matching would break every chain of
  Figure 6 that contains an Encryptor.)
- ``MailClient``'s installation condition adds ``TrustLevel ∈ (3,5)``
  next to the ACL (``User = Alice``): the full-featured client holds
  account credentials, so it may only run at well-trusted sites — this
  is what makes Seattle (trust 2) fall back to ``ViewMailClient``
  exactly as in Figure 6.
- Behaviors are filled in for all components (the paper gives only
  ``Capacity: 1000`` and ``RRF: 0.2``): message sizes and CPU costs are
  calibrated so the Figure 7 groups reproduce.

The text below round-trips through both the readable-form parser and the
XML serializer.
"""

from __future__ import annotations

from ...spec import ServiceSpec, parse_service

__all__ = ["MAIL_SPEC_TEXT", "build_mail_spec", "DEFAULT_USERS"]

#: Users provisioned with accounts, for the MailClient ACL condition.
DEFAULT_USERS = ("Alice", "Bob", "Carol", "Dave", "Eve")

MAIL_SPEC_TEXT = """
<Service>
Name: mail

<Property>
Name: Confidentiality
Type: Boolean
Values: T, F
</Property>

<Property>
Name: TrustLevel
Type: Interval
ValueRange: (1,5)
Match: AtLeast
</Property>

<Property>
Name: User
Type: String
</Property>

<Interface>
Name: ClientInterface
Properties: Confidentiality, TrustLevel
</Interface>

<Interface>
Name: ServerInterface
Properties: Confidentiality, TrustLevel
</Interface>

<Interface>
Name: DecryptorInterface
Properties: Confidentiality
</Interface>

<Component>
Name: MailClient
<Linkages>
<Implements>
Name: ClientInterface
Properties: Confidentiality = F, TrustLevel = 4
</Implements>
<Requires>
Name: ServerInterface
Properties: Confidentiality = T, TrustLevel = 3
</Requires>
</Linkages>
<Conditions>
Properties: User = {Alice,Bob,Carol,Dave,Eve}, TrustLevel in (3,5)
</Conditions>
<Behaviors>
RequestRate: 10
CpuPerRequest: 0.5
BytesPerRequest: 4096
BytesPerResponse: 512
CodeSize: 150000
</Behaviors>
</Component>

<Component>
Name: MailServer
<Linkages>
<Implements>
Name: ServerInterface
Properties: Confidentiality = T, TrustLevel = 5
</Implements>
</Linkages>
<Conditions>
Properties: TrustLevel = 5
</Conditions>
<Behaviors>
Capacity: 1000
CpuPerRequest: 1.0
BytesPerRequest: 4096
BytesPerResponse: 512
CodeSize: 400000
</Behaviors>
</Component>

<Component>
Name: Encryptor
<Linkages>
<Implements>
Name: ServerInterface
Properties: Confidentiality = T, TrustLevel = ANY
</Implements>
<Requires>
Name: DecryptorInterface
</Requires>
</Linkages>
<Behaviors>
CpuPerRequest: 2.0
BytesPerRequest: 4224
BytesPerResponse: 640
CodeSize: 80000
</Behaviors>
</Component>

<Component>
Name: Decryptor
<Linkages>
<Implements>
Name: DecryptorInterface
</Implements>
<Requires>
Name: ServerInterface
Properties: Confidentiality = T
</Requires>
</Linkages>
<Behaviors>
CpuPerRequest: 2.0
BytesPerRequest: 4096
BytesPerResponse: 512
CodeSize: 80000
</Behaviors>
</Component>

<View>
Name: ViewMailClient
Represents: MailClient
Kind: object
<Linkages>
<Implements>
Name: ClientInterface
Properties: Confidentiality = F, TrustLevel = 1
</Implements>
<Requires>
Name: ServerInterface
Properties: Confidentiality = T, TrustLevel = 1
</Requires>
</Linkages>
<Behaviors>
RequestRate: 10
CpuPerRequest: 0.4
BytesPerRequest: 4096
BytesPerResponse: 512
CodeSize: 90000
</Behaviors>
</View>

<View>
Name: ViewMailServer
Represents: MailServer
Kind: data
<Factors>
Properties: TrustLevel = Node.TrustLevel
</Factors>
<Linkages>
<Implements>
Name: ServerInterface
Properties: Confidentiality = T, TrustLevel = Node.TrustLevel
</Implements>
<Requires>
Name: ServerInterface
Properties: Confidentiality = T, TrustLevel = Node.TrustLevel
</Requires>
</Linkages>
<Conditions>
Properties: Node.TrustLevel in (1,3)
</Conditions>
<Behaviors>
RRF: 0.2
Capacity: 500
CpuPerRequest: 0.8
BytesPerRequest: 4096
BytesPerResponse: 512
CodeSize: 250000
</Behaviors>
</View>

<PropertyModificationRule>
Name: Confidentiality
Rules:
(In: T) x (Env: T) = (Out: T)
(In: F) x (Env: ANY) = (Out: F)
(In: ANY) x (Env: F) = (Out: F)
</PropertyModificationRule>

</Service>
"""


def build_mail_spec() -> ServiceSpec:
    """Parse and validate the mail-service specification."""
    return parse_service(MAIL_SPEC_TEXT)
