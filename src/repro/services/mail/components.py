"""Runtime implementations of the mail-service components.

These are the live counterparts of the Figure 2 units:

- :class:`MailServerComponent` — the primary store (all accounts, all
  sensitivity levels, full keyrings).
- :class:`ViewMailServerComponent` — a data view: state bounded by its
  ``TrustLevel`` factor, keys released only up to that level,
  write-back coherence through its *planned* upstream linkage (so
  coherence traffic crosses Encryptor/Decryptor pairs exactly like
  request traffic).
- :class:`EncryptorComponent` / :class:`DecryptorComponent` — relays
  that protect any operation crossing insecure links with a session key.
- :class:`MailClientComponent` — full client (send/receive + address
  book); :class:`ViewMailClientComponent` — the object view without the
  address book.

Messages are encrypted under the *sender's* per-level key by the client
and transformed to the *recipient's* key by the first store that holds
both keys — "the service transparently encrypts messages according to
the sender's sensitivity upon a send, and transforms these messages to
those encrypted to the recipient's sensitivity upon a receive."
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Generator, List, Optional, Tuple

from ...coherence import Update
from ...smock import RuntimeComponent, ServiceRequest, ServiceResponse
from .crypto import CIPHER_OVERHEAD_BYTES, CryptoError, KeyRing, decrypt, derive_key, encrypt
from .mailstore import MailStore, StoredMessage

__all__ = [
    "MailServerComponent",
    "ViewMailServerComponent",
    "EncryptorComponent",
    "DecryptorComponent",
    "MailClientComponent",
    "ViewMailClientComponent",
    "MAIL_COMPONENT_CLASSES",
]

#: session key protecting Encryptor<->Decryptor traffic
_SESSION_KEY = derive_key("smock-session", "mail")

#: upper bound on one coherence sync RPC when message faults are active
#: (a dropped sync message would otherwise hang the flush forever)
SYNC_TIMEOUT_MS = 30_000.0

_MSG_ENVELOPE_BYTES = 96

#: rosters up to this size get the historical full contact graph; the
#: open-loop load harness provisions 10k–100k generated accounts, where
#: the everyone-knows-everyone O(n^2) tuples would dominate setup
_FULL_CONTACTS_MAX_ROSTER = 128


def _contacts_for(roster: Tuple[str, ...], i: int) -> Tuple[str, ...]:
    """Contact list for ``roster[i]``: everyone else when the roster is
    small, otherwise a wrapping window of the next 128 names."""
    n = len(roster)
    if n <= _FULL_CONTACTS_MAX_ROSTER + 1:
        return tuple(u for j, u in enumerate(roster) if j != i)
    return tuple(roster[(i + k) % n] for k in range(1, _FULL_CONTACTS_MAX_ROSTER + 1))


class _StoreBase(RuntimeComponent):
    """Shared mail-store behavior of MailServer and ViewMailServer."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.store = MailStore(self._sensitivity_bound())
        self.keyrings: Dict[str, KeyRing] = {}
        #: idempotency key -> response of the attempt that applied it.
        #: A retried store (client timeout raced a slow success, or a
        #: failover re-sent through a new chain) replays the recorded
        #: response instead of storing the message twice.
        self._applied: Dict[str, ServiceResponse] = {}
        self.duplicates_suppressed = 0

    def _sensitivity_bound(self) -> Optional[int]:
        return None

    def _replay(self, key: Optional[str]) -> Optional[ServiceResponse]:
        if key is None:
            return None
        resp = self._applied.get(key)
        if resp is not None:
            self.duplicates_suppressed += 1
        return resp

    def _record_applied(self, key: Optional[str], resp: ServiceResponse) -> None:
        if key is not None and resp.ok:
            self._applied[key] = resp

    def on_linked(self) -> None:
        """Provision the service's account roster on this store.

        The roster comes from ``runtime.service_state['mail_users']``;
        views receive only the keys their trust level allows.  Every
        user starts with the rest of the roster as contacts.
        """
        roster = tuple(self.runtime.service_state.get("mail_users", ()))
        for i, user in enumerate(roster):
            if not self.store.has_account(user):
                self.provision_account(user, _contacts_for(roster, i))

    # -- account management (service setup, not timed) ------------------------
    def provision_account(self, user: str, contacts: Tuple[str, ...] = ()) -> None:
        """Create an account + keyring (bounded for views)."""
        if not self.store.has_account(user):
            self.store.create_account(user, contacts)
        ring = KeyRing(user)
        bound = self._sensitivity_bound()
        self.keyrings[user] = ring if bound is None else ring.subset(bound)

    def _transform_to_recipient(self, msg: Dict[str, Any]) -> StoredMessage:
        """Decrypt under the sender's key, re-encrypt under the
        recipient's (the 'transform on receive' the paper describes,
        done eagerly at store time)."""
        sender, recipient = msg["sender"], msg["recipient"]
        sensitivity = msg["sensitivity"]
        body = msg["body"]
        sender_ring = self.keyrings.get(sender)
        recipient_ring = self.keyrings.get(recipient)
        if sender_ring is not None and recipient_ring is not None:
            plaintext = decrypt(sender_ring.key_for(sensitivity), body)
            body = encrypt(recipient_ring.key_for(sensitivity), plaintext)
        return StoredMessage(
            sender=sender, recipient=recipient, sensitivity=sensitivity, body=body
        )

    @staticmethod
    def _fetch_args(req: ServiceRequest) -> Tuple[str, int, Optional[int]]:
        user = req.payload.get("user") or req.user or ""
        return (
            user,
            int(req.payload.get("since_id", 0)),
            req.payload.get("max_sensitivity"),
        )

    @staticmethod
    def _messages_response(messages: List[StoredMessage]) -> ServiceResponse:
        size = sum(m.size_bytes for m in messages) + 256
        return ServiceResponse(
            payload={"messages": messages, "count": len(messages)}, size_bytes=size
        )

    def op_sync_prepare(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        """Directory lock acquisition for an incoming write-back batch
        (both the primary and intermediate view replicas can grant)."""
        return ServiceResponse(payload={"granted": True}, size_bytes=128)
        yield  # pragma: no cover - generator marker


class MailServerComponent(_StoreBase):
    """The primary mail server (Figure 2's ``MailServer``)."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: (user, msg_id) -> (ts_ms, version) of the last accepted move,
        #: the incumbent side of last-writer-wins for folder moves that
        #: raced a partition (stamped on direct applies too, so a
        #: reconciled replay can lose to a newer direct move).
        self._move_clock: Dict[Tuple[str, int], Tuple[float, Optional[Tuple[int, int]]]] = {}

    def op_store_message(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        cached = self._replay(req.idempotency_key)
        if cached is not None:
            return cached
        msg = self._transform_to_recipient(req.payload)
        self.store.store(msg)
        resp = ServiceResponse(payload={"msg_id": msg.msg_id}, size_bytes=256)
        self._record_applied(req.idempotency_key, resp)
        return resp
        yield  # pragma: no cover - generator marker

    def op_fetch_mail(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        user, since_id, max_s = self._fetch_args(req)
        return self._messages_response(self.store.fetch(user, since_id, max_s))
        yield  # pragma: no cover - generator marker

    def op_sync_batch(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        """Apply a replica's write-back batch; fan out invalidations.

        Updates carrying an idempotency key already applied here (e.g.
        a client retried through a fresh failover chain while the old
        replica's buffer was still in flight) are skipped, as are
        updates whose ``(origin, seq)`` version the frontier has already
        admitted (a duplicated or replayed batch).  Batches can mix
        stored messages with folder updates a partitioned replica
        buffered in degraded mode; ``messages`` aligns positionally with
        the ``store_message`` updates only.
        """
        messages: List[StoredMessage] = req.payload["messages"]
        updates: List[Update] = req.payload["updates"]
        directory = self.coherence
        applier = ("primary", self.unit.name)
        admitted: List[Update] = []
        applied = 0
        mi = 0
        for update in updates:
            msg: Optional[StoredMessage] = None
            if update.op == "store_message":
                msg = messages[mi]
                mi += 1
            if not directory.admit(applier, update):
                continue
            admitted.append(update)
            if msg is not None:
                key = update.attr("idempotency_key")
                if key is not None and key in self._applied:
                    self.duplicates_suppressed += 1
                    continue
                self.store.store(msg)
                applied += 1
                if key is not None:
                    self._applied[key] = ServiceResponse(
                        payload={"msg_id": msg.msg_id}, size_bytes=256
                    )
            else:
                if self._apply_folder_update(update) in ("applied", "conflict"):
                    applied += 1
        directory.broadcast_invalidations(
            family=self.unit.name,
            batch=admitted,
            origin_config=req.payload.get("origin_config"),
        )
        return ServiceResponse(payload={"applied": applied}, size_bytes=256)
        yield  # pragma: no cover - generator marker

    # -- partition-tolerance merge hooks ------------------------------------
    def _apply_folder_update(self, update: Update) -> str:
        """Merge one folder-structure update (union folders, LWW moves)."""
        user = update.attr("user", "")
        if update.op == "create_folder":
            box = self.store.ensure_account(user)
            folder = update.attr("folder", "")
            if not folder or folder in box.folders:
                return "duplicate"  # union merge: both sides created it
            box.folders[folder] = []
            return "applied"
        if update.op == "move_mail":
            msg_id = int(update.attr("msg_id", 0))
            folder = update.attr("folder", "")
            incumbent = self._move_clock.get((user, msg_id))
            if incumbent is not None:
                ts, version = incumbent
                if not self.coherence.reconcile_policy.wins(update, ts, version):
                    return "conflict"  # a newer move already won this cell
                outcome = "conflict"
            else:
                outcome = "applied"
            try:
                box = self.store.mailbox(user)
                if folder and folder not in box.folders:
                    box.folders[folder] = []  # created during the partition
                self.store.move_message(user, msg_id, folder)
            except Exception:
                return "unapplied"  # message never reached the primary
            self._move_clock[(user, msg_id)] = (update.ts_ms, update.version)
            return outcome
        return "ignored"

    def apply_reconciled(self, update: Update, policy: Any) -> str:
        """Anti-entropy hook: replay one recovered update at the primary.

        Called by :meth:`CoherenceDirectory.reconcile` for the frontier
        delta of a crashed replica's recovered buffer.  Returns an
        outcome label for the reconcile report.
        """
        if update.op == "store_message":
            msg = update.attr("message")
            if msg is None:
                return "unapplied"  # metadata-only: payload died with the host
            key = update.attr("idempotency_key")
            if key is not None and key in self._applied:
                self.duplicates_suppressed += 1
                return "duplicate"
            inbox = self.store.ensure_account(msg.recipient).inbox
            if any(m.msg_id == msg.msg_id for m in inbox):
                return "duplicate"  # a client retry re-applied it directly
            self.store.store(msg)
            if key is not None:
                self._applied[key] = ServiceResponse(
                    payload={"msg_id": msg.msg_id}, size_bytes=256
                )
            return "applied"
        return self._apply_folder_update(update)

    def op_create_account(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        self.provision_account(req.payload["user"], tuple(req.payload.get("contacts", ())))
        return ServiceResponse(payload={"user": req.payload["user"]}, size_bytes=128)
        yield  # pragma: no cover - generator marker

    def op_contacts(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        user = req.payload.get("user") or req.user or ""
        contacts = self.store.contacts(user) if self.store.has_account(user) else []
        return ServiceResponse(payload={"contacts": contacts}, size_bytes=256)
        yield  # pragma: no cover - generator marker

    def op_create_folder(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        user = req.payload.get("user") or req.user or ""
        try:
            self.store.create_folder(user, req.payload.get("folder", ""))
        except Exception as exc:  # MailStoreError -> failure response
            return ServiceResponse.failure(str(exc))
        return ServiceResponse(
            payload={"folders": self.store.folder_names(user)}, size_bytes=256
        )
        yield  # pragma: no cover - generator marker

    def op_move_mail(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        user = req.payload.get("user") or req.user or ""
        try:
            msg = self.store.move_message(
                user, int(req.payload["msg_id"]), req.payload.get("folder", "")
            )
        except Exception as exc:
            return ServiceResponse.failure(str(exc))
        # Direct moves are incumbents for reconciliation-time LWW.
        self._move_clock[(user, msg.msg_id)] = (self.sim.now, None)
        return ServiceResponse(payload={"msg_id": msg.msg_id}, size_bytes=128)
        yield  # pragma: no cover - generator marker


class ViewMailServerComponent(_StoreBase):
    """A data-view replica bounded by its ``TrustLevel`` factor."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.stale_users: set = set()
        self.replica_id: Optional[int] = None
        self.syncs_performed = 0
        self.upstream_forwards = 0
        self._daemon_running = False

    def on_linked(self) -> None:
        """Start the coherence daemon for time-driven policies.

        Count-based policies flush synchronously on the triggering
        update; a *time-driven* replica must also reconcile when the
        interval elapses with updates pending but no new traffic — that
        needs a background process polling the directory.
        """
        super().on_linked()
        if self.replica_id is None:
            return
        from ...coherence import TimePolicy

        entry = self.coherence.entry(self.replica_id)
        if isinstance(entry.policy, TimePolicy) and not self._daemon_running:
            self._daemon_running = True
            self.sim.process(
                self._coherence_daemon(entry.policy.interval_ms),
                name=f"coherence-daemon:{self.instance_id}",
            )

    def _coherence_daemon(self, interval_ms: float) -> Generator[Any, Any, None]:
        """Event-driven periodic reconciliation.

        While the replica is clean the daemon blocks on a wake event
        (so an idle simulation can drain its event list); the first
        buffered update wakes it, it sleeps out the interval, flushes if
        still due, and goes back to waiting.
        """
        directory = self.coherence
        while self._daemon_running:
            if self.replica_id is None:
                break
            try:
                entry = directory.entry(self.replica_id)
            except KeyError:
                break  # replica retired (replanning)
            if not entry.dirty:
                self._wake = self.sim.event()
                yield self._wake
                continue
            yield self.sim.timeout(interval_ms)
            try:
                due = directory.needs_flush(self.replica_id, self.sim.now)
            except KeyError:
                break
            if due:
                yield from self._sync()

    def _notify_daemon(self) -> None:
        wake = getattr(self, "_wake", None)
        if wake is not None and not wake.triggered:
            wake.succeed()

    def stop_daemon(self) -> None:
        self._daemon_running = False
        self._notify_daemon()

    @property
    def trust_level(self) -> int:
        return int(self.factor_values.get("TrustLevel", 1))

    def _sensitivity_bound(self) -> Optional[int]:
        return int(self.factor_values.get("TrustLevel", 1))

    @property
    def config(self) -> Tuple[str, Tuple[Tuple[str, Any], ...]]:
        return (self.unit.name, tuple(sorted(self.factor_values.items())))

    # -- coherence hooks -----------------------------------------------------
    def on_invalidate(self, updates: List[Update]) -> None:
        for u in updates:
            recipient = u.attr("recipient")
            if recipient is not None:
                self.stale_users.add(recipient)

    def _call_upstream(
        self, req: ServiceRequest
    ) -> Generator[Any, Any, ServiceResponse]:
        """Upstream RPC for coherence traffic, bounded under faults.

        With message faults active a sync RPC can be silently dropped,
        which would hang the flush generator forever with its drained,
        client-acked batch stranded.  Racing the call against a timeout
        bounds that: the attempt is abandoned, the caller requeues, and
        the version frontier dedups the re-send if the abandoned attempt
        applied after all.  Without a fault hook (or unversioned) the
        call is the plain blocking RPC — byte-identical to before.
        """
        if self.runtime.transport.fault_hook is None or not self.coherence.versioned:
            resp = yield from self.call("ServerInterface", req)
            return resp
        sim = self.sim
        rpc = sim.process(
            self.call("ServerInterface", req),
            name=f"sync-rpc:{self.instance_id}:{req.op}",
        )
        timeout = sim.timeout(SYNC_TIMEOUT_MS)
        yield sim.any_of([rpc, timeout])
        if rpc.triggered:
            return rpc.value
        return ServiceResponse.failure(
            f"sync {req.op!r} timed out after {SYNC_TIMEOUT_MS:.0f}ms",
            retryable=True,
        )

    def _sync(self) -> Generator[Any, Any, None]:
        """Reconcile with upstream through the planned linkage.

        Two-phase, like a directory protocol: a small prepare/lock round
        trip to the upstream directory entry, then the batch transfer
        with the commit acknowledgement.
        """
        assert self.replica_id is not None
        directory = self.coherence
        batch, units = directory.drain(self.replica_id)
        if not batch:
            return
        prepare = ServiceRequest(
            op="sync_prepare",
            payload={"origin_config": self.config, "units": units},
            size_bytes=128,
        )
        prep_resp = yield from self._call_upstream(prepare)
        if not prep_resp.ok:
            directory.requeue(self.replica_id, batch)
            return
        messages = [u.attributes["message"] for u in batch if "message" in u.attributes]
        size = sum(u.size_bytes for u in batch) + 512
        req = ServiceRequest(
            op="sync_batch",
            payload={
                "messages": messages,
                "updates": [self._strip_message(u) for u in batch],
                "units": units,
                "origin_config": self.config,
            },
            size_bytes=size,
        )
        resp = yield from self._call_upstream(req)
        if resp.ok:
            directory.record_flush(self.replica_id, self.sim.now, batch)
            self.syncs_performed += 1
        else:
            directory.requeue(self.replica_id, batch)

    @staticmethod
    def _strip_message(update: Update) -> Update:
        """Metadata-only copy for invalidation bookkeeping upstream
        (the version stamp rides along so upstream frontiers dedup)."""
        attrs = {k: v for k, v in update.attributes.items() if k != "message"}
        return Update(
            op=update.op,
            attributes=attrs,
            size_bytes=update.size_bytes,
            multiplicity=update.multiplicity,
            origin=update.origin,
            seq=update.seq,
            ts_ms=update.ts_ms,
        )

    # -- operations -----------------------------------------------------------------
    def op_store_message(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        cached = self._replay(req.idempotency_key)
        if cached is not None:
            return cached
        sensitivity = int(req.payload["sensitivity"])
        multiplicity = int(req.payload.get("multiplicity", 1))
        if not self.store.accepts(sensitivity):
            # Above our trust: never stored here; forward synchronously.
            self.upstream_forwards += 1
            resp = yield from self.call("ServerInterface", req)
            return resp
        msg = self._transform_to_recipient(req.payload)
        self.store.store(msg)
        assert self.replica_id is not None
        # The idempotency key rides in the update so every upstream store
        # the batch reaches can suppress a copy the client's retry
        # already applied there directly.
        update = Update(
            op="store_message",
            attributes={
                "recipient": msg.recipient,
                "sensitivity": msg.sensitivity,
                "message": msg,
                "idempotency_key": req.idempotency_key,
            },
            size_bytes=msg.size_bytes,
            multiplicity=multiplicity,
        )
        must_flush = self.coherence.on_local_update(
            self.replica_id, update, self.sim.now
        )
        self._notify_daemon()
        if must_flush:
            # Write-back reconciliation blocks the triggering request —
            # the source of the DS500/DS1000 group separation in Fig. 7.
            yield from self._sync()
        resp = ServiceResponse(payload={"msg_id": msg.msg_id}, size_bytes=256)
        self._record_applied(req.idempotency_key, resp)
        return resp

    def op_fetch_mail(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        user, since_id, max_s = self._fetch_args(req)
        if user in self.stale_users:
            self.coherence.note_stale_read(self.unit.represents)
        needs_upstream = user in self.stale_users or (
            max_s is not None and max_s > self.trust_level
        )
        if not needs_upstream:
            return self._messages_response(self.store.fetch(user, since_id, max_s))
        # Miss path: fetch through the planned upstream linkage.
        self.upstream_forwards += 1
        resp = yield from self.call("ServerInterface", req)
        if resp.ok:
            for msg in resp.payload.get("messages", ()):
                if self.store.accepts(msg.sensitivity) and msg.msg_id not in {
                    m.msg_id for m in self.store.ensure_account(user).inbox
                }:
                    self.store.ensure_account(user).inbox.append(msg)
            self.stale_users.discard(user)
        elif resp.retryable and self.coherence.versioned:
            # Degraded mode: the upstream is unreachable (partition), so
            # serve the local — possibly stale — copy per our flush
            # policy's consistency promise, with stale-read accounting.
            # The user stays marked stale, so the next reachable fetch
            # re-validates.
            self.coherence.note_degraded_read(self.unit.represents)
            return self._messages_response(self.store.fetch(user, since_id, max_s))
        return resp

    def op_create_folder(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        """Folder structure lives at the primary: write through.

        When the primary is unreachable (partition) under versioned
        coherence, the folder is created locally and the update buffered
        for write-back; reconciliation merges folder structure by union.
        """
        self.upstream_forwards += 1
        resp = yield from self.call("ServerInterface", req)
        if resp.ok or not resp.retryable or not self.coherence.versioned:
            return resp
        user = req.payload.get("user") or req.user or ""
        folder = req.payload.get("folder", "")
        if not folder:
            return resp
        box = self.store.ensure_account(user)
        if folder not in box.folders:
            box.folders[folder] = []
        resp = yield from self._buffer_degraded(
            Update(
                op="create_folder",
                attributes={"user": user, "folder": folder, "recipient": user},
                size_bytes=128,
            ),
            ServiceResponse(
                payload={"folders": self.store.folder_names(user)}, size_bytes=256
            ),
        )
        return resp

    def op_move_mail(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        """Folder structure lives at the primary: write through.

        Under a partition (versioned coherence) the move applies locally
        when this view holds the message, and is buffered for write-back
        — reconciliation resolves racing moves last-writer-wins.
        """
        self.upstream_forwards += 1
        resp = yield from self.call("ServerInterface", req)
        if resp.ok or not resp.retryable or not self.coherence.versioned:
            return resp
        user = req.payload.get("user") or req.user or ""
        msg_id = int(req.payload.get("msg_id") or 0)
        folder = req.payload.get("folder", "")
        try:
            box = self.store.mailbox(user)
            if folder and folder not in box.folders:
                box.folders[folder] = []
            msg = self.store.move_message(user, msg_id, folder)
        except Exception:
            return resp  # message not held here: genuinely unservable
        resp = yield from self._buffer_degraded(
            Update(
                op="move_mail",
                attributes={
                    "user": user, "msg_id": msg_id,
                    "folder": folder, "recipient": user,
                },
                size_bytes=128,
            ),
            ServiceResponse(payload={"msg_id": msg.msg_id}, size_bytes=128),
        )
        return resp

    def _buffer_degraded(
        self, update: Update, resp: ServiceResponse
    ) -> Generator[Any, Any, ServiceResponse]:
        """Buffer a degraded-mode write for write-back and ack locally."""
        assert self.replica_id is not None
        self.coherence.note_degraded_write(self.unit.represents)
        must_flush = self.coherence.on_local_update(
            self.replica_id, update, self.sim.now
        )
        self._notify_daemon()
        if must_flush:
            # Likely still partitioned — the attempt requeues on failure
            # and anti-entropy / later flushes carry it after the heal.
            yield from self._sync()
        return resp

    def op_sync_batch(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        """A downstream replica reconciles through us: apply, then chain.

        Updates whose idempotency key was already applied at this store
        are dropped outright — our own buffered copy (recorded when the
        key first applied) is already on its way upstream — and so are
        updates whose version this replica's frontier already admitted
        (a duplicated or replayed batch).  ``messages`` aligns
        positionally with the ``store_message`` updates only: degraded-
        mode folder updates ride the same batch without a payload and
        chain upstream unchanged.
        """
        messages: List[StoredMessage] = req.payload["messages"]
        updates: List[Update] = req.payload["updates"]
        assert self.replica_id is not None
        directory = self.coherence
        applier = ("replica", self.replica_id)
        must_flush = False
        applied = 0
        mi = 0
        for update in updates:
            msg: Optional[StoredMessage] = None
            if update.op == "store_message":
                msg = messages[mi]
                mi += 1
            if not directory.admit(applier, update):
                continue
            if msg is not None:
                key = update.attr("idempotency_key")
                if key is not None and key in self._applied:
                    self.duplicates_suppressed += 1
                    continue
                if self.store.accepts(msg.sensitivity):
                    self.store.store(msg)
                if key is not None:
                    self._applied[key] = ServiceResponse(
                        payload={"msg_id": msg.msg_id}, size_bytes=256
                    )
                chained = Update(
                    op=update.op,
                    attributes={**dict(update.attributes), "message": msg},
                    size_bytes=update.size_bytes,
                    multiplicity=update.multiplicity,
                    origin=update.origin,
                    seq=update.seq,
                    ts_ms=update.ts_ms,
                )
            else:
                chained = update  # folder update: chain upstream as-is
            applied += 1
            if directory.on_local_update(self.replica_id, chained, self.sim.now):
                must_flush = True
        self._notify_daemon()
        if must_flush:
            yield from self._sync()
        return ServiceResponse(payload={"applied": applied}, size_bytes=256)


class EncryptorComponent(RuntimeComponent):
    """Protects component interactions across insecure links.

    Any operation is wrapped: the payload is pickled and encrypted under
    the session key, forwarded over ``DecryptorInterface``, and the
    (encrypted) response unwrapped.
    """

    def dispatch(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        blob = encrypt(_SESSION_KEY, pickle.dumps((req.op, req.payload)))
        wrapped = req.child(
            op="relay",
            payload={"blob": blob},
            size_bytes=req.size_bytes + CIPHER_OVERHEAD_BYTES,
        )
        resp = yield from self.call("DecryptorInterface", wrapped)
        if not resp.ok or "blob" not in resp.payload:
            return resp
        payload = pickle.loads(decrypt(_SESSION_KEY, resp.payload["blob"]))
        return ServiceResponse(
            payload=payload,
            size_bytes=max(64, resp.size_bytes - CIPHER_OVERHEAD_BYTES),
            ok=resp.ok,
            error=resp.error,
        )


class DecryptorComponent(RuntimeComponent):
    """The receiving end of an Encryptor across an insecure link."""

    def op_relay(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        try:
            op, payload = pickle.loads(decrypt(_SESSION_KEY, req.payload["blob"]))
        except (CryptoError, KeyError) as exc:
            return ServiceResponse.failure(f"relay unwrap failed: {exc}")
        inner = req.child(
            op=op,
            payload=payload,
            size_bytes=max(64, req.size_bytes - CIPHER_OVERHEAD_BYTES),
        )
        resp = yield from self.call("ServerInterface", inner)
        blob = encrypt(_SESSION_KEY, pickle.dumps(resp.payload))
        return ServiceResponse(
            payload={"blob": blob},
            size_bytes=resp.size_bytes + CIPHER_OVERHEAD_BYTES,
            ok=resp.ok,
            error=resp.error,
        )


class MailClientComponent(RuntimeComponent):
    """Full-featured client: send, receive, address book."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.keyrings: Dict[str, KeyRing] = {}
        self.sends = 0
        self.fetches = 0

    def _ring(self, user: str) -> KeyRing:
        ring = self.keyrings.get(user)
        if ring is None:
            ring = KeyRing(user)
            self.keyrings[user] = ring
        return ring

    def op_send_mail(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        """Encrypt under the sender's level key, then store upstream."""
        self.sends += 1
        sender = req.user or req.payload.get("sender", "")
        sensitivity = int(req.payload["sensitivity"])
        body_text = req.payload.get("body", b"")
        if isinstance(body_text, str):
            body_text = body_text.encode()
        body = encrypt(self._ring(sender).key_for(sensitivity), body_text)
        downstream = req.child(
            op="store_message",
            payload={
                "sender": sender,
                "recipient": req.payload["recipient"],
                "sensitivity": sensitivity,
                "body": body,
                "multiplicity": req.payload.get("multiplicity", 1),
            },
            size_bytes=len(body) + _MSG_ENVELOPE_BYTES,
        )
        resp = yield from self.call("ServerInterface", downstream)
        return resp

    def op_fetch_mail(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        """Fetch and decrypt this user's new messages."""
        self.fetches += 1
        user = req.user or req.payload.get("user", "")
        downstream = req.child(
            op="fetch_mail",
            payload={
                "user": user,
                "since_id": req.payload.get("since_id", 0),
                "max_sensitivity": req.payload.get("max_sensitivity"),
            },
            size_bytes=256,
        )
        resp = yield from self.call("ServerInterface", downstream)
        if not resp.ok:
            return resp
        ring = self._ring(user)
        bodies = []
        for msg in resp.payload.get("messages", ()):
            try:
                bodies.append(decrypt(ring.key_for(msg.sensitivity), msg.body))
            except CryptoError:
                bodies.append(None)  # key not held at this level
        return ServiceResponse(
            payload={"messages": resp.payload.get("messages", []), "bodies": bodies},
            size_bytes=resp.size_bytes,
        )

    def op_address_book(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        """Full-client extra feature (absent from the object view)."""
        downstream = req.child(
            op="contacts",
            payload={"user": req.user or req.payload.get("user", "")},
            size_bytes=128,
        )
        resp = yield from self.call("ServerInterface", downstream)
        return resp

    def op_create_folder(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        """Folder management — also a full-client-only feature."""
        downstream = req.child(
            op="create_folder",
            payload={
                "user": req.user or req.payload.get("user", ""),
                "folder": req.payload.get("folder", ""),
            },
            size_bytes=128,
        )
        resp = yield from self.call("ServerInterface", downstream)
        return resp

    def op_move_mail(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        downstream = req.child(
            op="move_mail",
            payload={
                "user": req.user or req.payload.get("user", ""),
                "msg_id": req.payload.get("msg_id"),
                "folder": req.payload.get("folder", ""),
            },
            size_bytes=128,
        )
        resp = yield from self.call("ServerInterface", downstream)
        return resp


class ViewMailClientComponent(MailClientComponent):
    """Object view of the client: send/receive only — no address book,
    no folder management.

    "ViewMailClient exemplifies an object view, which restricts the
    functionality of the MailClient."
    """

    op_address_book = None  # type: ignore[assignment]
    op_create_folder = None  # type: ignore[assignment]
    op_move_mail = None  # type: ignore[assignment]


#: unit name -> runtime class, for SmockRuntime.register_component
MAIL_COMPONENT_CLASSES = {
    "MailServer": MailServerComponent,
    "ViewMailServer": ViewMailServerComponent,
    "Encryptor": EncryptorComponent,
    "Decryptor": DecryptorComponent,
    "MailClient": MailClientComponent,
    "ViewMailClient": ViewMailClientComponent,
}
