"""Toy cryptography for the mail service.

The paper's implementation used the Cryptix JCE; here a small XTEA-based
scheme (pure Python, deterministic) plays the same role: every user gets
one key per sensitivity level at account-setup time, messages are
encrypted under the key of their sensitivity level, and Encryptor /
Decryptor components protect component interactions crossing insecure
links with a session key.

This is **not** security-grade cryptography — it exists so the
encryption code paths are real (ciphertexts round-trip, wrong keys fail,
sizes grow by a header) while staying fast inside the simulator.

Both the block cipher and the whole-message transforms are pure
functions of (key, input), so their results are memoized: a bounded LRU
over full messages absorbs the experiments' repeated send bodies, and a
block-level cache under it absorbs ECB's repeated blocks even for fresh
messages.  ``configure_cache(False)`` restores the uncached paths
(used by the throughput benchmark to measure honest before/after).
"""

from __future__ import annotations

import hashlib
import struct
from functools import lru_cache
from typing import Dict, Tuple

__all__ = [
    "derive_key",
    "encrypt",
    "decrypt",
    "KeyRing",
    "CryptoError",
    "CIPHER_OVERHEAD_BYTES",
    "configure_cache",
]

_DELTA = 0x9E3779B9
_MASK = 0xFFFFFFFF
#: XTEA specifies 32 rounds; 8 keeps the same Feistel structure (and all
#: round-trip / wrong-key properties) at a quarter of the interpreter
#: cost — the experiments run hundreds of thousands of block operations.
_ROUNDS = 8

#: header added to every ciphertext (key check + length), bytes
CIPHER_OVERHEAD_BYTES = 12


class CryptoError(ValueError):
    """Wrong key or corrupted ciphertext."""


def derive_key(*parts: str) -> Tuple[int, int, int, int]:
    """Derive a 128-bit XTEA key from string parts (user, level...)."""
    digest = hashlib.sha256("\x1f".join(parts).encode()).digest()
    return struct.unpack(">4I", digest[:16])


def _encipher_block(v0: int, v1: int, key: Tuple[int, int, int, int]) -> Tuple[int, int]:
    total = 0
    for _ in range(_ROUNDS):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + key[total & 3]))) & _MASK
        total = (total + _DELTA) & _MASK
        v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + key[(total >> 11) & 3]))) & _MASK
    return v0, v1


def _decipher_block(v0: int, v1: int, key: Tuple[int, int, int, int]) -> Tuple[int, int]:
    total = (_DELTA * _ROUNDS) & _MASK
    for _ in range(_ROUNDS):
        v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + key[(total >> 11) & 3]))) & _MASK
        total = (total - _DELTA) & _MASK
        v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + key[total & 3]))) & _MASK
    return v0, v1


@lru_cache(maxsize=1024)
def _key_check(key: Tuple[int, int, int, int]) -> bytes:
    return hashlib.sha256(struct.pack(">4I", *key)).digest()[:4]


#: memoized block transforms — XTEA is a pure permutation per key, so a
#: cache hit is byte-identical to recomputation; ECB makes hits common
#: (identical plaintext blocks recur within and across messages).
_cached_encipher_block = lru_cache(maxsize=1 << 16)(_encipher_block)
_cached_decipher_block = lru_cache(maxsize=1 << 16)(_decipher_block)

#: whether the memoized fast paths are active (see configure_cache)
_cache_enabled = True


def configure_cache(enabled: bool) -> None:
    """Enable/disable the crypto memo caches (benchmark knob).

    Disabling also clears them, so a subsequent re-enable starts cold —
    the state an honest before/after measurement needs.
    """
    global _cache_enabled
    _cache_enabled = enabled
    if not enabled:
        _cached_encipher_block.cache_clear()
        _cached_decipher_block.cache_clear()
        _encrypt_cached.cache_clear()
        _decrypt_cached.cache_clear()


def _encrypt_raw(key: Tuple[int, int, int, int], plaintext: bytes, block) -> bytes:
    header = _key_check(key) + struct.pack(">Q", len(plaintext))
    padded = plaintext + b"\x00" * (-len(plaintext) % 8)
    out = bytearray(header)
    for i in range(0, len(padded), 8):
        v0, v1 = struct.unpack(">2I", padded[i : i + 8])
        e0, e1 = block(v0, v1, key)
        out += struct.pack(">2I", e0, e1)
    return bytes(out)


def _decrypt_raw(key: Tuple[int, int, int, int], ciphertext: bytes, block) -> bytes:
    if len(ciphertext) < CIPHER_OVERHEAD_BYTES:
        raise CryptoError("ciphertext too short")
    if ciphertext[:4] != _key_check(key):
        raise CryptoError("key mismatch")
    (length,) = struct.unpack(">Q", ciphertext[4:12])
    body = ciphertext[12:]
    if len(body) % 8 != 0 or length > len(body):
        raise CryptoError("corrupted ciphertext")
    out = bytearray()
    for i in range(0, len(body), 8):
        v0, v1 = struct.unpack(">2I", body[i : i + 8])
        d0, d1 = block(v0, v1, key)
        out += struct.pack(">2I", d0, d1)
    return bytes(out[:length])


@lru_cache(maxsize=4096)
def _encrypt_cached(key: Tuple[int, int, int, int], plaintext: bytes) -> bytes:
    return _encrypt_raw(key, plaintext, _cached_encipher_block)


@lru_cache(maxsize=4096)
def _decrypt_cached(key: Tuple[int, int, int, int], ciphertext: bytes) -> bytes:
    return _decrypt_raw(key, ciphertext, _cached_decipher_block)


def encrypt(key: Tuple[int, int, int, int], plaintext: bytes) -> bytes:
    """ECB-XTEA with a 12-byte header (4B key check + 8B length).

    ECB is fine for a simulator stand-in; see module docstring.
    """
    if _cache_enabled:
        return _encrypt_cached(key, plaintext)
    return _encrypt_raw(key, plaintext, _encipher_block)


def decrypt(key: Tuple[int, int, int, int], ciphertext: bytes) -> bytes:
    """Inverse of :func:`encrypt`; raises :class:`CryptoError` on a wrong
    key or malformed input."""
    if _cache_enabled:
        return _decrypt_cached(key, ciphertext)
    return _decrypt_raw(key, ciphertext, _decipher_block)


class KeyRing:
    """Per-user sensitivity-level keys, releasable up to a trust bound.

    "Each level is associated with an encryption/decryption key pair
    (one per user) generated at account setup time."  A node entrusted
    to level *k* receives only the keys for levels <= k
    (:meth:`subset`).
    """

    def __init__(self, user: str, levels: range = range(1, 6)) -> None:
        self.user = user
        self._keys: Dict[int, Tuple[int, int, int, int]] = {
            level: derive_key("mail-key", user, str(level)) for level in levels
        }

    def key_for(self, level: int) -> Tuple[int, int, int, int]:
        try:
            return self._keys[level]
        except KeyError:
            raise CryptoError(f"{self.user!r} holds no key for level {level}") from None

    def levels(self) -> Tuple[int, ...]:
        return tuple(sorted(self._keys))

    def subset(self, max_level: int) -> "KeyRing":
        """The keys a node trusted to ``max_level`` may hold."""
        ring = KeyRing.__new__(KeyRing)
        ring.user = self.user
        ring._keys = {l: k for l, k in self._keys.items() if l <= max_level}
        return ring

    def __contains__(self, level: int) -> bool:
        return level in self._keys
