"""The security-sensitive mail service of the paper's case study (§2, §4)."""

from .components import (
    DecryptorComponent,
    EncryptorComponent,
    MAIL_COMPONENT_CLASSES,
    MailClientComponent,
    MailServerComponent,
    ViewMailClientComponent,
    ViewMailServerComponent,
)
from .crypto import CIPHER_OVERHEAD_BYTES, CryptoError, KeyRing, decrypt, derive_key, encrypt
from .mailstore import Mailbox, MailStore, MailStoreError, StoredMessage
from .spec import DEFAULT_USERS, MAIL_SPEC_TEXT, build_mail_spec
from .translator import mail_translator
from .workload import (
    WorkloadConfig,
    WorkloadResult,
    mail_workload,
    open_loop_mail_ops,
    run_clients,
)

__all__ = [
    "build_mail_spec",
    "MAIL_SPEC_TEXT",
    "DEFAULT_USERS",
    "mail_translator",
    "MAIL_COMPONENT_CLASSES",
    "MailServerComponent",
    "ViewMailServerComponent",
    "EncryptorComponent",
    "DecryptorComponent",
    "MailClientComponent",
    "ViewMailClientComponent",
    "MailStore",
    "Mailbox",
    "StoredMessage",
    "MailStoreError",
    "KeyRing",
    "encrypt",
    "decrypt",
    "derive_key",
    "CryptoError",
    "CIPHER_OVERHEAD_BYTES",
    "WorkloadConfig",
    "WorkloadResult",
    "mail_workload",
    "open_loop_mail_ops",
    "run_clients",
]
