"""Credential translation for the mail service (paper §3.3).

"In our mail service example, node and link credentials need to be
translated into values of two service properties, Confidentiality and
TrustLevel.  Informally, these correspond to whether or not a link/node
can maintain confidentiality of component interactions, and the extent
to which a node can be trusted."

Node credential ``trust_level`` (an application-independent statement
about the administrative domain) becomes the service's ``TrustLevel``;
the security of every hop of a path becomes ``Confidentiality``.
"""

from __future__ import annotations

from typing import Any, Dict

from ...network import FunctionTranslator, NodeInfo, PathInfo

__all__ = ["mail_translator", "TRUST_CREDENTIAL"]

#: the application-independent node credential the service cares about
TRUST_CREDENTIAL = "trust_level"


def _node_props(node: NodeInfo) -> Dict[str, Any]:
    props: Dict[str, Any] = {"Confidentiality": True}  # a node trusts itself
    trust = node.credentials.get(TRUST_CREDENTIAL)
    if trust is not None:
        props["TrustLevel"] = int(trust)
    return props


def _path_props(path: PathInfo) -> Dict[str, Any]:
    # A local (same-node) path is always confidential; otherwise every
    # hop must be secure.
    return {"Confidentiality": bool(path.secure)}


def mail_translator() -> FunctionTranslator:
    """The service-specific translation functions for the mail service."""
    return FunctionTranslator(node_fn=_node_props, path_fn=_path_props)
