"""Mail state: accounts, folders, contacts, messages.

"In addition to traditional mail functionality — user accounts, folders,
contact lists, and the ability to send and receive e-mail, our example
service allows a user to associate a sensitivity level with each
message."

The same store class backs both the primary ``MailServer`` (unbounded
sensitivity) and ``ViewMailServer`` data views (``max_sensitivity``
bound): a view's store refuses messages above its bound, which is the
state-subset semantics the planner's trust conditions protect.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["StoredMessage", "Mailbox", "MailStore", "MailStoreError"]

_message_ids = itertools.count(1)


class MailStoreError(ValueError):
    """Unknown account, sensitivity violation, or malformed message."""


@dataclass(frozen=True, slots=True)
class StoredMessage:
    """One e-mail message as held by a store (body already encrypted)."""

    sender: str
    recipient: str
    sensitivity: int
    body: bytes
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if not 1 <= self.sensitivity <= 5:
            raise MailStoreError(f"sensitivity out of range: {self.sensitivity}")

    @property
    def size_bytes(self) -> int:
        return len(self.body) + 96  # headers/envelope estimate


@dataclass
class Mailbox:
    """Folders of one account.

    ``inbox`` and ``sent`` always exist; users may add custom folders
    and move messages between them ("traditional mail functionality —
    user accounts, folders, contact lists", §2).
    """

    folders: Dict[str, List[StoredMessage]] = field(
        default_factory=lambda: {"inbox": [], "sent": []}
    )
    contacts: List[str] = field(default_factory=list)

    @property
    def inbox(self) -> List[StoredMessage]:
        return self.folders["inbox"]

    @property
    def sent(self) -> List[StoredMessage]:
        return self.folders["sent"]

    def folder(self, name: str) -> List[StoredMessage]:
        try:
            return self.folders[name]
        except KeyError:
            raise MailStoreError(f"no folder {name!r}") from None


class MailStore:
    """Accounts + folders, optionally bounded by sensitivity.

    ``max_sensitivity=None`` is the primary (full state); an integer
    bound makes this a data-view store that only accepts messages at or
    below the bound.
    """

    def __init__(self, max_sensitivity: Optional[int] = None) -> None:
        if max_sensitivity is not None and not 1 <= max_sensitivity <= 5:
            raise MailStoreError(f"bad sensitivity bound {max_sensitivity}")
        self.max_sensitivity = max_sensitivity
        self._accounts: Dict[str, Mailbox] = {}
        self.messages_stored = 0

    # -- accounts -----------------------------------------------------------
    def create_account(self, user: str, contacts: Iterable[str] = ()) -> Mailbox:
        if user in self._accounts:
            raise MailStoreError(f"account {user!r} already exists")
        box = Mailbox(contacts=list(contacts))
        self._accounts[user] = box
        return box

    def has_account(self, user: str) -> bool:
        return user in self._accounts

    def ensure_account(self, user: str) -> Mailbox:
        if user not in self._accounts:
            self._accounts[user] = Mailbox()
        return self._accounts[user]

    def mailbox(self, user: str) -> Mailbox:
        try:
            return self._accounts[user]
        except KeyError:
            raise MailStoreError(f"no account {user!r}") from None

    def users(self) -> List[str]:
        return sorted(self._accounts)

    def contacts(self, user: str) -> List[str]:
        return list(self.mailbox(user).contacts)

    def add_contact(self, user: str, contact: str) -> None:
        box = self.mailbox(user)
        if contact not in box.contacts:
            box.contacts.append(contact)

    # -- folders ------------------------------------------------------------
    def create_folder(self, user: str, name: str) -> None:
        box = self.mailbox(user)
        if not name:
            raise MailStoreError("folder name must be non-empty")
        if name in box.folders:
            raise MailStoreError(f"folder {name!r} already exists")
        box.folders[name] = []

    def folder_names(self, user: str) -> List[str]:
        return sorted(self.mailbox(user).folders)

    def move_message(self, user: str, msg_id: int, dest: str) -> StoredMessage:
        """Move one message from whatever folder holds it into ``dest``."""
        box = self.mailbox(user)
        target = box.folder(dest)
        for folder in box.folders.values():
            for i, msg in enumerate(folder):
                if msg.msg_id == msg_id:
                    if folder is target:
                        return msg
                    folder.pop(i)
                    target.append(msg)
                    return msg
        raise MailStoreError(f"{user!r} has no message {msg_id}")

    # -- messages --------------------------------------------------------------
    def accepts(self, sensitivity: int) -> bool:
        return self.max_sensitivity is None or sensitivity <= self.max_sensitivity

    def store(self, message: StoredMessage) -> None:
        """File into the recipient's inbox and the sender's sent folder."""
        if not self.accepts(message.sensitivity):
            raise MailStoreError(
                f"message sensitivity {message.sensitivity} exceeds store bound "
                f"{self.max_sensitivity}"
            )
        self.ensure_account(message.recipient).inbox.append(message)
        if self.has_account(message.sender):
            self.mailbox(message.sender).sent.append(message)
        self.messages_stored += 1

    def fetch(
        self,
        user: str,
        since_id: int = 0,
        max_sensitivity: Optional[int] = None,
    ) -> List[StoredMessage]:
        """Inbox messages newer than ``since_id`` within the bound."""
        box = self.ensure_account(user)
        bound = max_sensitivity
        if self.max_sensitivity is not None:
            bound = min(bound, self.max_sensitivity) if bound is not None else self.max_sensitivity
        return [
            m
            for m in box.inbox
            if m.msg_id > since_id and (bound is None or m.sensitivity <= bound)
        ]

    def inbox_size(self, user: str) -> int:
        return len(self.ensure_account(user).inbox)

    def __len__(self) -> int:
        return len(self._accounts)
