"""Client workload of the case study (paper §4.2).

"Each client simulates the behavior of a cluster of users by sending out
100 messages and receiving messages 10 times at the maximum rate
permitted by a deployment."

A workload client drives one bound :class:`ServiceProxy`: ``n_sends``
send operations back-to-back (no think time), then ``n_receives``
fetches.  Each send aggregates ``cluster_size`` users' messages
(``multiplicity`` for the coherence unit-count), mirroring the paper's
"cluster of users" framing; sensitivities are drawn within the site's
trust bound (users at a site operate at the levels their site is
entrusted with), so sends are serviceable locally and the Figure 7
send-latency groups emerge from coherence policy alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Sequence

from ...sim.resources import Monitor
from ...smock import ServiceProxy

__all__ = [
    "WorkloadConfig",
    "WorkloadResult",
    "mail_workload",
    "open_loop_mail_ops",
    "run_clients",
]


@dataclass
class WorkloadConfig:
    """Parameters of one workload client."""

    user: str
    peers: Sequence[str]
    n_sends: int = 100
    n_receives: int = 10
    cluster_size: int = 10
    #: highest sensitivity this site's users operate at
    max_sensitivity: int = 5
    #: fraction of receives probing above the local view's bound (misses)
    remote_fetch_fraction: float = 0.2
    #: actual message body size; kept small because bodies really are
    #: encrypted/decrypted in pure Python on every hop
    body_bytes: int = 256
    seed: int = 0


@dataclass
class WorkloadResult:
    """Measured latencies of one workload client, in simulated ms."""

    user: str
    send_latency: Monitor = field(default_factory=lambda: Monitor("send"))
    receive_latency: Monitor = field(default_factory=lambda: Monitor("receive"))
    errors: List[str] = field(default_factory=list)

    @property
    def mean_send_ms(self) -> float:
        return self.send_latency.mean

    @property
    def mean_receive_ms(self) -> float:
        return self.receive_latency.mean


def mail_workload(
    proxy: ServiceProxy, config: WorkloadConfig
) -> Generator[Any, Any, WorkloadResult]:
    """Process generator: run one client's workload, measuring latencies."""
    rng = random.Random((config.seed, config.user).__repr__())
    sim = proxy.runtime.sim
    result = WorkloadResult(user=config.user)
    body = "x" * config.body_bytes

    # Per-op latency histograms at the workload layer (windowed, so SLO
    # reports get per-interval percentiles); handles resolved once.
    metrics = proxy.runtime.obs.metrics
    send_hist = recv_hist = None
    if metrics.enabled:
        send_hist = metrics.windowed_histogram(
            "workload.op_sim_ms", service="mail", op="send_mail"
        )
        recv_hist = metrics.windowed_histogram(
            "workload.op_sim_ms", service="mail", op="fetch_mail"
        )

    for i in range(config.n_sends):
        recipient = rng.choice(list(config.peers)) if config.peers else config.user
        sensitivity = rng.randint(1, config.max_sensitivity)
        t0 = sim.now
        resp = yield from proxy.request(
            "send_mail",
            payload={
                "recipient": recipient,
                "sensitivity": sensitivity,
                "body": body,
                "multiplicity": config.cluster_size,
            },
            size_bytes=config.body_bytes + 128,
        )
        result.send_latency.observe(sim.now - t0)
        if send_hist is not None:
            send_hist.observe(sim.now - t0)
        if not resp.ok:
            result.errors.append(f"send[{i}]: {resp.error}")

    for i in range(config.n_receives):
        probe_remote = rng.random() < config.remote_fetch_fraction
        max_s = 5 if probe_remote else config.max_sensitivity
        t0 = sim.now
        resp = yield from proxy.request(
            "fetch_mail",
            payload={"user": config.user, "max_sensitivity": max_s},
            size_bytes=256,
        )
        result.receive_latency.observe(sim.now - t0)
        if recv_hist is not None:
            recv_hist.observe(sim.now - t0)
        if not resp.ok:
            result.errors.append(f"receive[{i}]: {resp.error}")

    return result


def open_loop_mail_ops(
    send_fraction: float = 0.7,
    body_bytes: int = 64,
    max_sensitivity: int = 3,
    cluster_size: int = 1,
):
    """Op factory for the open-loop load driver (:mod:`repro.load`).

    Each arrival becomes one send (probability ``send_fraction``) or one
    fetch, shaped exactly like :func:`mail_workload`'s requests — the
    arriving user is the sender/reader, the recipient is drawn uniformly
    from the roster (hot-*user* skew already comes from the driver's
    Zipf draw over arriving users).  The body is constant so the
    memoized crypto path behaves as in steady state; the simulated CPU
    charge per request is unaffected.
    """
    if not 0.0 <= send_fraction <= 1.0:
        raise ValueError(f"send_fraction must be in [0, 1], got {send_fraction}")
    body = "x" * body_bytes

    def ops(rng: random.Random, user: str, roster: Sequence[str]):
        if rng.random() < send_fraction:
            recipient = roster[rng.randrange(len(roster))]
            payload = {
                "recipient": recipient,
                "sensitivity": rng.randint(1, max_sensitivity),
                "body": body,
                "multiplicity": cluster_size,
            }
            return ("send_mail", payload, body_bytes + 128)
        payload = {"user": user, "max_sensitivity": max_sensitivity}
        return ("fetch_mail", payload, 256)

    return ops


def run_clients(
    runtime: Any,
    proxies: Sequence[ServiceProxy],
    configs: Sequence[WorkloadConfig],
) -> List[WorkloadResult]:
    """Run several workload clients concurrently; returns their results."""
    if len(proxies) != len(configs):
        raise ValueError("need one config per proxy")
    procs = [
        runtime.sim.process(mail_workload(proxy, cfg), name=f"workload:{cfg.user}")
        for proxy, cfg in zip(proxies, configs)
    ]
    runtime.sim.run()
    results = []
    for proc in procs:
        if proc.failed:
            raise proc.value
        results.append(proc.value)
    return results
