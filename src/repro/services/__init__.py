"""Example services built on the framework."""
