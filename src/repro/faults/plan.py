"""Declarative fault schedules.

A :class:`FaultPlan` is an ordered list of :class:`FaultAction` items on
the simulated timeline — the chaos script of an experiment.  Plans are
data (inspectable, hashable into reports) and can be parsed from the
compact CLI syntax::

    crash:sandiego-gw@2000          # fail-stop the node at t=2000ms
    restart:sandiego-gw@6000        # bring it back (empty) at t=6000ms
    partition:newyork-gw/newyork-ms@1000    # sever the link
    heal:newyork-gw/newyork-ms@4000         # restore it
    drop:sandiego-gw/sandiego-client1:0.3@1000-5000   # lose 30% of
                                    # messages on the link in [1s, 5s)
    delay:sandiego-gw/sandiego-client1:25@1000-5000   # +25ms per message

Injection itself is performed by :class:`repro.faults.FaultInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["FaultKind", "FaultAction", "FaultPlan", "FaultPlanError"]


class FaultPlanError(ValueError):
    """Malformed fault specification."""


class FaultKind:
    """The supported fault vocabulary (plain strings, not an enum, so
    plans serialize trivially into benchmark reports)."""

    CRASH = "crash"
    RESTART = "restart"
    PARTITION = "partition"
    HEAL = "heal"
    DROP = "drop"
    DELAY = "delay"

    ALL = (CRASH, RESTART, PARTITION, HEAL, DROP, DELAY)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault.

    ``node`` is set for crash/restart; ``link`` for the rest.  ``at_ms``
    is the injection instant; window faults (drop/delay) also carry
    ``until_ms``.  ``magnitude`` is the drop probability in [0, 1] or
    the added delay in ms.
    """

    kind: str
    at_ms: float
    node: Optional[str] = None
    link: Optional[Tuple[str, str]] = None
    until_ms: Optional[float] = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}")
        if self.kind in (FaultKind.CRASH, FaultKind.RESTART):
            if not self.node:
                raise FaultPlanError(f"{self.kind} fault needs a node")
        elif self.link is None:
            raise FaultPlanError(f"{self.kind} fault needs a link")
        if self.kind in (FaultKind.DROP, FaultKind.DELAY):
            if self.until_ms is None or self.until_ms <= self.at_ms:
                raise FaultPlanError(
                    f"{self.kind} fault needs a window: T1-T2 with T2 > T1"
                )
        if self.kind == FaultKind.DROP and not 0.0 <= self.magnitude <= 1.0:
            raise FaultPlanError(
                f"drop probability must be in [0, 1], got {self.magnitude}"
            )
        if self.kind == FaultKind.DELAY and self.magnitude < 0:
            raise FaultPlanError(f"negative delay: {self.magnitude}")

    @property
    def subject(self) -> str:
        return self.node if self.node else "<->".join(self.link)  # type: ignore[arg-type]

    def describe(self) -> str:
        window = (
            f"@{self.at_ms:.0f}-{self.until_ms:.0f}"
            if self.until_ms is not None
            else f"@{self.at_ms:.0f}"
        )
        mag = f":{self.magnitude:g}" if self.kind in (FaultKind.DROP, FaultKind.DELAY) else ""
        subject = self.node if self.node else "/".join(self.link)  # type: ignore[arg-type]
        return f"{self.kind}:{subject}{mag}{window}"


@dataclass
class FaultPlan:
    """An ordered fault schedule plus the RNG seed for stochastic faults."""

    actions: List[FaultAction] = field(default_factory=list)
    seed: int = 0

    def add(self, action: FaultAction) -> "FaultPlan":
        self.actions.append(action)
        return self

    def sorted_actions(self) -> List[FaultAction]:
        return sorted(self.actions, key=lambda a: a.at_ms)

    def describe(self) -> List[str]:
        return [a.describe() for a in self.sorted_actions()]

    def __len__(self) -> int:
        return len(self.actions)

    # -- parsing -----------------------------------------------------------
    @classmethod
    def parse(cls, specs: Sequence[str], seed: int = 0) -> "FaultPlan":
        """Build a plan from CLI-style specs (see module docstring)."""
        plan = cls(seed=seed)
        for spec in specs:
            plan.add(cls.parse_action(spec))
        return plan

    @staticmethod
    def parse_action(spec: str) -> FaultAction:
        text = spec.strip()
        head, sep, when = text.rpartition("@")
        if not sep:
            raise FaultPlanError(f"{spec!r}: missing '@time'")
        try:
            if "-" in when:
                t1_s, t2_s = when.split("-", 1)
                at_ms, until_ms = float(t1_s), float(t2_s)
            else:
                at_ms, until_ms = float(when), None
        except ValueError:
            raise FaultPlanError(f"{spec!r}: bad time {when!r}") from None

        parts = head.split(":")
        kind = parts[0]
        if kind in (FaultKind.CRASH, FaultKind.RESTART):
            if len(parts) != 2:
                raise FaultPlanError(f"{spec!r}: expected {kind}:NODE@T")
            return FaultAction(kind=kind, at_ms=at_ms, node=parts[1])
        if kind in (FaultKind.PARTITION, FaultKind.HEAL):
            if len(parts) != 2 or "/" not in parts[1]:
                raise FaultPlanError(f"{spec!r}: expected {kind}:A/B@T")
            a, b = parts[1].split("/", 1)
            return FaultAction(kind=kind, at_ms=at_ms, link=(a, b))
        if kind in (FaultKind.DROP, FaultKind.DELAY):
            if len(parts) != 3 or "/" not in parts[1]:
                raise FaultPlanError(
                    f"{spec!r}: expected {kind}:A/B:MAGNITUDE@T1-T2"
                )
            a, b = parts[1].split("/", 1)
            try:
                magnitude = float(parts[2])
            except ValueError:
                raise FaultPlanError(f"{spec!r}: bad magnitude {parts[2]!r}") from None
            return FaultAction(
                kind=kind, at_ms=at_ms, link=(a, b),
                until_ms=until_ms, magnitude=magnitude,
            )
        raise FaultPlanError(
            f"{spec!r}: unknown fault kind {kind!r} (one of {FaultKind.ALL})"
        )
