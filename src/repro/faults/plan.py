"""Declarative fault schedules.

A :class:`FaultPlan` is an ordered list of :class:`FaultAction` items on
the simulated timeline — the chaos script of an experiment.  Plans are
data (inspectable, hashable into reports) and can be parsed from the
compact CLI syntax::

    crash:sandiego-gw@2000          # fail-stop the node at t=2000ms
    restart:sandiego-gw@6000        # bring it back (empty) at t=6000ms
    partition:newyork-gw/newyork-ms@1000    # sever the link
    heal:newyork-gw/newyork-ms@4000         # restore it
    drop:sandiego-gw/sandiego-client1:0.3@1000-5000   # lose 30% of
                                    # messages on the link in [1s, 5s)
    delay:sandiego-gw/sandiego-client1:25@1000-5000   # +25ms per message
    duplicate:sandiego-gw/newyork-ms:0.2@1000-5000    # re-deliver 20% of
                                    # messages crossing the link
    reorder:sandiego-gw/newyork-ms:40@1000-5000       # delay a random
                                    # subset up to 40ms so later messages
                                    # overtake them
    corrupt:sandiego-gw/newyork-ms:0.1@1000-5000      # garble 10% of
                                    # messages (receiver rejects them)
    split:newyork-gw,newyork-ms|sandiego-gw,seattle-gw@1000-6000
                                    # network split: sever every link
                                    # between the groups, heal at T2

Injection itself is performed by :class:`repro.faults.FaultInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["FaultKind", "FaultAction", "FaultPlan", "FaultPlanError"]


class FaultPlanError(ValueError):
    """Malformed fault specification."""


class FaultKind:
    """The supported fault vocabulary (plain strings, not an enum, so
    plans serialize trivially into benchmark reports)."""

    CRASH = "crash"
    RESTART = "restart"
    PARTITION = "partition"
    HEAL = "heal"
    DROP = "drop"
    DELAY = "delay"
    #: message faults: re-deliver / out-of-order / garble within a window
    DUPLICATE = "duplicate"
    REORDER = "reorder"
    CORRUPT = "corrupt"
    #: multi-link network split: sever every link between node groups
    SPLIT = "split"

    ALL = (
        CRASH, RESTART, PARTITION, HEAL, DROP, DELAY,
        DUPLICATE, REORDER, CORRUPT, SPLIT,
    )
    #: window faults carry an ``until_ms`` and are active in [at, until)
    WINDOWED = (DROP, DELAY, DUPLICATE, REORDER, CORRUPT, SPLIT)
    #: window faults whose magnitude is a probability in [0, 1]
    PROBABILISTIC = (DROP, DUPLICATE, CORRUPT)
    #: window faults whose magnitude is a duration in ms
    TIMED = (DELAY, REORDER)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault.

    ``node`` is set for crash/restart; ``link`` for link and message
    faults; ``groups`` for a multi-link split.  ``at_ms`` is the
    injection instant; window faults (drop/delay/duplicate/reorder/
    corrupt/split) also carry ``until_ms``.  ``magnitude`` is a
    probability in [0, 1] (drop/duplicate/corrupt) or a duration in ms
    (delay, and for reorder the maximum hold-back).
    """

    kind: str
    at_ms: float
    node: Optional[str] = None
    link: Optional[Tuple[str, str]] = None
    until_ms: Optional[float] = None
    magnitude: float = 0.0
    #: node groups for ``split`` (every cross-group link is severed)
    groups: Optional[Tuple[Tuple[str, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}")
        if self.at_ms < 0 or (self.until_ms is not None and self.until_ms < 0):
            raise FaultPlanError(f"{self.kind} fault has a negative timestamp")
        if self.kind in (FaultKind.CRASH, FaultKind.RESTART):
            if not self.node:
                raise FaultPlanError(f"{self.kind} fault needs a node")
        elif self.kind == FaultKind.SPLIT:
            if not self.groups or len(self.groups) < 2:
                raise FaultPlanError("split fault needs >= 2 node groups")
            if any(not g for g in self.groups):
                raise FaultPlanError("split fault has an empty node group")
            seen: set = set()
            for group in self.groups:
                for name in group:
                    if name in seen:
                        raise FaultPlanError(
                            f"split fault lists node {name!r} in two groups"
                        )
                    seen.add(name)
        elif self.link is None:
            raise FaultPlanError(f"{self.kind} fault needs a link")
        if self.kind in FaultKind.WINDOWED:
            if self.until_ms is None or self.until_ms <= self.at_ms:
                raise FaultPlanError(
                    f"{self.kind} fault needs a window: T1-T2 with T2 > T1"
                )
        if self.kind in FaultKind.PROBABILISTIC and not 0.0 <= self.magnitude <= 1.0:
            raise FaultPlanError(
                f"{self.kind} probability must be in [0, 1], got {self.magnitude}"
            )
        if self.kind in FaultKind.TIMED and self.magnitude < 0:
            raise FaultPlanError(f"negative {self.kind} duration: {self.magnitude}")

    @property
    def subject(self) -> str:
        if self.node:
            return self.node
        if self.groups is not None:
            return "|".join(",".join(g) for g in self.groups)
        return "<->".join(self.link)  # type: ignore[arg-type]

    def describe(self) -> str:
        window = (
            f"@{self.at_ms:.0f}-{self.until_ms:.0f}"
            if self.until_ms is not None
            else f"@{self.at_ms:.0f}"
        )
        has_mag = self.kind in FaultKind.PROBABILISTIC or self.kind in FaultKind.TIMED
        mag = f":{self.magnitude:g}" if has_mag else ""
        if self.node:
            subject = self.node
        elif self.groups is not None:
            subject = "|".join(",".join(g) for g in self.groups)
        else:
            subject = "/".join(self.link)  # type: ignore[arg-type]
        return f"{self.kind}:{subject}{mag}{window}"


@dataclass
class FaultPlan:
    """An ordered fault schedule plus the RNG seed for stochastic faults."""

    actions: List[FaultAction] = field(default_factory=list)
    seed: int = 0

    def add(self, action: FaultAction) -> "FaultPlan":
        self.actions.append(action)
        return self

    def sorted_actions(self) -> List[FaultAction]:
        return sorted(self.actions, key=lambda a: a.at_ms)

    def describe(self) -> List[str]:
        return [a.describe() for a in self.sorted_actions()]

    def __len__(self) -> int:
        return len(self.actions)

    def validate(self) -> "FaultPlan":
        """Reject plans that would silently misbehave at injection time.

        Raises :class:`FaultPlanError` for (1) actions with negative
        timestamps, (2) duplicate actions — same (kind, subject, at_ms)
        scheduled twice, and (3) overlapping windows of the same kind on
        the same subject (two drop windows on one link at once compound
        their probabilities in an order-dependent way; the plan should
        say what it means).  Returns ``self`` so callers can chain.
        """
        seen: set = set()
        open_windows: dict = {}
        for action in self.sorted_actions():
            if action.at_ms < 0 or (
                action.until_ms is not None and action.until_ms < 0
            ):
                raise FaultPlanError(
                    f"{action.describe()}: negative timestamp"
                )
            key = (action.kind, action.subject, action.at_ms)
            if key in seen:
                raise FaultPlanError(
                    f"{action.describe()}: duplicate action "
                    f"(same kind/subject scheduled twice at t={action.at_ms:g})"
                )
            seen.add(key)
            if action.until_ms is None:
                continue
            wkey = (action.kind, action.subject)
            prev = open_windows.get(wkey)
            if prev is not None and action.at_ms < prev.until_ms:
                raise FaultPlanError(
                    f"{action.describe()}: overlaps {prev.describe()} "
                    f"(same {action.kind} window on one subject)"
                )
            open_windows[wkey] = action
        return self

    # -- parsing -----------------------------------------------------------
    @classmethod
    def parse(cls, specs: Sequence[str], seed: int = 0) -> "FaultPlan":
        """Build a plan from CLI-style specs (see module docstring)."""
        plan = cls(seed=seed)
        for spec in specs:
            plan.add(cls.parse_action(spec))
        return plan

    @staticmethod
    def parse_action(spec: str) -> FaultAction:
        text = spec.strip()
        head, sep, when = text.rpartition("@")
        if not sep:
            raise FaultPlanError(f"{spec!r}: missing '@time'")
        try:
            if "-" in when:
                t1_s, t2_s = when.split("-", 1)
                at_ms, until_ms = float(t1_s), float(t2_s)
            else:
                at_ms, until_ms = float(when), None
        except ValueError:
            raise FaultPlanError(f"{spec!r}: bad time {when!r}") from None

        parts = head.split(":")
        kind = parts[0]
        if kind in (FaultKind.CRASH, FaultKind.RESTART):
            if len(parts) != 2:
                raise FaultPlanError(f"{spec!r}: expected {kind}:NODE@T")
            return FaultAction(kind=kind, at_ms=at_ms, node=parts[1])
        if kind in (FaultKind.PARTITION, FaultKind.HEAL):
            if len(parts) != 2 or "/" not in parts[1]:
                raise FaultPlanError(f"{spec!r}: expected {kind}:A/B@T")
            a, b = parts[1].split("/", 1)
            return FaultAction(kind=kind, at_ms=at_ms, link=(a, b))
        if kind in (
            FaultKind.DROP, FaultKind.DELAY,
            FaultKind.DUPLICATE, FaultKind.REORDER, FaultKind.CORRUPT,
        ):
            if len(parts) != 3 or "/" not in parts[1]:
                raise FaultPlanError(
                    f"{spec!r}: expected {kind}:A/B:MAGNITUDE@T1-T2"
                )
            a, b = parts[1].split("/", 1)
            try:
                magnitude = float(parts[2])
            except ValueError:
                raise FaultPlanError(f"{spec!r}: bad magnitude {parts[2]!r}") from None
            return FaultAction(
                kind=kind, at_ms=at_ms, link=(a, b),
                until_ms=until_ms, magnitude=magnitude,
            )
        if kind == FaultKind.SPLIT:
            if len(parts) != 2 or "|" not in parts[1]:
                raise FaultPlanError(
                    f"{spec!r}: expected split:A,B|C,D@T1-T2"
                )
            groups = tuple(
                tuple(n for n in group.split(",") if n)
                for group in parts[1].split("|")
            )
            return FaultAction(
                kind=kind, at_ms=at_ms, groups=groups, until_ms=until_ms
            )
        raise FaultPlanError(
            f"{spec!r}: unknown fault kind {kind!r} (one of {FaultKind.ALL})"
        )
