"""Heartbeat-based failure detection.

The paper's framework has no failure story; this detector supplies the
missing observation channel the §6 monitoring integration needs for
fail-stop faults.  A monitor process on a *home* node pings every other
host over the simulated network at a fixed interval; ``miss_threshold``
consecutive missed heartbeats declare the host dead.  Detection latency
is therefore bounded by roughly ``miss_threshold × interval_ms`` plus
ping round-trip time — the model documented in DESIGN.md.

Detections are published two ways, both belief-layer only:

- :meth:`Network.set_node_up` flips the planner's believed liveness, so
  the next planning round excludes the host;
- a :class:`FailureEvent` (a ``ChangeEvent`` with ``kind="node"``,
  ``attribute="up"``) goes through :meth:`NetworkMonitor.report`, which
  dedupes and fans out to subscribers — the replan manager among them.

Recoveries (a restarted host answering pings again) flow through the
same path with ``new=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from ..network import NetworkError
from ..network.monitor import ChangeEvent, NetworkMonitor
from ..sim import FaultError

__all__ = ["FailureDetector", "FailureEvent", "HEARTBEAT_BYTES"]

#: on-the-wire size of one heartbeat ping or ack
HEARTBEAT_BYTES = 64


@dataclass(frozen=True)
class FailureEvent(ChangeEvent):
    """A liveness transition observed via heartbeats.

    ``new`` False = detected failure, True = detected recovery.
    ``detection_ms`` is the lag behind ground truth when the injector's
    crash instant is known (recoveries and false positives carry 0).
    """

    detection_ms: float = 0.0


class FailureDetector:
    """Pings hosts from a home node; declares them dead after misses."""

    def __init__(
        self,
        runtime: Any,
        monitor: NetworkMonitor,
        interval_ms: float = 250.0,
        miss_threshold: int = 3,
        home_node: Optional[str] = None,
        ping_timeout_ms: Optional[float] = None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.runtime = runtime
        self.monitor = monitor
        self.interval_ms = interval_ms
        self.miss_threshold = miss_threshold
        self.home_node = home_node or runtime.server_node
        #: a ping slower than this counts as missed (dropped heartbeats
        #: never return at all — the timeout is what bounds them).
        #: ``None`` sizes the timeout per target from the analytic path
        #: RTT — a fixed value shorter than a target's round trip would
        #: declare every distant node dead.
        self.ping_timeout_ms = ping_timeout_ms
        self._misses: Dict[str, int] = {}
        self._running = False
        self.failures_detected = 0
        self.recoveries_detected = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.runtime.sim.process(self._heartbeat_loop(), name="failure-detector")

    def stop(self) -> None:
        self._running = False

    # -- the heartbeat loop -------------------------------------------------
    def _heartbeat_loop(self) -> Generator[Any, Any, None]:
        """Ping every host each round, all round trips in flight at once.

        The round blocks until the slowest ping resolves (answer or
        timeout), then results are accounted in deterministic (sorted)
        order — so a round's wall time is one ping timeout, not the sum
        over hosts, and the detection-latency bound is
        ``miss_threshold × (interval + ping timeout)``.
        """
        sim = self.runtime.sim
        while self._running:
            yield sim.timeout(self.interval_ms)
            if not self._running:
                return
            targets = [
                name
                for name in sorted(self.runtime.transport.nodes)
                if name != self.home_node
            ]
            pings = [
                sim.process(self._ping(name), name=f"heartbeat:{name}")
                for name in targets
            ]
            yield sim.all_of(pings)
            for name, ping in zip(targets, pings):
                self._account(name, bool(ping.value))

    def _timeout_for(self, name: str) -> float:
        """Per-target ping budget: generous multiple of the analytic RTT."""
        if self.ping_timeout_ms is not None:
            return self.ping_timeout_ms
        try:
            one_way = self.runtime.network.path(self.home_node, name).latency_ms
        except NetworkError:
            return self.interval_ms  # no believed route: fail fast
        return max(self.interval_ms, 3.0 * 2.0 * one_way + 50.0)

    def _ping(self, name: str) -> Generator[Any, Any, bool]:
        """One heartbeat round trip, bounded by the ping timeout."""
        sim = self.runtime.sim
        transport = self.runtime.transport
        rpc = sim.process(
            transport.round_trip(
                self.home_node, name, HEARTBEAT_BYTES, HEARTBEAT_BYTES
            ),
            name=f"heartbeat-rtt:{name}",
        )
        timeout = sim.timeout(self._timeout_for(name))
        try:
            yield sim.any_of([rpc, timeout])
        except (FaultError, NetworkError):
            return False  # unreachable or crashed: missed heartbeat
        return rpc.triggered and not rpc.failed

    def _account(self, name: str, ok: bool) -> None:
        network = self.runtime.network
        believed_up = network.node(name).up
        if ok:
            self._misses[name] = 0
            if not believed_up:
                self._declare(name, up=True)
            return
        misses = self._misses.get(name, 0) + 1
        self._misses[name] = misses
        if believed_up and misses >= self.miss_threshold:
            self._declare(name, up=False)

    def _declare(self, name: str, up: bool) -> None:
        sim = self.runtime.sim
        metrics = self.runtime.obs.metrics
        self.runtime.network.set_node_up(name, up)
        detection_ms = 0.0
        if not up:
            self.failures_detected += 1
            crashed_at = getattr(
                self.runtime.transport.node(name), "crashed_at_ms", None
            )
            if crashed_at is not None:
                detection_ms = sim.now - crashed_at
                metrics.observe("faults.detection_ms", detection_ms)
            metrics.inc("faults.failures_detected", 1, node=name)
        else:
            self.recoveries_detected += 1
            self._misses[name] = 0
            metrics.inc("faults.recoveries_detected", 1, node=name)
        self.monitor.report(
            FailureEvent(
                time_ms=sim.now,
                kind="node",
                subject=name,
                attribute="up",
                old=not up,
                new=up,
                detection_ms=detection_ms,
            )
        )
