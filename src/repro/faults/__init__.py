"""Fault injection, failure detection, and chaos tooling.

The paper assumes a static, reliable environment; this package supplies
the failure model needed to study the framework's §6 adaptation loop
under infrastructure faults:

- :class:`FaultPlan` / :class:`FaultAction` — declarative, seeded fault
  schedules (node crash/restart, link partition/heal, probabilistic
  message drop, added delay), parseable from a compact CLI syntax;
- :class:`FaultInjector` — executes a plan against the live simulation
  (ground truth only — planner belief is never touched);
- :class:`FailureDetector` — heartbeat-based detection feeding
  :class:`FailureEvent` transitions into the network monitor, which the
  replan manager turns into failover redeployments.
"""

from .detector import HEARTBEAT_BYTES, FailureDetector, FailureEvent
from .injector import FaultInjector
from .plan import FaultAction, FaultKind, FaultPlan, FaultPlanError

__all__ = [
    "FaultPlan",
    "FaultAction",
    "FaultKind",
    "FaultPlanError",
    "FaultInjector",
    "FailureDetector",
    "FailureEvent",
    "HEARTBEAT_BYTES",
]
