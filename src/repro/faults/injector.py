"""Executes a :class:`FaultPlan` against a live runtime.

The injector mutates only *ground truth*: live :class:`SimNode` /
:class:`SimLink` state and (for partitions) the analytic topology that
stands in for IP rerouting.  It never touches the planner's believed
node liveness and never cleans up runtime registries — stale bundle
instances, directory entries and proxy bindings persist until the
failure detector notices and the replanner reconciles, so the window
between fault and recovery is exactly the detection latency the
experiment is measuring.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..smock.transport import FaultHook
from .plan import FaultAction, FaultKind, FaultPlan

__all__ = ["FaultInjector"]


@dataclass
class _Window:
    """One active message-fault window on a link."""

    kind: str
    link: Tuple[str, str]
    at_ms: float
    until_ms: float
    magnitude: float


class _InjectorHook(FaultHook):
    """Transport hook applying the injector's active fault windows."""

    def __init__(self, injector: "FaultInjector") -> None:
        self.injector = injector

    def on_hop(
        self, src: str, dst: str, hop_a: str, hop_b: str, size_bytes: int
    ) -> Optional[Any]:
        return self.injector._hop_verdict(hop_a, hop_b)

    def on_message(self, src: str, dst: str, size_bytes: int) -> Tuple[str, ...]:
        return self.injector._message_verdicts(src, dst)


class FaultInjector:
    """Schedules and applies fault actions on the simulator."""

    def __init__(self, runtime: Any, plan: Optional[FaultPlan] = None) -> None:
        self.runtime = runtime
        self.plan = plan or FaultPlan()
        self._rng = random.Random(self.plan.seed)
        self._windows: List[_Window] = []
        self._hook_installed = False
        #: ground-truth crash instants, by node (for recovery-time metrics)
        self.crash_times: Dict[str, float] = {}
        self.applied: List[FaultAction] = []

    # -- scheduling ---------------------------------------------------------
    def schedule(self, plan: Optional[FaultPlan] = None) -> None:
        """Validate the plan and register every action with the simulator."""
        if plan is not None:
            self.plan = plan
            self._rng = random.Random(plan.seed)
        self.plan.validate()
        sim = self.runtime.sim
        for action in self.plan.sorted_actions():
            sim.call_at(action.at_ms, lambda a=action: self.apply(a))

    def apply(self, action: FaultAction) -> None:
        """Apply one action immediately (also usable directly in tests)."""
        kind = action.kind
        if kind == FaultKind.CRASH:
            self.crash_node(action.node)  # type: ignore[arg-type]
        elif kind == FaultKind.RESTART:
            self.restart_node(action.node)  # type: ignore[arg-type]
        elif kind == FaultKind.PARTITION:
            self.partition_link(*action.link)  # type: ignore[misc]
        elif kind == FaultKind.HEAL:
            self.heal_link(*action.link)  # type: ignore[misc]
        elif kind == FaultKind.SPLIT:
            self.split_network(action.groups, action.until_ms)  # type: ignore[arg-type]
        else:  # drop / delay / duplicate / reorder / corrupt window
            self._open_window(action)
        self.applied.append(action)
        self.runtime.obs.metrics.inc(
            "faults.injected", 1, kind=kind, subject=action.subject
        )

    # -- node faults --------------------------------------------------------
    def crash_node(self, name: str) -> None:
        """Fail-stop ``name``: volatile state gone, instances dead.

        Live component instances are flagged ``failed`` *before* the
        node clears its install table, and coherence daemons are told to
        stop — but bundle registries, directory entries and client
        proxies are deliberately left stale for the detector/replanner
        to find.
        """
        node = self.runtime.transport.node(name)
        for instance in list(node.installed.values()):
            instance.failed = True
            stop = getattr(instance, "stop_daemon", None)
            if stop is not None:
                stop()
        node.crash()
        self.crash_times[name] = self.runtime.sim.now

    def restart_node(self, name: str) -> None:
        """Bring a crashed node back — empty, like a rebooted host."""
        self.runtime.transport.node(name).restart()

    # -- link faults --------------------------------------------------------
    def partition_link(self, a: str, b: str) -> None:
        """Sever a link: analytic routing avoids it at once (IP-style
        rerouting) and in-flight transfers on the live link fail."""
        self.runtime.network.set_link_up(a, b, False)
        self.runtime.transport.link(a, b).fail()

    def heal_link(self, a: str, b: str) -> None:
        self.runtime.network.set_link_up(a, b, True)
        self.runtime.transport.link(a, b).heal()

    def split_network(
        self,
        groups: Tuple[Tuple[str, ...], ...],
        until_ms: Optional[float] = None,
    ) -> List[Tuple[str, str]]:
        """Multi-link network split: sever every link whose endpoints
        fall in different groups (nodes in no group keep all links).
        When ``until_ms`` is given the severed links auto-heal then.
        Returns the severed (a, b) pairs."""
        side = {name: i for i, group in enumerate(groups) for name in group}
        severed: List[Tuple[str, str]] = []
        for link in self.runtime.network.links():
            sa, sb = side.get(link.a), side.get(link.b)
            if sa is None or sb is None or sa == sb or not link.up:
                continue
            self.partition_link(link.a, link.b)
            severed.append((link.a, link.b))
        if until_ms is not None and severed:
            sim = self.runtime.sim

            def _heal(pairs=tuple(severed)) -> None:
                for a, b in pairs:
                    self.heal_link(a, b)

            sim.call_at(until_ms, _heal)
        return severed

    # -- message faults -----------------------------------------------------
    def _open_window(self, action: FaultAction) -> None:
        window = _Window(
            kind=action.kind,
            link=tuple(sorted(action.link)),  # type: ignore[arg-type]
            at_ms=action.at_ms,
            until_ms=float(action.until_ms),  # type: ignore[arg-type]
            magnitude=action.magnitude,
        )
        self._windows.append(window)
        if not self._hook_installed:
            self.runtime.transport.fault_hook = _InjectorHook(self)
            self._hook_installed = True

    def _hop_verdict(self, hop_a: str, hop_b: str) -> Optional[Any]:
        now = self.runtime.sim.now
        key = tuple(sorted((hop_a, hop_b)))
        delay = 0.0
        for w in self._windows:
            if w.link != key or not (w.at_ms <= now < w.until_ms):
                continue
            if w.kind == FaultKind.DROP:
                if self._rng.random() < w.magnitude:
                    return "drop"
            elif w.kind == FaultKind.DELAY:
                delay += w.magnitude
        return delay or None

    def _message_verdicts(self, src: str, dst: str) -> Tuple[Any, ...]:
        """Message-level verdicts for one request crossing ``src -> dst``.

        Walks the current route and matches duplicate/reorder/corrupt
        windows against each hop; each matching window draws from the
        plan RNG.  Returns a tuple of ``"duplicate"`` / ``"corrupt"`` /
        ``("reorder", hold_ms)`` verdicts (empty in the common case).
        """
        active = [
            w for w in self._windows
            if w.kind in (FaultKind.DUPLICATE, FaultKind.REORDER, FaultKind.CORRUPT)
        ]
        if not active:
            return ()
        now = self.runtime.sim.now
        try:
            hops = self.runtime.network.path(src, dst).hops
        except Exception:
            return ()  # disconnected: the transport reports that itself
        keys = {tuple(sorted((h.a, h.b))) for h in hops}
        verdicts: List[Any] = []
        for w in active:
            if w.link not in keys or not (w.at_ms <= now < w.until_ms):
                continue
            if w.kind == FaultKind.REORDER:
                # Hold the message back a random slice of the window's
                # magnitude so later traffic overtakes it.
                hold = self._rng.random() * w.magnitude
                if hold > 0.0:
                    verdicts.append(("reorder", hold))
            elif self._rng.random() < w.magnitude:
                verdicts.append(w.kind)
        return tuple(verdicts)
