"""Directory-based cache coherence at view granularity (paper §3.2).

"Smock manages replicated component instances using a directory-based
cache coherence protocol.  The protocol maintains object consistency at
the granularity of views."

The directory tracks, per *family* (an original component such as
``MailServer``), the primary instance and every replica (view
configurations such as ``ViewMailServer[TrustLevel=3]``).  Replicas
buffer local updates; flush policies decide when a replica must
reconcile with its upstream (the communication itself is performed by
the replica component over its planned linkage, so coherence traffic
crosses exactly the links the planner selected — including any
Encryptor/Decryptor pairs).  On reconciliation the directory consults
the conflict map and delivers invalidations to the other replicas whose
configurations conflict with the propagated updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Tuple

from ..obs import Observability, resolve_obs
from .conflicts import ConflictMap, Update, ViewConfig
from .policies import FlushPolicy, NeverPolicy

__all__ = ["CoherenceDirectory", "ReplicaEntry", "CoherenceStats", "ReplicaHost"]


class ReplicaHost(Protocol):
    """What the directory needs from a replica component instance."""

    def on_invalidate(self, updates: List[Update]) -> None:
        """Mark state stale following a conflicting remote update."""
        ...


@dataclass
class CoherenceStats:
    """Aggregate protocol counters (reported by the benchmarks)."""

    local_updates: int = 0
    buffered_units: int = 0
    syncs: int = 0
    messages_propagated: int = 0
    bytes_propagated: int = 0
    invalidations: int = 0
    #: updates that the conflict map matched against some replica config
    conflict_map_hits: int = 0
    #: reads a replica had to forward upstream because its copy was stale
    stale_reads: int = 0
    #: buffered (client-acked but not yet propagated) updates discarded
    #: because their replica's host crashed — the write-back protocol's
    #: durability gap, surfaced instead of silently swallowed
    lost_updates: int = 0
    lost_units: int = 0


@dataclass
class ReplicaEntry:
    """Directory record for one replica."""

    replica_id: int
    family: str
    config: ViewConfig
    host: Any
    policy: FlushPolicy
    pending: List[Update] = field(default_factory=list)
    pending_units: int = 0
    last_flush_ms: float = 0.0
    stale_keys: set = field(default_factory=set)

    @property
    def dirty(self) -> bool:
        return bool(self.pending)


class CoherenceDirectory:
    """The coherence module of the Smock runtime."""

    def __init__(
        self,
        conflict_map: Optional[ConflictMap] = None,
        obs: Optional[Observability] = None,
        batch_propagation: bool = True,
    ) -> None:
        self.conflict_map = conflict_map or ConflictMap()
        self._primaries: Dict[str, Any] = {}
        self._replicas: Dict[int, ReplicaEntry] = {}
        self._by_family: Dict[str, List[int]] = {}
        self._next_id = 0
        self.stats = CoherenceStats()
        self.obs = resolve_obs(obs)
        #: knob: batched fan-out scans the drained batch once per distinct
        #: replica *config* instead of once per replica (the predicate
        #: depends only on (update, config), so replicas sharing a config
        #: receive the identical conflicting sub-batch either way).
        self.batch_propagation = batch_propagation
        # Metric handles resolved once: on_local_update runs per client
        # send and must not pay registry lookups (engine.Simulator pattern).
        metrics = self.obs.metrics
        if metrics.enabled:
            self._m_local_updates = metrics.counter("coherence.local_updates")
        else:
            self._m_local_updates = None
        #: per-family (invalidations, conflict_map_hits) counter handles,
        #: resolved on first broadcast for that family.
        self._inval_counters: Dict[str, Tuple[Any, Any]] = {}

    # -- registration -------------------------------------------------------
    def register_primary(self, family: str, host: Any) -> None:
        """Record the authoritative instance of a component family."""
        self._primaries[family] = host

    def primary_of(self, family: str) -> Optional[Any]:
        return self._primaries.get(family)

    def register_replica(
        self,
        family: str,
        config: ViewConfig,
        host: Any,
        policy: Optional[FlushPolicy] = None,
        now_ms: float = 0.0,
    ) -> ReplicaEntry:
        """Add a replica (view instance) to the directory."""
        entry = ReplicaEntry(
            replica_id=self._next_id,
            family=family,
            config=config,
            host=host,
            policy=policy or NeverPolicy(),
            last_flush_ms=now_ms,
        )
        self._next_id += 1
        self._replicas[entry.replica_id] = entry
        self._by_family.setdefault(family, []).append(entry.replica_id)
        return entry

    def unregister_replica(self, replica_id: int) -> None:
        entry = self._replicas.pop(replica_id, None)
        if entry is not None:
            self._by_family[entry.family].remove(replica_id)

    def replicas_of(self, family: str) -> List[ReplicaEntry]:
        return [self._replicas[i] for i in self._by_family.get(family, ())]

    def entry(self, replica_id: int) -> ReplicaEntry:
        return self._replicas[replica_id]

    # -- update path ------------------------------------------------------------
    def on_local_update(self, replica_id: int, update: Update, now_ms: float) -> bool:
        """Buffer a local update; True if the replica must reconcile now."""
        entry = self._replicas[replica_id]
        entry.pending.append(update)
        entry.pending_units += update.multiplicity
        self.stats.local_updates += 1
        self.stats.buffered_units += update.multiplicity
        if self._m_local_updates is not None:
            self._m_local_updates.inc()
        return entry.policy.should_flush(entry.pending_units, now_ms, entry.last_flush_ms)

    def needs_flush(self, replica_id: int, now_ms: float) -> bool:
        """Poll hook for time-driven policies (coherence daemons)."""
        entry = self._replicas[replica_id]
        return entry.dirty and entry.policy.should_flush(
            entry.pending_units, now_ms, entry.last_flush_ms
        )

    def drain(self, replica_id: int) -> Tuple[List[Update], int]:
        """Take the pending batch for propagation; returns (batch, units)."""
        entry = self._replicas[replica_id]
        batch, units = entry.pending, entry.pending_units
        entry.pending = []
        entry.pending_units = 0
        return batch, units

    def record_flush(self, replica_id: int, now_ms: float, batch: List[Update]) -> None:
        """Bookkeeping after a successful upstream reconciliation."""
        entry = self._replicas[replica_id]
        entry.last_flush_ms = now_ms
        messages = sum(u.multiplicity for u in batch)
        size = sum(u.size_bytes for u in batch)
        self.stats.syncs += 1
        self.stats.messages_propagated += messages
        self.stats.bytes_propagated += size
        m = self.obs.metrics
        if m.enabled:
            policy = type(entry.policy).__name__
            m.inc("coherence.flushes", 1, policy=policy)
            m.inc("coherence.messages_propagated", messages, policy=policy)
            m.inc("coherence.bytes_propagated", size, policy=policy)

    def report_lost(self, replica_id: int) -> Tuple[List[Update], int]:
        """Discard a dead replica's dirty buffer, accounting it as lost.

        Called during failover reconciliation when the replica's host
        crashed before its flush policy fired: those updates were acked
        to clients but never propagated, and fail-stop semantics mean
        they are unrecoverable.  Returns (batch, units) so callers can
        report exactly what was lost.
        """
        entry = self._replicas.get(replica_id)
        if entry is None or not entry.pending:
            return [], 0
        batch, units = self.drain(replica_id)
        self.stats.lost_updates += len(batch)
        self.stats.lost_units += units
        self.obs.metrics.inc(
            "coherence.lost_updates", len(batch), family=entry.family
        )
        return batch, units

    def requeue(self, replica_id: int, batch: List[Update]) -> None:
        """Put a batch back after a failed propagation attempt."""
        entry = self._replicas[replica_id]
        entry.pending = batch + entry.pending
        entry.pending_units += sum(u.multiplicity for u in batch)
        self.obs.metrics.inc("coherence.requeues")

    # -- invalidation fan-out ----------------------------------------------------
    def broadcast_invalidations(
        self,
        family: str,
        batch: List[Update],
        origin_config: Optional[ViewConfig] = None,
    ) -> int:
        """Notify replicas whose configuration conflicts with ``batch``.

        Called at the primary when propagated updates are applied.
        Returns the number of replica invalidations delivered.  Delivery
        is metadata-only (the replica marks affected state stale and
        re-fetches on demand); the fetch traffic then flows over planned
        linkages like any other miss.
        """
        delivered = 0
        if self.batch_propagation:
            # Fast path: one conflict-map scan per distinct config, the
            # resulting sub-batch shared by every replica with that
            # config (hosts only read the list).  Same deliveries, same
            # counters, same metric increments as the per-replica loop.
            conflicts = self.conflict_map.conflicts
            stats = self.stats
            by_config: Dict[ViewConfig, List[Update]] = {}
            for entry in self.replicas_of(family):
                config = entry.config
                if origin_config is not None and config == origin_config:
                    continue
                conflicting = by_config.get(config)
                if conflicting is None:
                    conflicting = by_config[config] = [
                        u for u in batch if conflicts(u, config)
                    ]
                if not conflicting:
                    continue
                entry.host.on_invalidate(conflicting)
                delivered += 1
                n = len(conflicting)
                stats.invalidations += n
                stats.conflict_map_hits += n
                if self._m_local_updates is not None:
                    handles = self._inval_counters.get(family)
                    if handles is None:
                        m = self.obs.metrics
                        handles = self._inval_counters[family] = (
                            m.counter("coherence.invalidations", family=family),
                            m.counter("coherence.conflict_map_hits"),
                        )
                    handles[0].inc(n)
                    handles[1].inc(n)
            return delivered
        for entry in self.replicas_of(family):
            if origin_config is not None and entry.config == origin_config:
                continue
            conflicting = [u for u in batch if self.conflict_map.conflicts(u, entry.config)]
            if not conflicting:
                continue
            entry.host.on_invalidate(conflicting)
            delivered += 1
            self.stats.invalidations += len(conflicting)
            self.stats.conflict_map_hits += len(conflicting)
            m = self.obs.metrics
            if m.enabled:
                m.inc("coherence.invalidations", len(conflicting), family=family)
                m.inc("coherence.conflict_map_hits", len(conflicting))
        return delivered

    def note_stale_read(self, family: Optional[str] = None) -> None:
        """Record that a replica forwarded a read upstream because its
        local copy was invalidated (the cost invalidations externalize)."""
        self.stats.stale_reads += 1
        if family is not None:
            self.obs.metrics.inc("coherence.stale_reads", 1, family=family)
        else:
            self.obs.metrics.inc("coherence.stale_reads")

    def __repr__(self) -> str:
        return (
            f"<CoherenceDirectory families={sorted(self._by_family)} "
            f"replicas={len(self._replicas)}>"
        )
