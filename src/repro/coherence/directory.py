"""Directory-based cache coherence at view granularity (paper §3.2).

"Smock manages replicated component instances using a directory-based
cache coherence protocol.  The protocol maintains object consistency at
the granularity of views."

The directory tracks, per *family* (an original component such as
``MailServer``), the primary instance and every replica (view
configurations such as ``ViewMailServer[TrustLevel=3]``).  Replicas
buffer local updates; flush policies decide when a replica must
reconcile with its upstream (the communication itself is performed by
the replica component over its planned linkage, so coherence traffic
crosses exactly the links the planner selected — including any
Encryptor/Decryptor pairs).  On reconciliation the directory consults
the conflict map and delivers invalidations to the other replicas whose
configurations conflict with the propagated updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Protocol, Tuple

from ..obs import Observability, resolve_obs
from .conflicts import ConflictMap, Update, ViewConfig
from .policies import FlushPolicy, NeverPolicy
from .reconcile import LastWriterWins, ReconcilePolicy, ReconcileReport, VersionVector

__all__ = ["CoherenceDirectory", "ReplicaEntry", "CoherenceStats", "ReplicaHost"]


class ReplicaHost(Protocol):
    """What the directory needs from a replica component instance."""

    def on_invalidate(self, updates: List[Update]) -> None:
        """Mark state stale following a conflicting remote update."""
        ...


@dataclass
class CoherenceStats:
    """Aggregate protocol counters (reported by the benchmarks)."""

    local_updates: int = 0
    buffered_units: int = 0
    syncs: int = 0
    messages_propagated: int = 0
    bytes_propagated: int = 0
    invalidations: int = 0
    #: updates that the conflict map matched against some replica config
    conflict_map_hits: int = 0
    #: reads a replica had to forward upstream because its copy was stale
    stale_reads: int = 0
    #: buffered (client-acked but not yet propagated) updates discarded
    #: because their replica's host crashed — the write-back protocol's
    #: durability gap, surfaced instead of silently swallowed
    lost_updates: int = 0
    lost_units: int = 0
    #: re-delivered updates rejected by the version frontier (duplicated,
    #: replayed, or reordered flush batches that would double-apply)
    duplicates_rejected: int = 0
    #: reads a partitioned replica served from its (possibly stale)
    #: local copy because the upstream was unreachable
    degraded_reads: int = 0
    #: writes a partitioned replica buffered locally instead of writing
    #: through to the unreachable primary (folder structure)
    degraded_writes: int = 0
    #: previously-lost updates replayed at the primary by anti-entropy
    recovered_updates: int = 0
    #: anti-entropy replays that went through conflict resolution
    reconcile_conflicts: int = 0


@dataclass
class ReplicaEntry:
    """Directory record for one replica."""

    replica_id: int
    family: str
    config: ViewConfig
    host: Any
    policy: FlushPolicy
    pending: List[Update] = field(default_factory=list)
    pending_units: int = 0
    last_flush_ms: float = 0.0
    stale_keys: set = field(default_factory=set)
    #: per-replica monotonic sequence counter for versioned updates
    next_seq: int = 0

    @property
    def dirty(self) -> bool:
        return bool(self.pending)


class CoherenceDirectory:
    """The coherence module of the Smock runtime."""

    def __init__(
        self,
        conflict_map: Optional[ConflictMap] = None,
        obs: Optional[Observability] = None,
        batch_propagation: bool = True,
        versioned: bool = True,
        reconcile_policy: Optional[ReconcilePolicy] = None,
        journal: Optional[Any] = None,
    ) -> None:
        self.conflict_map = conflict_map or ConflictMap()
        self._primaries: Dict[str, Any] = {}
        self._replicas: Dict[int, ReplicaEntry] = {}
        self._by_family: Dict[str, List[int]] = {}
        self._next_id = 0
        self.stats = CoherenceStats()
        self.obs = resolve_obs(obs)
        #: knob: batched fan-out scans the drained batch once per distinct
        #: replica *config* instead of once per replica (the predicate
        #: depends only on (update, config), so replicas sharing a config
        #: receive the identical conflicting sub-batch either way).
        self.batch_propagation = batch_propagation
        #: knob: partition tolerance.  When on, buffered updates carry
        #: ``(origin, seq, ts_ms)`` version stamps, applying stores keep
        #: a :class:`VersionVector` frontier (duplicated/reordered/
        #: replayed flush batches are rejected instead of double-applied),
        #: crashed replicas' dirty buffers are stashed for anti-entropy
        #: replay, and partitioned replicas serve degraded reads/writes.
        #: When off the protocol is byte-identical to the pre-versioning
        #: revision: no stamps, no frontiers, ``report_lost`` discards.
        self.versioned = versioned
        #: conflict resolution for anti-entropy replays (LWW by sim time)
        self.reconcile_policy = reconcile_policy or LastWriterWins()
        #: optional append-only journal of registrations, frontier
        #: admissions and anti-entropy stashes (see
        #: :mod:`repro.coherence.journal`) from which a successor
        #: directory rebuilds after this one's host crashes.  ``None``
        #: (the default) skips every append — zero cost, zero events.
        self.journal = journal
        #: applied-version frontiers, one per applying store: the primary
        #: of each family keys as ``("primary", family)``, intermediate
        #: replicas as ``("replica", replica_id)``.
        self._frontiers: Dict[Tuple[str, Any], VersionVector] = {}
        #: dirty buffers of crashed replicas, held for anti-entropy
        #: replay (modeling recovery from the replica's stable storage)
        self._lost_buffers: Dict[int, Tuple[str, List[Update]]] = {}
        #: family tombstones for unregistered replicas, so a flush that
        #: was in flight during the purge can still requeue into the
        #: lost ledger under the right family
        self._retired_families: Dict[int, str] = {}
        # Metric handles resolved once: on_local_update runs per client
        # send and must not pay registry lookups (engine.Simulator pattern).
        metrics = self.obs.metrics
        if metrics.enabled:
            self._m_local_updates = metrics.counter("coherence.local_updates")
        else:
            self._m_local_updates = None
        #: per-family (invalidations, conflict_map_hits) counter handles,
        #: resolved on first broadcast for that family.
        self._inval_counters: Dict[str, Tuple[Any, Any]] = {}

    # -- registration -------------------------------------------------------
    def register_primary(self, family: str, host: Any) -> None:
        """Record the authoritative instance of a component family."""
        self._primaries[family] = host
        if self.journal is not None:
            self.journal.record_primary(family)

    def primary_of(self, family: str) -> Optional[Any]:
        return self._primaries.get(family)

    def register_replica(
        self,
        family: str,
        config: ViewConfig,
        host: Any,
        policy: Optional[FlushPolicy] = None,
        now_ms: float = 0.0,
    ) -> ReplicaEntry:
        """Add a replica (view instance) to the directory."""
        entry = ReplicaEntry(
            replica_id=self._next_id,
            family=family,
            config=config,
            host=host,
            policy=policy or NeverPolicy(),
            last_flush_ms=now_ms,
        )
        self._next_id += 1
        self._replicas[entry.replica_id] = entry
        self._by_family.setdefault(family, []).append(entry.replica_id)
        if self.journal is not None:
            self.journal.record_replica(entry.replica_id, family, config)
        return entry

    def unregister_replica(self, replica_id: int) -> None:
        entry = self._replicas.get(replica_id)
        if entry is None:
            return
        if entry.pending:
            # A retiring replica whose last flush could not reach the
            # primary (e.g. uninstalled mid-partition): its buffer holds
            # client-acked updates and must enter the lost ledger — and,
            # under versioned coherence, the anti-entropy stash — rather
            # than vanish with the registration.
            self.report_lost(replica_id)
        del self._replicas[replica_id]
        self._by_family[entry.family].remove(replica_id)
        self._frontiers.pop(("replica", replica_id), None)
        # Tombstone so a flush that was in flight when the replica was
        # purged can still requeue its batch into the lost ledger.
        self._retired_families[replica_id] = entry.family
        if self.journal is not None:
            self.journal.record_unregister(replica_id, entry.family)

    def replicas_of(self, family: str) -> List[ReplicaEntry]:
        return [self._replicas[i] for i in self._by_family.get(family, ())]

    def entry(self, replica_id: int) -> ReplicaEntry:
        return self._replicas[replica_id]

    # -- update path ------------------------------------------------------------
    def on_local_update(self, replica_id: int, update: Update, now_ms: float) -> bool:
        """Buffer a local update; True if the replica must reconcile now."""
        entry = self._replicas[replica_id]
        if self.versioned and update.origin is None:
            # Stamp at first buffering only: updates arriving through a
            # downstream sync batch keep their original identity so the
            # frontier dedups them end to end across replica chains.
            entry.next_seq += 1
            update = replace(
                update, origin=replica_id, seq=entry.next_seq, ts_ms=now_ms
            )
        entry.pending.append(update)
        entry.pending_units += update.multiplicity
        self.stats.local_updates += 1
        self.stats.buffered_units += update.multiplicity
        if self._m_local_updates is not None:
            self._m_local_updates.inc()
        return entry.policy.should_flush(entry.pending_units, now_ms, entry.last_flush_ms)

    def needs_flush(self, replica_id: int, now_ms: float) -> bool:
        """Poll hook for time-driven policies (coherence daemons)."""
        entry = self._replicas[replica_id]
        return entry.dirty and entry.policy.should_flush(
            entry.pending_units, now_ms, entry.last_flush_ms
        )

    def drain(self, replica_id: int) -> Tuple[List[Update], int]:
        """Take the pending batch for propagation; returns (batch, units)."""
        entry = self._replicas[replica_id]
        batch, units = entry.pending, entry.pending_units
        entry.pending = []
        entry.pending_units = 0
        return batch, units

    def record_flush(self, replica_id: int, now_ms: float, batch: List[Update]) -> None:
        """Bookkeeping after a successful upstream reconciliation."""
        entry = self._replicas[replica_id]
        entry.last_flush_ms = now_ms
        messages = sum(u.multiplicity for u in batch)
        size = sum(u.size_bytes for u in batch)
        self.stats.syncs += 1
        self.stats.messages_propagated += messages
        self.stats.bytes_propagated += size
        m = self.obs.metrics
        if m.enabled:
            policy = type(entry.policy).__name__
            m.inc("coherence.flushes", 1, policy=policy)
            m.inc("coherence.messages_propagated", messages, policy=policy)
            m.inc("coherence.bytes_propagated", size, policy=policy)

    def report_lost(self, replica_id: int) -> Tuple[List[Update], int]:
        """Take a dead replica's dirty buffer out of the flush pipeline.

        Called during failover reconciliation when the replica's host
        crashed before its flush policy fired: those updates were acked
        to clients but never propagated.  Under fail-stop semantics
        (``versioned=False``) they are simply discarded — the write-back
        protocol's durability gap.  Under versioned coherence the batch
        is additionally stashed (modeling the replica's stable storage)
        for anti-entropy replay by :meth:`reconcile`.  Returns
        (batch, units) so callers can report exactly what was lost.
        """
        entry = self._replicas.get(replica_id)
        if entry is None or not entry.pending:
            return [], 0
        batch, units = self.drain(replica_id)
        self.stats.lost_updates += len(batch)
        self.stats.lost_units += units
        self.obs.metrics.inc(
            "coherence.lost_updates", len(batch), family=entry.family
        )
        if self.versioned:
            held = self._lost_buffers.get(replica_id)
            if held is not None:
                held[1].extend(batch)
            else:
                self._lost_buffers[replica_id] = (entry.family, list(batch))
            if self.journal is not None:
                self.journal.record_stash(replica_id, entry.family, batch)
        return batch, units

    @property
    def has_lost_buffers(self) -> bool:
        """Are any recovered-but-unreconciled buffers awaiting replay?"""
        return bool(self._lost_buffers)

    # -- versioned apply / anti-entropy -------------------------------------
    def frontier(self, applier: Tuple[str, Any]) -> VersionVector:
        """The applied-version frontier for one applying store."""
        vv = self._frontiers.get(applier)
        if vv is None:
            vv = self._frontiers[applier] = VersionVector()
        return vv

    def admit(self, applier: Tuple[str, Any], update: Update) -> bool:
        """Should ``applier`` apply ``update``?

        Returns False — and accounts a rejected duplicate — when the
        update's ``(origin, seq)`` version was already applied at this
        store (a duplicated, replayed, or requeued-after-apply batch).
        Unversioned updates (or ``versioned=False``) always admit.
        """
        if not self.versioned or update.origin is None:
            return True
        if self.frontier(applier).admit(update.origin, update.seq):
            if self.journal is not None:
                self.journal.record_admit(applier, update.origin, update.seq)
            return True
        self.stats.duplicates_rejected += 1
        m = self.obs.metrics
        if m.enabled:
            m.inc("coherence.duplicates_rejected", 1, applier=applier[0])
        return False

    def note_degraded_read(self, family: str) -> None:
        """A partitioned replica served a read from its local copy."""
        self.stats.degraded_reads += 1
        self.obs.metrics.inc("coherence.degraded_reads", 1, family=family)

    def note_degraded_write(self, family: str) -> None:
        """A partitioned replica buffered a write it normally writes
        through (e.g. mailbox folder structure)."""
        self.stats.degraded_writes += 1
        self.obs.metrics.inc("coherence.degraded_writes", 1, family=family)

    def reconcile(self, now_ms: float) -> List[ReconcileReport]:
        """Anti-entropy: replay recovered lost buffers at their primaries.

        For each stashed buffer the primary's frontier delta — exactly
        the updates it has not already applied — is replayed through the
        primary's ``apply_reconciled`` hook, which resolves conflicting
        writes via :attr:`reconcile_policy` (plus any service-level
        merge), and the resulting sub-batch is fanned out as
        invalidations through the conflict map.  No-op (returns ``[]``)
        when unversioned or when nothing is stashed.
        """
        if not self.versioned or not self._lost_buffers:
            return []
        reports: List[ReconcileReport] = []
        m = self.obs.metrics
        for replica_id in sorted(self._lost_buffers):
            family, batch = self._lost_buffers.pop(replica_id)
            if self.journal is not None:
                self.journal.record_reconciled(replica_id)
            primary = self._primaries.get(family)
            report = ReconcileReport(
                family=family, replica_id=replica_id, recovered=len(batch)
            )
            if primary is None or not hasattr(primary, "apply_reconciled"):
                # No merge hook: buffer stays lost (already accounted).
                reports.append(report)
                continue
            frontier = self.frontier(("primary", family))
            delta = frontier.delta(batch)
            report.duplicates = len(batch) - len(delta)
            self.stats.duplicates_rejected += report.duplicates
            applied: List[Update] = []
            for update in delta:
                if update.origin is not None:
                    frontier.admit(update.origin, update.seq)
                    if self.journal is not None:
                        self.journal.record_admit(
                            ("primary", family), update.origin, update.seq
                        )
                outcome = primary.apply_reconciled(update, self.reconcile_policy)
                report.note(outcome)
                if outcome == "conflict":
                    report.conflicts += 1
                    self.stats.reconcile_conflicts += 1
                applied.append(update)
            report.replayed = len(applied)
            self.stats.recovered_updates += len(applied)
            recovered_units = sum(u.multiplicity for u in applied)
            # The replays un-lose what report_lost accounted as lost.
            self.stats.lost_updates -= len(applied)
            self.stats.lost_units -= recovered_units
            if applied:
                report.invalidations = self.broadcast_invalidations(family, applied)
            if m.enabled:
                m.inc("coherence.reconcile.recovered", report.recovered, family=family)
                m.inc("coherence.reconcile.replayed", report.replayed, family=family)
                m.inc("coherence.reconcile.duplicates", report.duplicates, family=family)
                m.inc("coherence.reconcile.conflicts", report.conflicts, family=family)
                m.inc("coherence.reconcile.rounds", 1, family=family)
            reports.append(report)
        return reports

    def requeue(self, replica_id: int, batch: List[Update]) -> None:
        """Put a batch back after a failed propagation attempt.

        If the replica was unregistered while the flush was in flight
        (a concurrent retirement or failover purge), there is no pending
        queue to return to: the batch enters the lost ledger directly —
        and, under versioned coherence, the anti-entropy stash — exactly
        as if :meth:`report_lost` had drained it.
        """
        if not batch:
            return
        entry = self._replicas.get(replica_id)
        if entry is None:
            family = self._retired_families.get(replica_id, "?")
            units = sum(u.multiplicity for u in batch)
            self.stats.lost_updates += len(batch)
            self.stats.lost_units += units
            self.obs.metrics.inc(
                "coherence.lost_updates", len(batch), family=family
            )
            if self.versioned:
                held = self._lost_buffers.get(replica_id)
                if held is not None:
                    held[1].extend(batch)
                else:
                    self._lost_buffers[replica_id] = (family, list(batch))
                if self.journal is not None:
                    self.journal.record_stash(replica_id, family, batch)
            return
        entry.pending = batch + entry.pending
        entry.pending_units += sum(u.multiplicity for u in batch)
        self.obs.metrics.inc("coherence.requeues")

    # -- invalidation fan-out ----------------------------------------------------
    def broadcast_invalidations(
        self,
        family: str,
        batch: List[Update],
        origin_config: Optional[ViewConfig] = None,
    ) -> int:
        """Notify replicas whose configuration conflicts with ``batch``.

        Called at the primary when propagated updates are applied.
        Returns the number of replica invalidations delivered.  Delivery
        is metadata-only (the replica marks affected state stale and
        re-fetches on demand); the fetch traffic then flows over planned
        linkages like any other miss.
        """
        delivered = 0
        if self.batch_propagation:
            # Fast path: one conflict-map scan per distinct config, the
            # resulting sub-batch shared by every replica with that
            # config (hosts only read the list).  Same deliveries, same
            # counters, same metric increments as the per-replica loop.
            conflicts = self.conflict_map.conflicts
            stats = self.stats
            by_config: Dict[ViewConfig, List[Update]] = {}
            for entry in self.replicas_of(family):
                config = entry.config
                if origin_config is not None and config == origin_config:
                    continue
                conflicting = by_config.get(config)
                if conflicting is None:
                    conflicting = by_config[config] = [
                        u for u in batch if conflicts(u, config)
                    ]
                if not conflicting:
                    continue
                entry.host.on_invalidate(conflicting)
                delivered += 1
                n = len(conflicting)
                stats.invalidations += n
                stats.conflict_map_hits += n
                if self._m_local_updates is not None:
                    handles = self._inval_counters.get(family)
                    if handles is None:
                        m = self.obs.metrics
                        handles = self._inval_counters[family] = (
                            m.counter("coherence.invalidations", family=family),
                            m.counter("coherence.conflict_map_hits"),
                        )
                    handles[0].inc(n)
                    handles[1].inc(n)
            return delivered
        for entry in self.replicas_of(family):
            if origin_config is not None and entry.config == origin_config:
                continue
            conflicting = [u for u in batch if self.conflict_map.conflicts(u, entry.config)]
            if not conflicting:
                continue
            entry.host.on_invalidate(conflicting)
            delivered += 1
            self.stats.invalidations += len(conflicting)
            self.stats.conflict_map_hits += len(conflicting)
            m = self.obs.metrics
            if m.enabled:
                m.inc("coherence.invalidations", len(conflicting), family=family)
                m.inc("coherence.conflict_map_hits", len(conflicting))
        return delivered

    def note_stale_read(self, family: Optional[str] = None) -> None:
        """Record that a replica forwarded a read upstream because its
        local copy was invalidated (the cost invalidations externalize)."""
        self.stats.stale_reads += 1
        if family is not None:
            self.obs.metrics.inc("coherence.stale_reads", 1, family=family)
        else:
            self.obs.metrics.inc("coherence.stale_reads")

    def __repr__(self) -> str:
        return (
            f"<CoherenceDirectory families={sorted(self._by_family)} "
            f"replicas={len(self._replicas)}>"
        )
