"""Anti-entropy reconciliation for partition-tolerant coherence.

The base write-back protocol (:mod:`repro.coherence.directory`) assumes
the update channel between a replica and its upstream is reliable and
ordered.  Under partitions that assumption breaks three ways:

1. **Duplication/replay** — a flush batch can apply upstream while the
   acknowledgement is lost (link severed mid-response), so the replica
   requeues and re-sends an already-applied batch; message-level faults
   can also deliver a batch twice outright.  :class:`VersionVector`
   tracks, per applying store, the ``(origin, seq)`` frontier of every
   update ever applied there, so re-deliveries are detected and
   rejected instead of double-applied.
2. **Loss** — a replica host can crash with client-acked updates still
   buffered.  The directory stashes those buffers
   (:meth:`CoherenceDirectory.report_lost`) and an anti-entropy round
   replays the frontier *delta* — exactly the updates the primary has
   not seen — once the failure is reconciled.
3. **Divergence** — both sides of a partition can mutate the same
   logical cell (e.g. a mailbox folder move issued at a degraded view
   while the primary applied a conflicting move).  A pluggable
   :class:`ReconcilePolicy` resolves such conflicts; the default is
   last-writer-wins by simulated time, and services can layer their own
   merge hooks on top (the mail service merges folder structure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .conflicts import Update

__all__ = [
    "VersionVector",
    "ReconcilePolicy",
    "LastWriterWins",
    "ReconcileReport",
]


class VersionVector:
    """Set of applied ``(origin, seq)`` versions, compressed per origin.

    For each origin the vector keeps a contiguous frontier (every seq up
    to and including it has been applied) plus a sparse set of applied
    seqs above the frontier — the out-of-order tail a *reordered*
    channel produces.  The tail folds into the frontier as gaps close,
    so steady-state in-order traffic costs one integer per origin.
    """

    __slots__ = ("_frontier", "_tail")

    def __init__(self) -> None:
        self._frontier: Dict[int, int] = {}
        self._tail: Dict[int, Set[int]] = {}

    def contains(self, origin: int, seq: int) -> bool:
        if seq <= self._frontier.get(origin, 0):
            return True
        return seq in self._tail.get(origin, ())

    def admit(self, origin: int, seq: int) -> bool:
        """Record ``(origin, seq)`` as applied; False if already seen."""
        frontier = self._frontier.get(origin, 0)
        if seq <= frontier:
            return False
        tail = self._tail.get(origin)
        if tail is None:
            tail = self._tail[origin] = set()
        if seq in tail:
            return False
        tail.add(seq)
        while frontier + 1 in tail:
            frontier += 1
            tail.discard(frontier)
        self._frontier[origin] = frontier
        return True

    def frontier(self, origin: int) -> int:
        """Highest contiguously-applied seq for ``origin`` (0 if none)."""
        return self._frontier.get(origin, 0)

    def delta(self, batch: List[Update]) -> List[Update]:
        """The subset of ``batch`` not yet applied here (no mutation)."""
        return [
            u for u in batch
            if u.origin is None or not self.contains(u.origin, u.seq)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tails = {o: sorted(t) for o, t in self._tail.items() if t}
        return f"<VersionVector frontier={self._frontier} tail={tails}>"


class ReconcilePolicy:
    """Decides which of two conflicting writes to the same logical cell
    survives reconciliation."""

    name = "abstract"

    def wins(self, incoming: Update, incumbent_ts_ms: float,
             incumbent_version: Optional[Tuple[int, int]]) -> bool:
        """Should ``incoming`` replace the currently-applied write?

        ``incumbent_ts_ms``/``incumbent_version`` describe the write the
        applying store last accepted for the contested cell.
        """
        raise NotImplementedError


class LastWriterWins(ReconcilePolicy):
    """Resolve by simulated write time; ties break on ``(origin, seq)``
    so both sides of a healed partition converge on the same winner
    regardless of replay order."""

    name = "last_writer_wins"

    def wins(self, incoming: Update, incumbent_ts_ms: float,
             incumbent_version: Optional[Tuple[int, int]]) -> bool:
        if incoming.ts_ms != incumbent_ts_ms:
            return incoming.ts_ms > incumbent_ts_ms
        if incoming.version is None:
            return True  # unversioned writes behave like the old protocol
        if incumbent_version is None:
            return False
        return incoming.version > incumbent_version


@dataclass
class ReconcileReport:
    """Outcome of one anti-entropy pass over a recovered buffer."""

    family: str
    replica_id: int
    #: updates in the recovered buffer
    recovered: int = 0
    #: frontier delta actually replayed at the primary
    replayed: int = 0
    #: rejected as already applied (flushed before the crash, or a
    #: client retry re-applied them through a fresh chain)
    duplicates: int = 0
    #: replays that contended with a concurrent write and went through
    #: conflict resolution (whichever side won)
    conflicts: int = 0
    #: invalidations fanned out for the replayed updates
    invalidations: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)

    def note(self, outcome: str) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
