"""Directory-based cache coherence at view granularity (paper §3.2)."""

from .conflicts import AttributeConflictMap, ConflictMap, Update, ViewConfig
from .directory import CoherenceDirectory, CoherenceStats, ReplicaEntry
from .journal import DirectoryJournal, RecoveryReport, recover_directory
from .policies import (
    CountPolicy,
    FlushPolicy,
    NeverPolicy,
    TimePolicy,
    WriteThroughPolicy,
    policy_from_name,
)
from .reconcile import (
    LastWriterWins,
    ReconcilePolicy,
    ReconcileReport,
    VersionVector,
)

__all__ = [
    "CoherenceDirectory",
    "CoherenceStats",
    "ReplicaEntry",
    "DirectoryJournal",
    "RecoveryReport",
    "recover_directory",
    "ConflictMap",
    "AttributeConflictMap",
    "Update",
    "ViewConfig",
    "FlushPolicy",
    "NeverPolicy",
    "CountPolicy",
    "TimePolicy",
    "WriteThroughPolicy",
    "policy_from_name",
    "VersionVector",
    "ReconcilePolicy",
    "LastWriterWins",
    "ReconcileReport",
]
