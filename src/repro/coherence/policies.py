"""Weak-consistency flush policies (paper §3.2).

"Coherence actions are triggered based on dynamic conflict maps; the
latter ... allow expression of a wide range of service-specific weak
consistency protocols (including time-driven consistency) necessary for
efficient replication in wide-area environments."

A replica buffers local updates; its :class:`FlushPolicy` decides when
the buffer must be reconciled with the upstream copy.  The Figure 7
scenarios use :class:`CountPolicy` — "a protocol that limits the number
of unpropagated messages at each replica" — with limits 500 and 1000
(and ``NeverPolicy`` for the no-coherence-overhead scenarios).
:class:`TimePolicy` implements the time-driven variant the paper
mentions; :class:`WriteThroughPolicy` is the strong end of the spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "FlushPolicy",
    "NeverPolicy",
    "CountPolicy",
    "TimePolicy",
    "WriteThroughPolicy",
    "policy_from_name",
]


class FlushPolicy:
    """Decides when a replica must propagate buffered updates upstream."""

    name = "abstract"

    def should_flush(self, pending: int, now_ms: float, last_flush_ms: float) -> bool:
        """Must the replica reconcile now?

        ``pending`` counts unpropagated unit-messages; ``now_ms`` is the
        current simulated time; ``last_flush_ms`` the previous
        reconciliation time.
        """
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class NeverPolicy(FlushPolicy):
    """No propagation during operation (the DS0/SS0 scenarios)."""

    name = "never"

    def should_flush(self, pending: int, now_ms: float, last_flush_ms: float) -> bool:
        return False


@dataclass
class CountPolicy(FlushPolicy):
    """Limit the number of unpropagated messages at the replica.

    The replica reconciles synchronously as soon as ``pending`` reaches
    ``limit`` — the DS500/DS1000 scenarios use limits 500 and 1000.
    """

    limit: int

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")
        self.name = f"count({self.limit})"

    def should_flush(self, pending: int, now_ms: float, last_flush_ms: float) -> bool:
        return pending >= self.limit


@dataclass
class TimePolicy(FlushPolicy):
    """Time-driven consistency: reconcile every ``interval_ms`` while dirty."""

    interval_ms: float

    def __post_init__(self) -> None:
        if self.interval_ms <= 0:
            raise ValueError(f"interval must be positive, got {self.interval_ms}")
        self.name = f"time({self.interval_ms}ms)"

    def should_flush(self, pending: int, now_ms: float, last_flush_ms: float) -> bool:
        return pending > 0 and (now_ms - last_flush_ms) >= self.interval_ms


class WriteThroughPolicy(FlushPolicy):
    """Propagate every update immediately (strong consistency)."""

    name = "write_through"

    def should_flush(self, pending: int, now_ms: float, last_flush_ms: float) -> bool:
        return pending > 0


def policy_from_name(name: str) -> FlushPolicy:
    """Build a policy from a compact scenario string.

    ``"never"``, ``"write_through"``, ``"count:500"``, ``"time:250"``.
    """
    if name == "never":
        return NeverPolicy()
    if name == "write_through":
        return WriteThroughPolicy()
    kind, _, arg = name.partition(":")
    if kind == "count" and arg:
        return CountPolicy(int(arg))
    if kind == "time" and arg:
        return TimePolicy(float(arg))
    raise ValueError(f"unknown flush policy {name!r}")
