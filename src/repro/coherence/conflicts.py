"""Dynamic conflict maps (paper §3.2).

"The protocol maintains object consistency at the granularity of views.
Coherence actions are triggered based on dynamic conflict maps; the
latter define when a view conflicts with another..."

An :class:`Update` describes one state mutation with service-level
attributes (for mail: the recipient and the message's sensitivity
level).  A :class:`ConflictMap` answers whether an update produced under
one view configuration *conflicts with* (i.e. must eventually be made
visible to) another view configuration.  Maps are dynamic: predicates
can be registered and replaced at run time as the service evolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = ["Update", "ConflictMap", "AttributeConflictMap"]

ViewConfig = Tuple[str, Tuple[Tuple[str, Any], ...]]  # (unit, sorted factors)


@dataclass(frozen=True, slots=True)
class Update:
    """One buffered state mutation at a replica (slotted: replicas
    buffer hundreds of these per flush window)."""

    op: str
    attributes: Mapping[str, Any] = field(default_factory=dict)
    size_bytes: int = 0
    #: how many underlying user messages this update aggregates (a
    #: workload client "simulates the behavior of a cluster of users")
    multiplicity: int = 1
    #: version stamp, assigned by the directory when the update is first
    #: buffered (``CoherenceDirectory(versioned=True)``): ``origin`` is
    #: the buffering replica's id, ``seq`` its per-replica monotonic
    #: sequence number, ``ts_ms`` the simulated buffering instant (the
    #: last-writer-wins clock).  ``origin is None`` means unversioned —
    #: the pre-partition-tolerance wire format.
    origin: Optional[int] = None
    seq: int = 0
    ts_ms: float = 0.0

    def attr(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    @property
    def version(self) -> Optional[Tuple[int, int]]:
        """The ``(origin, seq)`` identity, or ``None`` if unversioned."""
        return None if self.origin is None else (self.origin, self.seq)


Predicate = Callable[[Update, ViewConfig], bool]


class ConflictMap:
    """Predicate registry deciding update-vs-view conflicts.

    The default (no predicate registered for an op) is *conflict*: every
    view must see the update — the conservative choice.  Services narrow
    this with per-op predicates, e.g. "a stored mail message conflicts
    with a ViewMailServer configuration only if the message's sensitivity
    is within the view's trust level".
    """

    def __init__(self) -> None:
        self._predicates: Dict[str, Predicate] = {}
        self._default: Optional[Predicate] = None

    def register(self, op: str, predicate: Predicate) -> None:
        """Install/replace the predicate for one update op."""
        self._predicates[op] = predicate

    def register_default(self, predicate: Predicate) -> None:
        self._default = predicate

    def conflicts(self, update: Update, config: ViewConfig) -> bool:
        pred = self._predicates.get(update.op, self._default)
        if pred is None:
            return True
        return pred(update, config)

    def __repr__(self) -> str:
        return f"<ConflictMap ops={sorted(self._predicates)}>"


class AttributeConflictMap(ConflictMap):
    """Declarative conflict map over one update attribute and one factor.

    ``AttributeConflictMap("sensitivity", "TrustLevel", "le")`` says: an
    update conflicts with a view configuration iff
    ``update.sensitivity <= config.TrustLevel`` — exactly the mail
    service's rule (messages above a replica's trust level are never
    stored there, so they cannot conflict with it).
    """

    _OPS = {
        "le": lambda a, b: a <= b,
        "lt": lambda a, b: a < b,
        "ge": lambda a, b: a >= b,
        "gt": lambda a, b: a > b,
        "eq": lambda a, b: a == b,
    }

    def __init__(self, attribute: str, factor: str, relation: str = "le") -> None:
        super().__init__()
        if relation not in self._OPS:
            raise ValueError(f"unknown relation {relation!r}")
        self.attribute = attribute
        self.factor = factor
        self.relation = relation
        op = self._OPS[relation]

        def predicate(update: Update, config: ViewConfig) -> bool:
            value = update.attr(self.attribute)
            if value is None:
                return True  # unknown attribute: conservative conflict
            factors = dict(config[1])
            bound = factors.get(self.factor)
            if bound is None:
                return True  # unfactored view sees everything
            return op(value, bound)

        self.register_default(predicate)
