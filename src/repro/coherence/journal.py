"""Crash-consistent recovery for the coherence directory.

The :class:`~repro.coherence.directory.CoherenceDirectory` is pure
volatile state: lose the host it lives on and every per-store version
frontier, replica registration, and anti-entropy stash goes with it —
after which no duplicate can be rejected and no lost buffer replayed.
:class:`DirectoryJournal` closes that gap with an append-only in-sim
journal of exactly the directory state that must survive a crash:

* registrations (primaries, replicas, unregistrations) — the membership
  a successor directory must re-attach to live instances;
* frontier admissions — every versioned ``(applier, origin, seq)``
  applied anywhere, from which the per-store
  :class:`~repro.coherence.reconcile.VersionVector` frontiers are
  rebuilt exactly;
* anti-entropy stashes and their consumption — which crashed-replica
  buffers are still owed a replay (the stash models the *replica's*
  stable storage; journaling it models the directory's record of where
  recovery data lives).

Volatile per-replica flush state (pending buffers, sequence counters,
policy clocks) is deliberately *not* journaled: it lives replica-side
and is re-reported at takeover, exactly as surviving replicas would
re-announce themselves to a successor directory.

Appending is a plain list append — no simulated events, no timers — so
``directory_journal=True`` never perturbs a run's event schedule, and
``None`` (the default) skips even the appends.

:func:`recover_directory` rebuilds a directory from the journal plus
the surviving replica-side state, and cross-checks the rebuilt
frontiers against the pre-crash in-memory truth: any mismatch means a
frontier mutation escaped the journal and is reported (and failed) by
the chaos invariants rather than silently producing double-applies
after takeover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .conflicts import Update
from .reconcile import VersionVector

__all__ = ["DirectoryJournal", "RecoveryReport", "recover_directory"]


class DirectoryJournal:
    """Append-only record of a directory's durable state transitions."""

    def __init__(self) -> None:
        self.records: List[Tuple[Any, ...]] = []
        #: takeovers this journal has driven (successor directories keep
        #: appending to the same journal, so a second crash recovers too)
        self.recoveries = 0

    def __len__(self) -> int:
        return len(self.records)

    # -- append helpers (no-ops cost nothing: callers guard on journal) ------
    def record_primary(self, family: str) -> None:
        self.records.append(("primary", family))

    def record_replica(self, replica_id: int, family: str, config: Any) -> None:
        self.records.append(("replica", replica_id, family, config))

    def record_unregister(self, replica_id: int, family: str) -> None:
        self.records.append(("unregister", replica_id, family))

    def record_admit(self, applier: Tuple[str, Any], origin: int, seq: int) -> None:
        self.records.append(("admit", applier, origin, seq))

    def record_stash(self, replica_id: int, family: str, batch: List[Update]) -> None:
        self.records.append(("stash", replica_id, family, tuple(batch)))

    def record_reconciled(self, replica_id: int) -> None:
        self.records.append(("reconciled", replica_id))


@dataclass
class RecoveryReport:
    """What a directory takeover rebuilt, re-attached, and skipped."""

    recovered_at_ms: float
    families: List[str] = field(default_factory=list)
    replicas_reattached: List[int] = field(default_factory=list)
    #: journal-registered replicas whose hosts are dead at takeover;
    #: their re-reported pending buffers enter the lost ledger/stash.
    replicas_skipped: List[int] = field(default_factory=list)
    stash_entries: int = 0
    frontiers_rebuilt: int = 0
    #: rebuilt-vs-precrash frontier divergences — must be empty; each
    #: entry names the applier and the two states.
    frontier_mismatches: List[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.frontier_mismatches


def _vv_state(vv: VersionVector) -> Tuple[Tuple[int, int], ...]:
    """Canonical comparable snapshot of a version vector."""
    state: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
    for origin, frontier in vv._frontier.items():
        state[origin] = (frontier, tuple(sorted(vv._tail.get(origin, ()))))
    return tuple(sorted((o, f, t) for o, (f, t) in state.items()))


def recover_directory(journal: DirectoryJournal, source: Any, now_ms: float):
    """Rebuild a :class:`CoherenceDirectory` after its host crashed.

    ``source`` is the orphaned pre-crash directory object: its knobs and
    stats carry over (stats are cumulative run accounting, not host
    state), its live replica entries stand in for the replicas
    re-reporting their volatile flush state to the successor, and its
    in-memory frontiers serve as the oracle the journal-rebuilt
    frontiers are validated against.  Returns ``(directory, report)``;
    the new directory journals to the *same* journal, so a later crash
    of the successor recovers too.
    """
    from .directory import CoherenceDirectory, ReplicaEntry

    records = list(journal.records)
    new = CoherenceDirectory(
        source.conflict_map,
        obs=source.obs,
        batch_propagation=source.batch_propagation,
        versioned=source.versioned,
        reconcile_policy=source.reconcile_policy,
        journal=journal,
    )
    report = RecoveryReport(recovered_at_ms=now_ms)
    # Cumulative run accounting continues across the takeover (assigned
    # before the rebuild passes: requeues below account lost updates).
    new.stats = source.stats

    # Pass 1: replay membership.
    families: List[str] = []
    live: Dict[int, Tuple[str, Any]] = {}
    retired: Dict[int, str] = {}
    max_id = -1
    for rec in records:
        kind = rec[0]
        if kind == "primary":
            if rec[1] not in families:
                families.append(rec[1])
        elif kind == "replica":
            _, replica_id, family, config = rec
            live[replica_id] = (family, config)
            max_id = max(max_id, replica_id)
        elif kind == "unregister":
            _, replica_id, family = rec
            live.pop(replica_id, None)
            retired[replica_id] = family

    for family in families:
        host = source._primaries.get(family)
        if host is not None:
            new._primaries[family] = host
            new.journal.record_primary(family)
            report.families.append(family)
    # Never reuse a replica id the old incarnation may still have in
    # flight (requeues key the lost ledger by id).
    new._next_id = max(max_id + 1, source._next_id)

    def _host_alive(host: Any) -> bool:
        if host is None or getattr(host, "failed", False):
            return False
        node = getattr(host, "node", None)
        return bool(getattr(node, "up", True))

    for replica_id in sorted(live):
        family, config = live[replica_id]
        old_entry = source._replicas.get(replica_id)
        if old_entry is None or not _host_alive(old_entry.host):
            # Registered per the journal but nobody answers: tombstone
            # the family (late flushes route to the lost ledger) and
            # stash whatever volatile buffer the old directory knew of.
            report.replicas_skipped.append(replica_id)
            new._retired_families[replica_id] = family
            new.journal.record_unregister(replica_id, family)
            if old_entry is not None and old_entry.pending:
                new.requeue(replica_id, old_entry.pending)
            continue
        # The surviving replica re-reports its volatile flush state.
        entry = ReplicaEntry(
            replica_id=replica_id,
            family=family,
            config=config,
            host=old_entry.host,
            policy=old_entry.policy,
            pending=list(old_entry.pending),
            pending_units=old_entry.pending_units,
            last_flush_ms=old_entry.last_flush_ms,
            stale_keys=set(old_entry.stale_keys),
            next_seq=old_entry.next_seq,
        )
        new._replicas[replica_id] = entry
        new._by_family.setdefault(family, []).append(replica_id)
        new.journal.record_replica(replica_id, family, config)
        report.replicas_reattached.append(replica_id)
    for replica_id, family in retired.items():
        new._retired_families.setdefault(replica_id, family)

    # Pass 2: rebuild frontiers strictly from journaled admissions.
    # A replica that is no longer registered (retired pre-crash, or
    # skipped above) had its frontier popped by ``unregister_replica``;
    # mirror that — its id is never reused, so the frontier is dead.
    for rec in records:
        if rec[0] == "admit":
            _, applier, origin, seq = rec
            if applier[0] == "replica" and applier[1] not in new._replicas:
                continue
            new.frontier(applier).admit(origin, seq)
    report.frontiers_rebuilt = len(new._frontiers)

    # Pass 3: outstanding anti-entropy stashes = stashed minus consumed.
    stashes: Dict[int, Tuple[str, List[Update]]] = {}
    for rec in records:
        if rec[0] == "stash":
            _, replica_id, family, batch = rec
            held = stashes.get(replica_id)
            if held is not None:
                held[1].extend(batch)
            else:
                stashes[replica_id] = (family, list(batch))
        elif rec[0] == "reconciled":
            stashes.pop(rec[1], None)
    for replica_id in sorted(stashes):
        family, batch = stashes[replica_id]
        # recover_directory may have requeued skipped-replica buffers
        # above; merge rather than clobber.
        held = new._lost_buffers.get(replica_id)
        if held is not None:
            known = {(u.origin, u.seq) for u in held[1] if u.origin is not None}
            held[1].extend(
                u for u in batch
                if u.origin is None or (u.origin, u.seq) not in known
            )
        else:
            new._lost_buffers[replica_id] = (family, batch)
        report.stash_entries += 1

    # Cross-check: the journal-rebuilt frontiers must equal the pre-crash
    # in-memory truth (restricted to stores that still exist).  A
    # divergence means some admission escaped the journal — the exact
    # failure mode that turns into silent double-applies after takeover.
    survivors = set(new._frontiers) | {
        applier for applier in source._frontiers
        if applier[0] == "primary" or applier[1] in new._replicas
    }
    for applier in sorted(survivors, key=repr):
        rebuilt = _vv_state(new._frontiers.get(applier, VersionVector()))
        precrash = _vv_state(source._frontiers.get(applier, VersionVector()))
        if rebuilt != precrash:
            report.frontier_mismatches.append(
                f"{applier}: journal={rebuilt} pre-crash={precrash}"
            )

    return new, report
