"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's artifacts or validate user specs:

- ``fig5``      — print the case-study topology
- ``fig6``      — plan and print the three site deployments
- ``fig7``      — run the nine-scenario latency sweep
- ``costs``     — the §4.2 one-time cost breakdown
- ``chains``    — enumerate Figure 3's valid linkage chains
- ``validate``  — parse + validate a service spec file (readable or XML)
- ``plan``      — plan the mail service for a client at a given site
- ``mail``      — run the mail service end to end on the Smock runtime
- ``chaos-sweep`` — seeded chaos runs with post-quiescence invariants

Every command accepts the observability options::

    python -m repro mail --trace /tmp/t.jsonl --metrics

``--trace`` writes a JSON-lines trace (nested ``client_connect`` →
``bind`` → ``plan``/``deploy`` spans with simulated *and* wall-clock
durations, plus a final metrics-snapshot record); ``--metrics`` prints
the counter/histogram summary; ``--log-json`` switches the console
output to structured JSON log lines.
"""

from __future__ import annotations

import argparse
import sys

from .obs import (
    Observability,
    configure_logging,
    get_logger,
    set_default_obs,
)

log = get_logger("cli")


def cmd_fig5(args: argparse.Namespace) -> int:
    from .experiments import build_fig5_network

    topo = build_fig5_network(clients_per_site=args.clients)
    log.info(f"Figure 5 topology: {len(topo.network)} nodes, "
             f"{topo.network.n_links} links")
    for link in topo.network.links():
        kind = "secure " if link.secure else "INSECURE"
        log.info(f"  {link.a:18s} <-> {link.b:18s} {link.latency_ms:6.0f} ms "
                 f"{link.bandwidth_mbps:6.0f} Mb/s  {kind}")
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    from .experiments import build_fig5_network, run_fig6

    deployments = run_fig6(algorithm=args.algorithm)
    for site, result in deployments.items():
        status = "matches the paper" if result.matches_paper else "DIFFERS"
        log.info(f"{site} ({status}):")
        log.info("  " + " -> ".join(f"{u}@{s}" for u, s in result.chain))
    if args.draw:
        from .viz import render_deployment

        topo = build_fig5_network(clients_per_site=2)
        log.info("")
        log.info(render_deployment(topo.network, [d.plan for d in deployments.values()]))
    return 0


def cmd_fig7(args: argparse.Namespace) -> int:
    from .experiments import fig7_series, format_fig7_table

    counts = tuple(range(1, args.max_clients + 1))
    series = fig7_series(client_counts=counts, scenarios=args.scenarios or None)
    log.info(format_fig7_table(series))
    return 0


def cmd_costs(args: argparse.Namespace) -> int:
    from .experiments import format_cost_table, measure_onetime_costs

    log.info(format_cost_table(measure_onetime_costs()))
    return 0


def cmd_chains(args: argparse.Namespace) -> int:
    from .planner import valid_chains
    from .services.mail import build_mail_spec

    chains = valid_chains(
        build_mail_spec(), args.interface, max_units=args.max_units, max_repeat=2
    )
    for chain in chains:
        log.info("  " + " -> ".join(chain))
    log.info(f"({len(chains)} valid chains)")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .spec import SpecError, from_xml, parse_service

    try:
        text = open(args.file).read()
    except OSError as exc:
        log.error(f"INVALID: cannot read {args.file}: {exc.strerror or exc}")
        return 1
    try:
        if text.lstrip().startswith("<Service") and 'name="' in text[:200]:
            spec = from_xml(text)
        else:
            spec = parse_service(text)
    except SpecError as exc:
        log.error(f"INVALID: {exc}")
        return 1
    log.info(f"OK: {spec}")
    for unit in spec.units():
        kind = "view" if unit.is_view else "component"
        log.info(f"  {kind:9s} {unit.name}: implements "
                 f"{[b.interface for b in unit.implements]}, requires "
                 f"{[b.interface for b in unit.requires]}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from .experiments.topology_fig5 import build_fig5_network
    from .planner import Planner, PlanningError, PlanRequest
    from .services.mail import build_mail_spec, mail_translator

    topo = build_fig5_network(clients_per_site=2)
    planner = Planner(
        build_mail_spec(), topo.network, mail_translator(), algorithm=args.algorithm,
        plan_cache=False if args.no_plan_cache else None,
        memoize=not args.no_memo,
    )
    planner.preinstall("MailServer", topo.server_node)
    node = topo.clients[args.site][0]
    try:
        plan = planner.plan(
            PlanRequest("ClientInterface", node, context={"User": args.user})
        )
    except PlanningError as exc:
        log.error(f"no valid deployment: {exc}")
        return 1
    log.info(plan.describe())
    return 0


def cmd_mail(args: argparse.Namespace) -> int:
    """End-to-end mail service run: connect clients at several sites,
    drive their workloads, and report latencies + coherence activity.

    This exercises the full Figure 1 timeline (lookup → proxy download →
    planning → deployment → binding → steady-state requests), which
    makes it the natural target of ``--trace``/``--metrics``.
    """
    from .experiments import build_mail_testbed
    from .services.mail import DEFAULT_USERS, WorkloadConfig, mail_workload
    from .services.mail import crypto

    fast = not args.no_fast_path
    crypto.configure_cache(fast)
    # --slo / --flight need the sampler; default its interval on demand
    # (--autonomic defaults it inside the runtime itself).
    telemetry_interval = args.telemetry_interval
    if telemetry_interval is None and (args.slo or args.flight):
        telemetry_interval = 500.0
    flight = None
    if args.flight:
        from .obs import FlightRecorder

        flight = FlightRecorder()
    testbed = build_mail_testbed(
        clients_per_site=max(1, args.clients_per_site),
        flush_policy=args.flush_policy,
        algorithm=args.algorithm,
        plan_cache=False if args.no_plan_cache else None,
        memoize=not args.no_memo,
        fast_path=fast,
        compile_routes=fast,
        proxy_fast_path=fast,
        batch_coherence=fast,
        versioned_coherence=not args.no_versioned_coherence,
        telemetry_interval_ms=telemetry_interval,
        flight=flight,
        autonomic=args.autonomic,
    )
    runtime = testbed.runtime
    sites = args.sites
    users = list(DEFAULT_USERS)

    replanner = None
    if args.chaos:
        replanner = runtime.enable_self_healing(
            heartbeat_interval_ms=args.heartbeat_interval,
            miss_threshold=args.miss_threshold,
            incremental=not args.no_incremental_replan,
        )

    proxies = []
    for i, site in enumerate(sites):
        node = testbed.client_nodes(site)[0]
        user = users[i % len(users)]
        proxy = runtime.run(
            runtime.client_connect(node, {"User": user}), f"connect:{user}"
        )
        record = runtime.bind_records[-1]
        plan = runtime.generic_server.accesses[-1].plan
        chain = " -> ".join(
            f"{p.unit}@{p.node}" for p in plan.chain_from_root()
        )
        log.info(f"{site}: {user} bound to {chain}")
        log.info(
            f"  one-time cost {record.total_ms:8.1f} ms  "
            f"(lookup {record.lookup_ms:.1f}, planning {record.planning_ms:.1f}, "
            f"deployment {record.deployment_ms:.1f})"
        )
        if replanner is not None:
            from .smock import RetryPolicy

            proxy.retry_policy = RetryPolicy(
                timeout_ms=args.retry_timeout,
                max_retries=args.max_retries,
                seed=args.seed,
            )
            replanner.track_access(proxy, runtime.generic_server.accesses[-1])
        elif runtime.autonomic is not None:
            # Scale rounds need the binding registered; the chaos path
            # above already did so via the shared replanner.
            runtime.autonomic.track_access(
                proxy, runtime.generic_server.accesses[-1]
            )
        proxies.append((site, user, proxy))

    peers = [user for _s, user, _p in proxies]
    procs = []
    for site, user, proxy in proxies:
        config = WorkloadConfig(
            user=user,
            peers=[u for u in peers if u != user] or [user],
            n_sends=args.sends,
            n_receives=args.receives,
            seed=args.seed,
        )
        procs.append(
            (site, user, runtime.sim.process(mail_workload(proxy, config),
                                             name=f"workload:{user}"))
        )

    if replanner is None:
        runtime.sim.run()
    else:
        # Chaos run: fault times are relative to workload start.
        import dataclasses

        from .faults import FaultInjector, FaultPlan

        t0 = runtime.sim.now
        plan = FaultPlan(seed=args.chaos_seed)
        for action in FaultPlan.parse(args.chaos, seed=args.chaos_seed).actions:
            plan.add(dataclasses.replace(
                action,
                at_ms=action.at_ms + t0,
                until_ms=None if action.until_ms is None
                else action.until_ms + t0,
            ))
        for line in plan.describe():
            log.info(f"chaos: {line}")
        injector = FaultInjector(runtime, plan)
        injector.schedule()
        # The detector/monitor loops never drain the event list, so run
        # in slices until every workload finishes (or gives up).
        deadline = t0 + args.chaos_horizon
        while (not all(p.triggered for _s, _u, p in procs)
               and runtime.sim.now < deadline):
            runtime.sim.run(until=min(runtime.sim.now + 5_000.0, deadline))
        runtime.failure_detector.stop()
        runtime.monitor.stop()

    for site, user, proc in procs:
        if not proc.triggered:
            log.error(f"{site}: {user} workload did not finish")
            continue
        if proc.failed:
            log.error(f"{site}: {user} workload failed: {proc.value!r}")
            continue
        result = proc.value
        errors = f", {len(result.errors)} errors" if result.errors else ""
        log.info(
            f"{site}: {user} mean send {result.mean_send_ms:8.2f} ms, "
            f"mean receive {result.mean_receive_ms:8.2f} ms{errors}"
        )
    stats = runtime.coherence.stats
    log.info(
        f"coherence: {stats.local_updates} local updates, {stats.syncs} flushes, "
        f"{stats.invalidations} invalidations, {stats.stale_reads} stale reads"
    )
    manager = runtime.autonomic
    if manager is not None:
        installed = sum(len(e.installed) for e in manager.events)
        retired = sum(len(e.retired) for e in manager.events)
        log.info(
            f"autonomic: {len(manager.events)} action(s) "
            f"({manager.suppressed} signals suppressed), "
            f"{installed} replica(s) installed, {retired} retired, "
            f"views {manager._baseline_views or manager._view_count()} -> "
            f"{manager._view_count()} (peak {manager.views_peak})"
        )
        for event in manager.events:
            detail = ""
            if event.installed or event.retired:
                detail = (
                    f" (+{len(event.installed)}/-{len(event.retired)} instances)"
                )
            log.info(
                f"  {event.time_ms:8.0f} ms  {event.action:9s} "
                f"rule={event.rule} {event.series}={event.value:.3g}{detail}"
            )
    if replanner is not None:
        detector = runtime.failure_detector
        rounds = [e for e in replanner.events if not e.deferred]
        rebinds = sum(len(e.rebound) for e in rounds)
        retries = sum(p.retries for _s, _u, p in proxies)
        timeouts = sum(p.timeouts for _s, _u, p in proxies)
        log.info(
            f"failover: {detector.failures_detected} failures detected, "
            f"{detector.recoveries_detected} recoveries, {len(rounds)} replan "
            f"rounds, {rebinds} client rebinds"
        )
        log.info(
            f"          {retries} retries, {timeouts} request timeouts, "
            f"{stats.lost_updates} lost updates ({stats.lost_units} units)"
        )
        log.info(
            f"          {stats.recovered_updates} recovered via anti-entropy, "
            f"{stats.duplicates_rejected} duplicates rejected, "
            f"{stats.degraded_reads} degraded reads, "
            f"{stats.degraded_writes} degraded writes"
        )
    if args.slo:
        from .obs.slo import evaluate_slo, load_slo_spec

        report = evaluate_slo(
            load_slo_spec(args.slo), runtime.obs.metrics,
            coherence_stats=stats,
        )
        for line in report.render().splitlines():
            log.info(line)
        if args.slo_report:
            import json as _json
            import os as _os

            parent = _os.path.dirname(args.slo_report)
            if parent:
                _os.makedirs(parent, exist_ok=True)
            with open(args.slo_report, "w") as fh:
                _json.dump(report.to_dict(), fh, indent=2)
            log.info(f"[slo] report -> {args.slo_report}")
    if flight is not None:
        written = flight.dump_jsonl(args.flight)
        dropped = f" (+{flight.dropped} dropped)" if flight.dropped else ""
        log.info(f"[flight] {written} records{dropped} -> {args.flight}")
    log.info(f"simulated time: {runtime.sim.now:.1f} ms")
    return 0


def cmd_chaos_sweep(args: argparse.Namespace) -> int:
    """Seeded chaos sweep: generate a fault plan per seed, run the mail
    scenario under it, and check the post-quiescence invariants
    (durability of acked sends, replica convergence, client re-binding,
    and — with ``--check-determinism`` — same-seed reproducibility)."""
    import json as _json
    import os

    from .chaos import ChaosCaseConfig, run_chaos_case

    # Artifacts want a flight recording, which needs the sampler;
    # default its interval on demand.
    telemetry_interval = args.telemetry_interval
    if telemetry_interval is None and args.artifacts:
        telemetry_interval = 500.0
    config = ChaosCaseConfig(
        n_sends=args.sends,
        n_receives=args.receives,
        n_faults=args.faults,
        horizon_ms=args.horizon,
        kinds=args.kinds or None,
        versioned_coherence=not args.no_versioned_coherence,
        telemetry_interval_ms=telemetry_interval,
        slo=args.slo,
        load_rate_per_s=args.load_rate,
        load_arrival=args.load_arrival,
        load_users=args.load_users,
        overload_protection=args.overload_protection,
        autonomic=args.autonomic,
        crash_control_plane=args.crash_control_plane,
    )
    seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    log.info(
        f"chaos-sweep: {len(seeds)} seeds, {config.n_faults} faults over "
        f"{config.horizon_ms:.0f} ms each, versioned="
        f"{config.versioned_coherence}"
    )
    failures = []
    crashed: list = []
    slo_failures: list = []
    slo_reports: dict = {}
    log.info(f"{'seed':>6}  {'ok':2}  {'acked':>5}  {'retries':>7}  "
             f"{'recovered':>9}  {'degraded':>8}  {'dup-rej':>7}  "
             f"{'dropped':>7}  faults")
    for seed in seeds:
        # One seed blowing up (a harness bug, not an invariant miss)
        # must not take the rest of the sweep down with it: contain it,
        # report it, keep sweeping, and still exit non-zero.
        try:
            result = run_chaos_case(seed, config)
            if args.check_determinism:
                rerun = run_chaos_case(seed, config)
                if rerun.signature != result.signature:
                    result.violations.append(
                        f"determinism: two runs of seed {seed} diverged "
                        f"({result.signature[:12]} vs {rerun.signature[:12]})"
                    )
        except Exception as exc:  # noqa: BLE001 - containment is the point
            log.error(f"{seed:>6}  !!  case crashed: {exc!r}")
            crashed.append((seed, repr(exc)))
            continue
        ok = "ok" if result.ok else "NO"
        kinds = ",".join(sorted({line.split(":", 1)[0] for line in result.plan}))
        dropped = str(result.flight_dropped) if result.flight is not None else "-"
        log.info(
            f"{seed:>6}  {ok:2}  {result.acked_sends:>5}  "
            f"{result.stats['retries']:>7}  "
            f"{result.stats['recovered_updates']:>9}  "
            f"{result.stats['degraded_reads'] + result.stats['degraded_writes']:>8}  "
            f"{result.stats['duplicates_rejected']:>7}  "
            f"{dropped:>7}  {kinds}"
        )
        for violation in result.violations:
            log.error(f"        {violation}")
        if result.slo_report is not None and not result.slo_report["passed"]:
            missed = sum(1 for row in result.slo_report["rows"] if not row["ok"])
            log.info(f"        slo: {missed} objective(s) violated")
            slo_failures.append(seed)
        if result.slo_report is not None:
            slo_reports[str(seed)] = result.slo_report
        if not result.ok:
            failures.append(result)

    log.info(
        f"chaos-sweep: {len(seeds) - len(failures) - len(crashed)}/{len(seeds)} "
        f"seeds passed every invariant"
    )
    if crashed:
        log.error(f"chaos-sweep: {len(crashed)} seed(s) crashed the harness")
    if slo_failures and args.fail_on_slo:
        log.error(
            f"chaos-sweep: SLO violated on seed(s) {slo_failures} "
            f"(--fail-on-slo)"
        )
    if args.artifacts and (failures or crashed or slo_reports):
        os.makedirs(args.artifacts, exist_ok=True)
        for result in failures:
            path = os.path.join(args.artifacts, f"seed-{result.seed}.json")
            with open(path, "w") as fh:
                _json.dump(
                    {
                        "seed": result.seed,
                        "plan": result.plan,
                        "violations": result.violations,
                        "signature": result.signature,
                        "stats": result.stats,
                        "workload_errors": result.workload_errors,
                        "flight_dropped": result.flight_dropped,
                        "control_plane": result.control_plane,
                    },
                    fh,
                    indent=2,
                )
            if result.flight is not None:
                from .obs.flight import dump_records_jsonl

                flight_path = os.path.join(
                    args.artifacts, f"seed-{result.seed}-flight.jsonl"
                )
                dump_records_jsonl(
                    result.flight, flight_path, dropped=result.flight_dropped
                )
        if slo_reports:
            with open(os.path.join(args.artifacts, "slo-reports.json"), "w") as fh:
                _json.dump(slo_reports, fh, indent=2)
        if crashed:
            with open(os.path.join(args.artifacts, "crashed-seeds.json"), "w") as fh:
                _json.dump(
                    [{"seed": s, "error": e} for s, e in crashed], fh, indent=2
                )
        if failures:
            log.info(f"chaos-sweep: wrote {len(failures)} failure artifacts "
                     f"(+ flight recordings) to {args.artifacts}")
    if failures or crashed:
        return 1
    if slo_failures and args.fail_on_slo:
        return 1
    return 0


def cmd_load_sweep(args: argparse.Namespace) -> int:
    """Open-loop load harness: either a Poisson rate sweep (goodput
    curves per protection mode, knee detection) or — without ``--rates``
    — the headline flash-crowd pair (same seeded trace, protection off
    vs on, plus a steady reference cell defining peak goodput).  With
    ``--autonomic`` the pair gains a fourth cell running the closed
    telemetry -> replanning loop; ``--fail-on-slo`` then gates on that
    cell's SLO report instead of the protected one's."""
    import json as _json

    from .load import LoadConfig, run_flash_crowd_pair, run_load_sweep
    from .smock import RetryPolicy

    config = LoadConfig(
        duration_ms=args.duration,
        drain_ms=args.drain,
        n_users=args.users,
        zipf_s=args.zipf,
        seed=args.seed,
    )
    retry = RetryPolicy(timeout_ms=2000.0, max_retries=args.max_retries)
    flight = None
    if args.flight and not args.rates:
        from .obs import FlightRecorder

        flight = FlightRecorder()

    if args.rates:
        modes = {"off": (False,), "on": (True,), "both": (False, True)}[args.modes]
        sweep = run_load_sweep(
            args.rates, modes=modes, config=config, slo=args.slo,
            retry_policy=retry, autonomic=args.autonomic,
            parallel=args.parallel,
        )
        log.info(f"load-sweep: {len(args.rates)} rates x {len(modes)} mode(s)")
        for line in sweep.render().splitlines():
            log.info(line)
        for mode in modes:
            knee = sweep.knee(mode)
            label = "protected" if mode else "unprotected"
            log.info(f"load-sweep: {label} knee ~ {knee} req/s")
        artifact = {"kind": "load-sweep", **sweep.as_dict()}
        protected_cells = sweep.curve(True)
        slo_ok = all(c.slo_passed for c in protected_cells) if protected_cells else False
    else:
        pair = run_flash_crowd_pair(
            base_rate_per_s=args.base_rate,
            peak_rate_per_s=args.peak_rate,
            at_ms=args.flash_at,
            ramp_ms=args.ramp,
            hold_ms=args.hold,
            decay_ms=args.decay,
            reference_rate_per_s=args.reference_rate or None,
            config=config,
            slo=args.slo,
            retry_policy=retry,
            autonomic=args.autonomic,
            flight=flight,
        )
        cells = [("reference", pair.reference), ("unprotected", pair.unprotected),
                 ("protected", pair.protected), ("autonomic", pair.autonomic)]
        for name, cell in cells:
            if cell is None:
                continue
            slo = "-" if cell.slo_passed is None else (
                "PASS" if cell.slo_passed else "FAIL")
            log.info(
                f"load-sweep[{name}]: offered={cell.offered} ok={cell.ok} "
                f"goodput={cell.goodput_per_s:.1f}/s "
                f"timely={cell.timely_goodput_per_s:.1f}/s "
                f"avail={cell.availability:.3f} p50={cell.p50_ms:.0f}ms "
                f"p99={cell.p99_ms:.0f}ms slo={slo}"
            )
        if pair.peak_goodput_per_s:
            retention = (
                f"load-sweep: peak goodput {pair.peak_goodput_per_s:.1f}/s; "
                f"retention unprotected "
                f"{pair.unprotected_retention:.1%} vs protected "
                f"{pair.protected_retention:.1%}"
            )
            if pair.autonomic_retention is not None:
                retention += f" vs autonomic {pair.autonomic_retention:.1%}"
            log.info(retention)
        summary = pair.autonomic.autonomic if pair.autonomic else None
        if summary is not None:
            log.info(
                f"load-sweep[autonomic]: scale-out at "
                f"{summary['scale_out_at_ms']:.0f} ms, "
                f"{summary['installed']} installed / {summary['retired']} "
                f"retired, views {summary['views_baseline']} -> "
                f"{summary['views_peak']} -> {summary['views_final']}, "
                f"p99 recovered in {summary['p99_windows_to_recover']} "
                f"window(s), {summary['lost_updates']} lost updates"
            )
        artifact = {"kind": "flash-crowd-pair", **pair.as_dict()}
        # --autonomic makes the autonomic cell the headline: gate on it.
        gate_cell = pair.autonomic if pair.autonomic is not None else pair.protected
        slo_ok = gate_cell.slo_passed is True

    import os

    if args.output:
        parent = os.path.dirname(args.output)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.output, "w") as fh:
            _json.dump(artifact, fh, indent=2)
        log.info(f"load-sweep: wrote goodput artifact to {args.output}")
    if args.slo_report and not args.rates:
        parent = os.path.dirname(args.slo_report)
        if parent:
            os.makedirs(parent, exist_ok=True)
        reports = {
            name: cell.slo_report
            for name, cell in cells
            if cell is not None and cell.slo_report is not None
        }
        with open(args.slo_report, "w") as fh:
            _json.dump(reports, fh, indent=2)
        log.info(f"load-sweep: wrote SLO report(s) to {args.slo_report}")
    if flight is not None and args.flight:
        parent = os.path.dirname(args.flight)
        if parent:
            os.makedirs(parent, exist_ok=True)
        written = flight.dump_jsonl(args.flight)
        dropped = f" (+{flight.dropped} dropped)" if flight.dropped else ""
        log.info(f"load-sweep: {written} flight records{dropped} -> {args.flight}")
    if args.fail_on_slo and not slo_ok:
        log.error("load-sweep: gated run failed the SLO (--fail-on-slo)")
        return 1
    return 0


def cmd_parallel_sim(args: argparse.Namespace) -> int:
    """Conservative parallel kernel demo on the Figure-5 topology: the
    three sites become three logical processes (lookahead = min
    inter-site latency) hosting the deterministic site-traffic workload
    on ``--workers`` processes.  ``--check-determinism`` re-runs the
    identical workload single-process and asserts equal run signatures
    — worker count is placement, never physics."""
    import json as _json
    import os

    from .experiments.topology_fig5 import build_fig5_network
    from .sim.parallel import (
        TrafficConfig,
        partition_network,
        run_parallel,
        site_traffic_program,
    )

    topo = build_fig5_network(clients_per_site=args.clients)
    plan = partition_network(topo.network, credential=args.credential)
    for line in plan.describe():
        log.info(f"parallel-sim: {line}")

    config = TrafficConfig(
        seed=args.seed,
        messages_per_client=args.messages,
        remote_fraction=args.remote_fraction,
        think_mean_ms=args.think_mean,
    )
    result = run_parallel(
        topo.network, site_traffic_program, config,
        workers=args.workers, until=args.until, plan=plan,
        deadlock_timeout_s=args.deadlock_timeout,
    )
    counters = result.merged_counters()
    log.info(
        f"parallel-sim: workers={result.workers_used} "
        f"events={result.total_events} wall={result.wall_s:.3f}s "
        f"({result.events_per_sec:,.0f} events/s)"
    )
    log.info(f"parallel-sim: counters={counters}")
    log.info(f"parallel-sim: signature={result.signature()[:16]}")

    rc = 0
    artifact = {"kind": "parallel-sim", "run": result.as_dict()}
    if args.check_determinism:
        single = run_parallel(
            topo.network, site_traffic_program, config,
            workers=1, until=args.until, plan=plan,
            deadlock_timeout_s=args.deadlock_timeout,
        )
        match = single.signature() == result.signature()
        artifact["determinism"] = {
            "single_signature": single.signature(),
            "parallel_signature": result.signature(),
            "match": match,
        }
        if match:
            log.info(
                f"parallel-sim: determinism OK — workers=1 and "
                f"workers={result.workers_used} signatures match"
            )
        else:
            log.error(
                "parallel-sim: DETERMINISM VIOLATION — "
                f"workers=1 {single.signature()[:16]} != "
                f"workers={result.workers_used} {result.signature()[:16]}"
            )
            rc = 1
    if args.json:
        parent = os.path.dirname(args.json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.json, "w") as fh:
            _json.dump(artifact, fh, indent=2)
        log.info(f"parallel-sim: wrote artifact to {args.json}")
    return rc


def main(argv=None) -> int:
    obs_parser = argparse.ArgumentParser(add_help=False)
    group = obs_parser.add_argument_group("observability")
    group.add_argument("--trace", metavar="PATH", default=None,
                       help="write a JSON-lines span trace to PATH")
    group.add_argument("--metrics", action="store_true",
                       help="print the metrics summary after the command")
    group.add_argument("--log-level", default="INFO",
                       choices=["DEBUG", "INFO", "WARNING", "ERROR"])
    group.add_argument("--log-json", action="store_true",
                       help="emit structured JSON log lines instead of text")

    fastpath_parser = argparse.ArgumentParser(add_help=False)
    fp = fastpath_parser.add_argument_group(
        "planner fast path",
        "caching is on by default and never changes the plans produced "
        "(the byte-identical guard in tests/planner/test_cache.py holds "
        "it to account); disable to measure the raw search",
    )
    fp.add_argument("--no-plan-cache", action="store_true",
                    help="disable the deployment-plan cache")
    fp.add_argument("--no-memo", action="store_true",
                    help="disable memoized validity-condition checks")
    fp.add_argument("--no-incremental-replan", action="store_true",
                    help="make fault-triggered replans search from scratch "
                         "instead of seeding from the previous plan's "
                         "surviving placements")
    fp.add_argument("--no-fast-path", action="store_true",
                    help="disable every runtime hot-path variant (kernel "
                         "tight loop, compiled routes, proxy fast path, "
                         "batched coherence fan-out, crypto memo caches); "
                         "simulated results are identical either way")

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Partitionable-services reproduction (HPDC 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig5", help="print the case-study topology",
                       parents=[obs_parser])
    p.add_argument("--clients", type=int, default=2)
    p.set_defaults(fn=cmd_fig5)

    p = sub.add_parser("fig6", help="plan the three site deployments",
                       parents=[obs_parser])
    p.add_argument("--algorithm", default="exhaustive",
                   choices=["exhaustive", "dp_chain", "partial_order"])
    p.add_argument("--draw", action="store_true",
                   help="render the Figure 6 deployment picture")
    p.set_defaults(fn=cmd_fig6)

    p = sub.add_parser("fig7", help="run the latency scenario sweep",
                       parents=[obs_parser])
    p.add_argument("--max-clients", type=int, default=5)
    p.add_argument("--scenarios", nargs="*", default=None)
    p.set_defaults(fn=cmd_fig7)

    p = sub.add_parser("costs", help="one-time cost breakdown (§4.2)",
                       parents=[obs_parser])
    p.set_defaults(fn=cmd_costs)

    p = sub.add_parser("chains", help="enumerate valid linkage chains (Fig 3)",
                       parents=[obs_parser])
    p.add_argument("--interface", default="ClientInterface")
    p.add_argument("--max-units", type=int, default=6)
    p.set_defaults(fn=cmd_chains)

    p = sub.add_parser("validate", help="validate a service spec file",
                       parents=[obs_parser])
    p.add_argument("file")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("plan", help="plan the mail service for one client",
                       parents=[obs_parser, fastpath_parser])
    p.add_argument("--site", default="sandiego",
                   choices=["newyork", "sandiego", "seattle"])
    p.add_argument("--user", default="Bob")
    p.add_argument("--algorithm", default="exhaustive",
                   choices=["exhaustive", "dp_chain", "partial_order"])
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("mail", help="run the mail service end to end",
                       parents=[obs_parser, fastpath_parser])
    p.add_argument("--sites", nargs="*", default=["sandiego", "seattle"],
                   choices=["newyork", "sandiego", "seattle"])
    p.add_argument("--clients-per-site", type=int, default=2)
    p.add_argument("--sends", type=int, default=30)
    p.add_argument("--receives", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--flush-policy", default="count:100",
                   help='replica flush policy ("never", "count:N", "time:MS", '
                        '"write_through")')
    p.add_argument("--algorithm", default="dp_chain",
                   choices=["exhaustive", "dp_chain", "partial_order"])
    p.add_argument("--no-versioned-coherence", action="store_true",
                   help="fail-stop coherence: no update version stamps, no "
                        "duplicate rejection, no degraded-mode reads/writes, "
                        "no anti-entropy replay of lost buffers (the "
                        "pre-partition-tolerance behavior, byte-identical "
                        "to it)")
    chaos = p.add_argument_group("chaos")
    chaos.add_argument("--chaos", action="append", metavar="SPEC", default=[],
                       help="inject a fault (repeatable); SPEC is e.g. "
                            '"crash:sandiego-gw@2000", "restart:NODE@T", '
                            '"partition:A/B@T", "heal:A/B@T", '
                            '"drop:A/B:P@T1-T2", "delay:A/B:MS@T1-T2", '
                            '"duplicate:A/B:P@T1-T2" (re-deliver fraction P), '
                            '"reorder:A/B:MS@T1-T2" (hold messages up to MS '
                            "so later ones overtake), "
                            '"corrupt:A/B:P@T1-T2" (garble fraction P; the '
                            "receiver rejects them), "
                            '"split:A,B|C,D@T1-T2" (sever every link between '
                            "the groups, heal at T2); times are ms after "
                            "workload start. Enables heartbeat failure "
                            "detection, failover replanning, and client "
                            "retry.")
    chaos.add_argument("--chaos-seed", type=int, default=0,
                       help="RNG seed for probabilistic faults")
    chaos.add_argument("--chaos-horizon", type=float, default=600_000.0,
                       help="give up on unfinished workloads after this many "
                            "simulated ms")
    chaos.add_argument("--heartbeat-interval", type=float, default=250.0,
                       help="failure-detector ping interval (sim ms)")
    chaos.add_argument("--miss-threshold", type=int, default=3,
                       help="consecutive missed heartbeats before a node is "
                            "declared dead")
    chaos.add_argument("--retry-timeout", type=float, default=3000.0,
                       help="per-attempt client request timeout (sim ms)")
    chaos.add_argument("--max-retries", type=int, default=15,
                       help="retry budget per request; size it to outlive "
                            "the longest outage in the fault plan")
    tele = p.add_argument_group("telemetry / SLO")
    tele.add_argument("--autonomic", action="store_true",
                      help="close the telemetry -> replanning loop: sustained "
                           "threshold breaches (hot nodes, deep queues, slow "
                           "p99) trigger scale-out replanning at measured "
                           "rates, scale-in consolidates afterwards (implies "
                           "a 500 ms telemetry sampler)")
    tele.add_argument("--telemetry-interval", type=float, default=None,
                      metavar="MS",
                      help="sample queue depths, utilizations and windowed "
                           "percentiles every MS simulated ms "
                           "(default: off; implied 500 by --slo/--flight/"
                           "--autonomic)")
    tele.add_argument("--slo", metavar="SPEC", default=None,
                      help='evaluate an SLO spec after the run: "default", '
                           "a YAML/JSON spec file, or an inline JSON object "
                           "(enables metrics + the telemetry sampler)")
    tele.add_argument("--slo-report", metavar="PATH", default=None,
                      help="also write the SLO report as JSON to PATH")
    tele.add_argument("--flight", metavar="PATH", default=None,
                      help="dump the flight-recorder ring (recent telemetry "
                           "samples) as JSONL to PATH at exit")
    p.set_defaults(fn=cmd_mail)

    p = sub.add_parser(
        "chaos-sweep",
        help="run seeded chaos cases and check invariants",
        parents=[obs_parser],
    )
    p.add_argument("--seeds", type=int, default=20,
                   help="number of seeds to run (default 20)")
    p.add_argument("--seed-base", type=int, default=0,
                   help="first seed (cases run seed-base .. seed-base+seeds-1)")
    p.add_argument("--faults", type=int, default=3,
                   help="faults generated per case")
    p.add_argument("--horizon", type=float, default=60_000.0,
                   help="fault-schedule horizon per case (sim ms)")
    p.add_argument("--sends", type=int, default=30,
                   help="sends per workload client (one client per site)")
    p.add_argument("--receives", type=int, default=5,
                   help="fetches per workload client")
    p.add_argument("--kinds", nargs="*", default=None,
                   metavar="KIND",
                   help="restrict generated faults to these kinds (e.g. "
                        "crash split duplicate)")
    p.add_argument("--check-determinism", action="store_true",
                   help="run every seed twice and require identical run "
                        "signatures")
    p.add_argument("--no-versioned-coherence", action="store_true",
                   help="sweep under fail-stop coherence instead")
    p.add_argument("--artifacts", metavar="DIR", default=None,
                   help="write a JSON artifact (plus a flight-recorder "
                        "JSONL) per failing seed into DIR; SLO reports land "
                        "in DIR/slo-reports.json")
    p.add_argument("--telemetry-interval", type=float, default=None,
                   metavar="MS",
                   help="per-case telemetry sampling interval in simulated "
                        "ms (default: off; implied 500 by --artifacts)")
    p.add_argument("--slo", metavar="SPEC", default=None,
                   help='SLO spec evaluated per seed ("default" or a '
                        "YAML/JSON spec file)")
    p.add_argument("--fail-on-slo", action="store_true",
                   help="exit non-zero when any seed violates the --slo "
                        "spec (CI gating), not just on invariant failures")
    p.add_argument("--load-rate", type=float, default=None, metavar="PER_S",
                   help="run open-loop background load at this base rate "
                        "under every case (load x fault composite)")
    p.add_argument("--load-arrival", choices=["poisson", "flash"],
                   default="poisson",
                   help="background-load arrival shape (flash peaks at 4x "
                        "the base rate mid-horizon)")
    p.add_argument("--load-users", type=int, default=1_000,
                   help="simulated-user roster size for background load")
    p.add_argument("--overload-protection", action="store_true",
                   help="enable admission control / token buckets / circuit "
                        "breakers for the composite runs")
    p.add_argument("--autonomic", action="store_true",
                   help="close the telemetry -> replanning loop per case "
                        "(load x fault x scale composite when combined with "
                        "--load-rate; implies a 500 ms telemetry sampler)")
    p.add_argument("--crash-control-plane", action="store_true",
                   help="additionally crash the framework's own brain: the "
                        "lookup primary's host and the coherence-directory "
                        "host each get a scripted crash+restart (implies "
                        "two lookup replicas, 15 s leases, and the "
                        "directory journal; adds the lookup-failover and "
                        "directory-recovery invariants)")
    p.set_defaults(fn=cmd_chaos_sweep)

    p = sub.add_parser(
        "load-sweep",
        help="open-loop load curves and the flash-crowd pair",
        parents=[obs_parser],
    )
    p.add_argument("--rates", type=float, nargs="*", default=None,
                   metavar="RATE",
                   help="offered rates (req/s) for a Poisson sweep; "
                        "omit to run the flash-crowd pair instead")
    p.add_argument("--modes", choices=["off", "on", "both"], default="both",
                   help="overload-protection modes to sweep (default both)")
    p.add_argument("--duration", type=float, default=30_000.0,
                   help="offered-load window per cell (sim ms)")
    p.add_argument("--drain", type=float, default=60_000.0,
                   help="extra sim time for in-flight requests to finish")
    p.add_argument("--users", type=int, default=10_000,
                   help="simulated-user roster size (Zipf-skewed draws)")
    p.add_argument("--zipf", type=float, default=1.1,
                   help="Zipf exponent for the hot-user skew")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-retries", type=int, default=4,
                   help="client retry budget per request")
    p.add_argument("--base-rate", type=float, default=70.0,
                   help="flash-crowd base offered rate (req/s)")
    p.add_argument("--peak-rate", type=float, default=600.0,
                   help="flash-crowd peak offered rate (req/s)")
    p.add_argument("--flash-at", type=float, default=5_000.0,
                   help="flash onset (sim ms into the window)")
    p.add_argument("--ramp", type=float, default=2_000.0,
                   help="flash ramp-up time (sim ms)")
    p.add_argument("--hold", type=float, default=12_000.0,
                   help="flash hold time at peak (sim ms)")
    p.add_argument("--decay", type=float, default=3_000.0,
                   help="flash decay time back to base (sim ms)")
    p.add_argument("--reference-rate", type=float, default=100.0,
                   help="steady pre-knee rate defining peak goodput "
                        "(flash-crowd mode; 0 skips the reference cell)")
    p.add_argument("--autonomic", action="store_true",
                   help="close the telemetry -> replanning loop: in "
                        "flash-crowd mode adds a fourth cell (protection + "
                        "autonomic scale-out/scale-in); in --rates mode "
                        "every cell runs with the loop closed")
    p.add_argument("--slo", metavar="SPEC", default=None,
                   help='grade every cell against an SLO spec ("default", '
                        "a YAML/JSON spec file, or an inline JSON object)")
    p.add_argument("--fail-on-slo", action="store_true",
                   help="exit non-zero unless the gated run (autonomic cell "
                        "with --autonomic, else protected) passes the --slo "
                        "spec (CI gating)")
    p.add_argument("--slo-report", metavar="PATH", default=None,
                   help="flash-crowd mode: write the per-cell SLO reports "
                        "as JSON to PATH")
    p.add_argument("--flight", metavar="PATH", default=None,
                   help="flash-crowd mode: dump the autonomic cell's "
                        "flight-recorder ring (telemetry samples + scale "
                        "decisions) as JSONL to PATH")
    p.add_argument("--output", metavar="PATH", default=None,
                   help="write the goodput-curve JSON artifact to PATH")
    p.add_argument("--parallel", type=int, default=0, metavar="N",
                   help="--rates mode: farm the independent cells out to "
                        "N worker processes (cells and signatures are "
                        "identical to a sequential sweep)")
    p.set_defaults(fn=cmd_load_sweep)

    p = sub.add_parser(
        "parallel-sim",
        help="conservative parallel DES demo on the Figure-5 sites",
        parents=[obs_parser],
    )
    p.add_argument("--workers", type=int, default=4, metavar="N",
                   help="worker processes (capped at the partition count; "
                        "1 = in-process, same protocol)")
    p.add_argument("--clients", type=int, default=5,
                   help="client nodes per site (Figure-5 topology)")
    p.add_argument("--messages", type=int, default=200,
                   help="messages each client sends")
    p.add_argument("--remote-fraction", type=float, default=0.05,
                   help="probability a message crosses sites")
    p.add_argument("--think-mean", type=float, default=40.0,
                   help="mean exponential think time between messages (ms)")
    p.add_argument("--until", type=float, default=30_000.0,
                   help="simulation horizon (sim ms, exclusive)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--credential", default="site",
                   help="node credential to partition by (fallback: "
                        "latency min-cut)")
    p.add_argument("--check-determinism", action="store_true",
                   help="re-run single-process and require identical "
                        "run signatures")
    p.add_argument("--deadlock-timeout", type=float, default=60.0,
                   metavar="S",
                   help="per-worker no-progress tripwire in wall seconds "
                        "(default 60); raise for legitimately slow "
                        "workloads")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write the run artifact (plan, per-partition "
                        "results, signature) as JSON to PATH")
    p.set_defaults(fn=cmd_parallel_sim)

    args = parser.parse_args(argv)
    configure_logging(level=args.log_level, json_output=args.log_json)

    obs = None
    previous = None
    # --slo and --telemetry-interval need a live metrics registry even
    # when --metrics wasn't asked for explicitly.
    wants_metrics = (
        args.metrics
        or getattr(args, "slo", None) is not None
        or getattr(args, "telemetry_interval", None) is not None
        or getattr(args, "flight", None) is not None
    )
    if args.trace or wants_metrics:
        obs = Observability(tracing=args.trace is not None, metrics=True)
        previous = set_default_obs(obs)
    try:
        rc = args.fn(args)
    finally:
        if obs is not None:
            set_default_obs(previous)
            if args.trace:
                # The trace carries its own metrics snapshot so one file
                # holds the complete observability record of the run.
                obs.recorder.add(
                    {"type": "metrics", "metrics": obs.metrics.snapshot()}
                )
                written = obs.recorder.to_jsonl(args.trace)
                log.info(f"[trace] {written} records -> {args.trace}")
            if args.metrics:
                log.info(obs.metrics.render())
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
