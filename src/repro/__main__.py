"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's artifacts or validate user specs:

- ``fig5``      — print the case-study topology
- ``fig6``      — plan and print the three site deployments
- ``fig7``      — run the nine-scenario latency sweep
- ``costs``     — the §4.2 one-time cost breakdown
- ``chains``    — enumerate Figure 3's valid linkage chains
- ``validate``  — parse + validate a service spec file (readable or XML)
- ``plan``      — plan the mail service for a client at a given site
"""

from __future__ import annotations

import argparse
import sys


def cmd_fig5(args: argparse.Namespace) -> int:
    from .experiments import build_fig5_network

    topo = build_fig5_network(clients_per_site=args.clients)
    print(f"Figure 5 topology: {len(topo.network)} nodes, "
          f"{topo.network.n_links} links")
    for link in topo.network.links():
        kind = "secure " if link.secure else "INSECURE"
        print(f"  {link.a:18s} <-> {link.b:18s} {link.latency_ms:6.0f} ms "
              f"{link.bandwidth_mbps:6.0f} Mb/s  {kind}")
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    from .experiments import build_fig5_network, run_fig6

    deployments = run_fig6(algorithm=args.algorithm)
    for site, result in deployments.items():
        status = "matches the paper" if result.matches_paper else "DIFFERS"
        print(f"{site} ({status}):")
        print("  " + " -> ".join(f"{u}@{s}" for u, s in result.chain))
    if args.draw:
        from .viz import render_deployment

        topo = build_fig5_network(clients_per_site=2)
        print()
        print(render_deployment(topo.network, [d.plan for d in deployments.values()]))
    return 0


def cmd_fig7(args: argparse.Namespace) -> int:
    from .experiments import fig7_series, format_fig7_table

    counts = tuple(range(1, args.max_clients + 1))
    series = fig7_series(client_counts=counts, scenarios=args.scenarios or None)
    print(format_fig7_table(series))
    return 0


def cmd_costs(args: argparse.Namespace) -> int:
    from .experiments import format_cost_table, measure_onetime_costs

    print(format_cost_table(measure_onetime_costs()))
    return 0


def cmd_chains(args: argparse.Namespace) -> int:
    from .planner import valid_chains
    from .services.mail import build_mail_spec

    chains = valid_chains(
        build_mail_spec(), args.interface, max_units=args.max_units, max_repeat=2
    )
    for chain in chains:
        print("  " + " -> ".join(chain))
    print(f"({len(chains)} valid chains)")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .spec import SpecError, from_xml, parse_service

    text = open(args.file).read()
    try:
        if text.lstrip().startswith("<Service") and 'name="' in text[:200]:
            spec = from_xml(text)
        else:
            spec = parse_service(text)
    except SpecError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {spec}")
    for unit in spec.units():
        kind = "view" if unit.is_view else "component"
        print(f"  {kind:9s} {unit.name}: implements "
              f"{[b.interface for b in unit.implements]}, requires "
              f"{[b.interface for b in unit.requires]}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from .experiments.topology_fig5 import build_fig5_network
    from .planner import Planner, PlanningError, PlanRequest
    from .services.mail import build_mail_spec, mail_translator

    topo = build_fig5_network(clients_per_site=2)
    planner = Planner(
        build_mail_spec(), topo.network, mail_translator(), algorithm=args.algorithm
    )
    planner.preinstall("MailServer", topo.server_node)
    node = topo.clients[args.site][0]
    try:
        plan = planner.plan(
            PlanRequest("ClientInterface", node, context={"User": args.user})
        )
    except PlanningError as exc:
        print(f"no valid deployment: {exc}", file=sys.stderr)
        return 1
    print(plan.describe())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Partitionable-services reproduction (HPDC 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig5", help="print the case-study topology")
    p.add_argument("--clients", type=int, default=2)
    p.set_defaults(fn=cmd_fig5)

    p = sub.add_parser("fig6", help="plan the three site deployments")
    p.add_argument("--algorithm", default="exhaustive",
                   choices=["exhaustive", "dp_chain", "partial_order"])
    p.add_argument("--draw", action="store_true",
                   help="render the Figure 6 deployment picture")
    p.set_defaults(fn=cmd_fig6)

    p = sub.add_parser("fig7", help="run the latency scenario sweep")
    p.add_argument("--max-clients", type=int, default=5)
    p.add_argument("--scenarios", nargs="*", default=None)
    p.set_defaults(fn=cmd_fig7)

    p = sub.add_parser("costs", help="one-time cost breakdown (§4.2)")
    p.set_defaults(fn=cmd_costs)

    p = sub.add_parser("chains", help="enumerate valid linkage chains (Fig 3)")
    p.add_argument("--interface", default="ClientInterface")
    p.add_argument("--max-units", type=int, default=6)
    p.set_defaults(fn=cmd_chains)

    p = sub.add_parser("validate", help="validate a service spec file")
    p.add_argument("file")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("plan", help="plan the mail service for one client")
    p.add_argument("--site", default="sandiego",
                   choices=["newyork", "sandiego", "seattle"])
    p.add_argument("--user", default="Bob")
    p.add_argument("--algorithm", default="exhaustive",
                   choices=["exhaustive", "dp_chain", "partial_order"])
    p.set_defaults(fn=cmd_plan)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
