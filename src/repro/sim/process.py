"""Generator-based simulation processes.

A *process* is a Python generator that yields :class:`~repro.sim.events.Event`
objects; the kernel resumes the generator when the yielded event triggers,
sending the event's value back into the generator.  This gives simulated
components natural sequential code::

    def client(sim, link):
        yield sim.timeout(5.0)            # think time
        reply = yield link.transfer(msg)  # blocks for latency + serialization
        ...

The process itself is an event that triggers when the generator returns,
so processes can wait on each other (fork/join).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .events import Event, SimulationError

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Wraps a generator as a schedulable simulation activity.

    The process event triggers with the generator's return value when the
    generator finishes, or fails with the escaping exception.
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(
        self,
        sim: Any,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off on the next kernel step at the current time.
        boot = Event(sim)
        boot.add_callback(self._resume)
        boot.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A dead process is left untouched (interrupting it is a no-op, as
        in SimPy).
        """
        if not self.is_alive:
            return
        self.sim.call_at(self.sim.now, lambda: self._throw(Interrupt(cause)))

    # -- kernel plumbing --------------------------------------------------
    def _resume(self, by: Event) -> None:
        if self.triggered:
            return
        if by.failed:
            self._throw(by.value)
            return
        # Inlined _step(lambda: generator.send(...)): _resume runs once
        # per dispatched event, and the closure allocation plus the extra
        # call frame are measurable at benchmark scale.  Keep the two
        # exception paths in lockstep with _step below.
        self._waiting_on = None
        try:
            target = self.generator.send(by.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            self.succeed(None)
            return
        except BaseException as exc:
            if not hasattr(exc, "failed_process"):
                exc.failed_process = self.name  # type: ignore[attr-defined]
                exc.failed_at_ms = self.sim.now  # type: ignore[attr-defined]
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
        self._waiting_on = target
        target.add_callback(self._resume)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._step(lambda: self.generator.throw(exc))

    def _step(self, advance) -> None:
        self._waiting_on = None
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # Uncaught interrupt kills the process quietly.
            self.succeed(None)
            return
        except BaseException as exc:
            # Stamp the failure with where/when it escaped, so the
            # exception still names the culprit once it surfaces far
            # from here (e.g. out of run_until_complete in a chaos test).
            # First stamp wins: a fault rethrown up a chain of waiting
            # processes keeps naming the process where it originated.
            if not hasattr(exc, "failed_process"):
                exc.failed_process = self.name  # type: ignore[attr-defined]
                exc.failed_at_ms = self.sim.now  # type: ignore[attr-defined]
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"
