"""Shared-resource primitives: FIFO resources and message stores.

``Resource`` models a server with ``capacity`` concurrent slots (a node's
CPU, a link's transmit side); ``Store`` is an unbounded FIFO mailbox used
for inter-component message queues.  Both integrate with the event kernel
so processes simply ``yield`` on acquisition/retrieval.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .engine import Simulator
from .events import Event

__all__ = ["Resource", "Store", "Monitor"]


class Resource:
    """A FIFO resource with a fixed number of concurrent slots.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters", "_busy_area", "_last_change")

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Aggregate utilization accounting.
        self._busy_area = 0.0
        self._last_change = sim.now

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_area += self._in_use * (now - self._last_change)
        self._last_change = now

    def utilization(self) -> float:
        """Time-averaged fraction of capacity in use since creation."""
        self._account()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._busy_area / (elapsed * self.capacity)

    def busy_area(self) -> float:
        """Cumulative busy integral in slot-ms, settled to the current
        sim time.  Deltas of this between two instants give per-interval
        utilization (the telemetry sampler's probe), where
        :meth:`utilization` only gives the since-creation average."""
        self._account()
        return self._busy_area

    def request(self) -> Event:
        """Event that triggers when a slot is granted to the caller."""
        ev = self.sim.event()
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a slot; wakes the head-of-line waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without matching request()")
        if self._waiters:
            # Hand the slot straight to the next waiter (in_use unchanged).
            self._waiters.popleft().succeed(self)
        else:
            self._account()
            self._in_use -= 1

    def acquire(self) -> Generator[Event, Any, None]:
        """Generator helper: ``yield from resource.acquire()``."""
        yield self.request()

    def use(self, duration: float) -> Generator[Event, Any, None]:
        """Acquire a slot, hold it for ``duration`` ms, release it."""
        yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Store:
    """Unbounded FIFO mailbox of Python objects.

    ``put`` never blocks; ``get`` returns an event that triggers with the
    oldest item (immediately if one is available).
    """

    __slots__ = ("sim", "_items", "_getters")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event triggering with the next item (FIFO)."""
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; None if empty."""
        return self._items.popleft() if self._items else None


class Monitor:
    """Accumulates scalar observations (latencies, sizes) with summary stats.

    Lightweight replacement for pulling in a stats package in the hot
    path: constant-time ``observe`` and O(n log n) percentile queries.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) by nearest-rank."""
        if not self.samples:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Monitor {self.name!r} n={self.count} mean={self.mean:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}>"
        )
