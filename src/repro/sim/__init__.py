"""Discrete-event simulation substrate.

Replaces the paper's physical testbed (Pentium III nodes, Click software
router) with a deterministic, seeded simulator.  Public surface:

- :class:`Simulator` — event kernel, virtual clock (milliseconds)
- :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`Interrupt`
- :class:`Resource`, :class:`Store`, :class:`Monitor`
- :class:`SimNode` — host with CPU capacity + credentials
- :class:`SimLink` — latency/bandwidth link with security credential

The conservative parallel kernel lives in :mod:`repro.sim.parallel`
(imported on demand — it depends on :mod:`repro.network`, which in turn
imports this package, so an eager import here would be circular).  Its
front doors are ``Simulator.run_parallel`` and
``repro.sim.parallel.run_parallel``.
"""

from .arrivals import (
    ArrivalProcess,
    ArrivalStream,
    DiurnalProcess,
    FlashCrowdProcess,
    PoissonProcess,
)
from .engine import Simulator
from .events import (
    AllOf,
    AnyOf,
    Event,
    FaultError,
    Injected,
    LinkDownError,
    NodeDownError,
    SimulationError,
    Timeout,
)
from .node import SimNode
from .process import Interrupt, Process
from .resources import Monitor, Resource, Store
from .transport import LOCALHOST_LINK_ID, SimHalfLink, SimLink, transfer_time_ms

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Injected",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "FaultError",
    "NodeDownError",
    "LinkDownError",
    "Process",
    "Interrupt",
    "Resource",
    "Store",
    "Monitor",
    "SimNode",
    "SimLink",
    "SimHalfLink",
    "transfer_time_ms",
    "LOCALHOST_LINK_ID",
    "ArrivalProcess",
    "ArrivalStream",
    "PoissonProcess",
    "DiurnalProcess",
    "FlashCrowdProcess",
]
