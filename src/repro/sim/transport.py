"""Simulated network links: latency + bandwidth serialization.

This module stands in for the paper's Click-modular-router traffic
shaping.  A :class:`SimLink` delivers a payload of ``size_bytes`` after

    latency_ms + size_bytes * 8 / bandwidth_mbps / 1000

where the serialization term holds the link's transmit resource, so
concurrent transfers queue behind each other exactly like packets behind
a shaper.  Links are full-duplex: each direction has its own transmit
resource.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from .engine import Simulator
from .events import Event, LinkDownError
from .resources import Monitor, Resource

__all__ = ["SimLink", "SimHalfLink", "transfer_time_ms", "LOCALHOST_LINK_ID"]

#: Identifier used for intra-node (loopback) communication.
LOCALHOST_LINK_ID = "__loopback__"


def transfer_time_ms(size_bytes: int, bandwidth_mbps: float, latency_ms: float) -> float:
    """Analytic one-way transfer time for a message, in milliseconds.

    ``bandwidth_mbps`` is in megabits/second (the unit of Figure 5);
    a non-positive bandwidth means "infinitely fast" (pure latency).
    """
    if size_bytes < 0:
        raise ValueError(f"negative message size: {size_bytes}")
    serialization = 0.0
    if bandwidth_mbps > 0:
        serialization = (size_bytes * 8) / (bandwidth_mbps * 1e6) * 1e3
    return latency_ms + serialization


class SimLink:
    """A bidirectional point-to-point link between two simulated nodes.

    Parameters mirror the paper's Figure 5 annotations: one-way latency
    in ms and bandwidth in Mb/s, plus the ``secure`` credential used by
    property-modification rules.
    """

    def __init__(
        self,
        sim: Simulator,
        a: str,
        b: str,
        latency_ms: float,
        bandwidth_mbps: float,
        secure: bool = True,
        name: Optional[str] = None,
    ) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative latency: {latency_ms}")
        self.sim = sim
        self.a = a
        self.b = b
        self.latency_ms = latency_ms
        self.bandwidth_mbps = bandwidth_mbps
        self.secure = secure
        self.name = name or f"{a}<->{b}"
        # One transmit queue per direction (full duplex).
        self._tx = {a: Resource(sim, 1), b: Resource(sim, 1)}
        self.stats = Monitor(f"link:{self.name}")
        self.bytes_carried = 0
        #: liveness flag: a partitioned link carries no new transfers.
        self.up = True

    def fail(self) -> None:
        """Partition the link: new transfers raise :class:`LinkDownError`."""
        self.up = False

    def heal(self) -> None:
        self.up = True

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other_end(self, node: str) -> str:
        """The opposite endpoint; raises if ``node`` is not an endpoint."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of {self.name}")

    def serialization_ms(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the wire (no latency)."""
        if self.bandwidth_mbps <= 0:
            return 0.0
        return (size_bytes * 8) / (self.bandwidth_mbps * 1e6) * 1e3

    def transfer(
        self, src: str, size_bytes: int, payload: Any = None
    ) -> Generator[Event, Any, Any]:
        """Process generator: move ``payload`` from ``src`` to the far end.

        Queues behind earlier transfers in the same direction
        (bandwidth contention), then incurs propagation latency.
        Returns the payload so callers can ``yield from`` it.
        Raises :class:`LinkDownError` when the link is partitioned —
        checked at start and again after serialization, so a transfer
        caught mid-flight by a partition is lost, not delivered.
        """
        if not self.up:
            raise LinkDownError(f"link {self.name} is partitioned")
        tx = self._tx[src if src in self._tx else self.a]
        start = self.sim.now
        yield tx.request()
        try:
            yield self.sim.timeout(self.serialization_ms(size_bytes))
        finally:
            tx.release()
        if not self.up:
            raise LinkDownError(f"link {self.name} partitioned mid-transfer")
        yield self.sim.timeout(self.latency_ms)
        self.bytes_carried += size_bytes
        self.stats.observe(self.sim.now - start)
        return payload

    def transfer_process(self, src: str, size_bytes: int, payload: Any = None):
        """Convenience: run :meth:`transfer` as a standalone process."""
        return self.sim.process(
            self.transfer(src, size_bytes, payload), name=f"xfer:{self.name}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sec = "secure" if self.secure else "insecure"
        return (
            f"<SimLink {self.name} {self.latency_ms}ms/"
            f"{self.bandwidth_mbps}Mbps {sec}>"
        )


class SimHalfLink:
    """The sender-side half of a link whose far end lives in another
    partition of a parallel run.

    Links are full-duplex, so each direction's transmit queue is owned
    entirely by its *sending* endpoint — nothing about serialization is
    shared state.  The parallel kernel therefore models a cut link as
    two independent half-links: the sender holds the transmit resource
    and pays serialization locally, and the propagation latency is
    stamped into the cross-partition message's delivery time.  Because
    that latency is exactly the channel's lookahead, every delivery
    lands at or beyond the receiver's guaranteed horizon.
    """

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        latency_ms: float,
        bandwidth_mbps: float,
        name: Optional[str] = None,
    ) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative latency: {latency_ms}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency_ms = latency_ms
        self.bandwidth_mbps = bandwidth_mbps
        self.name = name or f"{src}->{dst}"
        self._tx = Resource(sim, 1)
        self.bytes_carried = 0

    def serialization_ms(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the wire (no latency)."""
        if self.bandwidth_mbps <= 0:
            return 0.0
        return (size_bytes * 8) / (self.bandwidth_mbps * 1e6) * 1e3

    def transmit(self, size_bytes: int) -> Generator[Event, Any, None]:
        """Process generator: serialize onto the wire behind earlier
        sends in this direction.  On return the payload is "in flight";
        the caller posts it to the far partition with delivery time
        ``sim.now + latency_ms``."""
        yield self._tx.request()
        try:
            yield self.sim.timeout(self.serialization_ms(size_bytes))
        finally:
            self._tx.release()
        self.bytes_carried += size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimHalfLink {self.name} {self.latency_ms}ms/"
            f"{self.bandwidth_mbps}Mbps>"
        )
