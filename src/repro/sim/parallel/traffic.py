"""A reusable site-traffic workload for the parallel kernel.

Module-level (picklable) program mirroring the shape of the paper's
mail workload: every node in a partition runs a client loop — think
time, CPU service, then a message to a local peer or (with configured
probability) to a node in another site.  Remote deliveries complete
hop-by-hop at the receiving site and record end-to-end latency; traffic
for a partition beyond a direct channel is relayed onward at each
boundary, exactly how the site gateways forward.

Seeding is per ``(config.seed, node)`` so each client's random stream
is a property of the node name alone — independent of partition count,
worker count, or scheduling — which makes the whole workload's run
signature reproducible across worker counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Generator

from .channel import RemoteMessage
from .lp import PartitionContext

__all__ = ["TrafficConfig", "site_traffic_program"]


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs for :func:`site_traffic_program` (all deterministic)."""

    seed: int = 0
    messages_per_client: int = 100
    #: probability a message targets a node outside this partition.
    remote_fraction: float = 0.05
    payload_bytes: int = 2_000
    #: mean exponential think time between messages, ms.
    think_mean_ms: float = 40.0
    #: CPU work units burned on the client node per message.
    cpu_work: float = 2.0
    #: only nodes whose name contains this substring run client loops
    #: (empty string = every node).
    client_filter: str = "client"


def site_traffic_program(ctx: PartitionContext, config: TrafficConfig) -> None:
    """Install the workload on one partition: client loops + receive/relay."""
    cfg = config or TrafficConfig()
    ctx.on_message("traffic", _on_traffic)
    for node in ctx.local_nodes:
        if cfg.client_filter and cfg.client_filter not in node:
            continue
        ctx.process(_client_loop(ctx, cfg, node), name=f"client:{node}")


def _client_loop(
    ctx: PartitionContext, cfg: TrafficConfig, node: str
) -> Generator[Any, Any, None]:
    # random.Random seeds strings via SHA-512, so the stream depends on
    # (seed, node) only — stable across processes and worker counts.
    rng = random.Random(f"{cfg.seed}:{node}")
    local_peers = [n for n in ctx.local_nodes if n != node]
    remote_peers = list(ctx.remote_nodes)
    for _ in range(cfg.messages_per_client):
        yield ctx.sim.timeout(rng.expovariate(1.0 / cfg.think_mean_ms))
        yield from ctx.nodes[node].execute(cfg.cpu_work)
        draw = rng.random()  # always consumed: stream position is fixed
        remote = bool(remote_peers) and draw < cfg.remote_fraction
        if remote:
            dest = remote_peers[rng.randrange(len(remote_peers))]
            ctx.count("remote_sent")
            yield from ctx.send_remote(
                node, dest, cfg.payload_bytes, "traffic", (node, ctx.sim.now)
            )
        elif local_peers:
            dest = local_peers[rng.randrange(len(local_peers))]
            start = ctx.sim.now
            yield from ctx.transfer_local(node, dest, cfg.payload_bytes)
            ctx.record_latency(ctx.sim.now - start)
            ctx.count("local_delivered")


def _on_traffic(ctx: PartitionContext, msg: RemoteMessage) -> None:
    if ctx.is_local(msg.dest):
        ctx.process(_finish_delivery(ctx, msg), name=f"deliver:{msg.dest}")
    else:
        # Entered at a boundary node of an intermediate partition: relay
        # onward toward the destination's own partition.
        ctx.count("relayed")
        ctx.process(
            ctx.send_remote(msg.via, msg.dest, msg.size, "traffic", msg.payload),
            name=f"relay:{msg.dest}",
        )


def _finish_delivery(
    ctx: PartitionContext, msg: RemoteMessage
) -> Generator[Any, Any, None]:
    if msg.via != msg.dest:
        yield from ctx.transfer_local(msg.via, msg.dest, msg.size)
    _src, sent_at = msg.payload
    ctx.record_latency(ctx.sim.now - sent_at)
    ctx.count("remote_delivered")
