"""Timestamped channels between logical processes.

Conservative (Chandy–Misra–Bryant style) synchronization exchanges two
kinds of items per directed partition pair:

- :class:`RemoteMessage` — an application payload with the *delivery*
  timestamp already stamped by the sender (send clock + channel
  latency), plus the sender's ``(origin, seq)`` identity that slots it
  into the receiver's total heap order.
- :class:`Advert` — an explicit null message: "my clock will not go
  below ``clock``", from which the receiver derives the channel
  guarantee ``clock + lookahead``.

Both are plain named tuples so they cross ``multiprocessing`` queue
boundaries with minimal pickling cost, and the in-process (workers=1)
router can hand them over without any translation.
"""

from __future__ import annotations

from typing import Any, NamedTuple

__all__ = ["RemoteMessage", "Advert"]


class RemoteMessage(NamedTuple):
    """A cross-partition application message.

    ``when``    delivery time at the receiving partition (ms).
    ``origin``  sender partition rank — heap tiebreaker component.
    ``seq``     sender's per-origin message sequence number.
    ``dest``    final destination node name (may be outside the
                receiving partition, in which case the program relays).
    ``via``     the entry node in the receiving partition (the cut
                link's far endpoint).
    ``kind``    program-level message type, dispatched to the handler
                registered via ``PartitionContext.on_message``.
    ``payload`` opaque program data (must be picklable).
    ``clock``   the sender's send-time clock — doubles as an implicit
                advert, tightening the channel guarantee for free.
    ``size``    payload size in bytes (for onward local/relay hops).
    """

    when: float
    origin: int
    seq: int
    dest: str
    via: str
    kind: str
    payload: Any
    clock: float
    size: int


class Advert(NamedTuple):
    """A null message: the sender promises its clock stays >= ``clock``."""

    origin: int
    clock: float
