"""Conservative parallel discrete-event simulation.

The paper's deployments are site-partitioned: a handful of sites whose
only slow edges are the inter-site links.  This package exploits that
shape to break the sequential kernel's single-core ceiling:

- :mod:`.partition` splits the topology by site credential (fallback:
  min-cut over link latency) into one logical process per site.
- :mod:`.lp` wraps the *unchanged* sequential :class:`~repro.sim.Simulator`
  per partition, bounded by the null-message safe horizon; lookahead is
  the minimum inter-site link latency.
- :mod:`.worker` hosts logical processes on persistent worker processes
  (``multiprocessing``, warm-started via fork) and runs the
  null-message drive loop.
- :mod:`.runner` is the public entry point,
  :func:`~repro.sim.parallel.run_parallel`, also reachable as
  ``Simulator.run_parallel`` / ``SmockRuntime(parallel=N)`` / the
  ``parallel-sim`` CLI command.
- :mod:`.traffic` ships a reusable deterministic site-traffic workload.

Worker count is pure placement: results (and their signatures) are
identical for workers=1/2/4 — see ``tests/sim/test_parallel_kernel.py``.
"""

from .channel import Advert, RemoteMessage
from .lp import LogicalProcess, PartitionContext
from .partition import (
    CutLink,
    Partition,
    PartitionError,
    PartitionPlan,
    partition_network,
)
from .runner import ParallelRunResult, run_parallel
from .traffic import TrafficConfig, site_traffic_program

__all__ = [
    "Advert",
    "RemoteMessage",
    "LogicalProcess",
    "PartitionContext",
    "CutLink",
    "Partition",
    "PartitionError",
    "PartitionPlan",
    "partition_network",
    "ParallelRunResult",
    "run_parallel",
    "TrafficConfig",
    "site_traffic_program",
]
