"""Worker processes and the null-message drive loop.

One *worker* hosts one or more logical processes (round-robin when
there are fewer workers than partitions) and runs :func:`drive`: a
round-based loop that advances every hosted LP to its safe horizon,
flushes outbound messages and grown adverts, and — when nothing moved
and nothing is done — blocks on the worker's inbox until a peer's
traffic raises a horizon.

Workers are *persistent and warm-started*: the topology, the partition
plan, and the program are shipped exactly once as process arguments
(fork makes this a copy-on-write no-op); afterwards only timestamped
events and tiny null messages cross process boundaries.  Each round
batches everything bound for a given peer worker into one queue item,
so synchronization costs O(active channels) puts per round, not one
per message.

The same :func:`drive` loop also powers the ``workers=1`` in-process
mode through :class:`InlineRouter` — identical protocol, no queues —
which is what makes cross-worker-count determinism testable cheaply.
"""

from __future__ import annotations

import traceback
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..events import SimulationError
from .channel import Advert, RemoteMessage
from .lp import LogicalProcess
from .partition import PartitionPlan

__all__ = ["InlineRouter", "QueueRouter", "drive", "worker_main"]

#: give up if a worker sits quiescent-but-not-done this long (wall s).
DEADLOCK_TIMEOUT_S = 60.0
#: single blocking-poll slice, so deadlock accounting stays responsive.
POLL_SLICE_S = 1.0


class InlineRouter:
    """Zero-copy router for colocated logical processes."""

    def __init__(self, lps: Dict[int, LogicalProcess]) -> None:
        self._lps = lps

    def send_message(self, dst_rank: int, msg: RemoteMessage) -> None:
        self._lps[dst_rank].observe_message(msg)

    def send_advert(self, dst_rank: int, advert: Advert) -> None:
        self._lps[dst_rank].observe_advert(advert)

    def flush_round(self) -> None:  # nothing buffered
        pass

    def poll(self, block: bool) -> bool:
        return False


class QueueRouter:
    """Routes channel traffic between workers over ``multiprocessing``
    queues, delivering locally when the destination LP is colocated.

    Outbound items are batched per destination worker per round; an
    inbox item is a list of ``("m", rank, msg)`` / ``("a", rank, adv)``
    tuples.  ``multiprocessing.Queue`` preserves per-producer FIFO
    order, which the guarantee algebra relies on (a channel's clocks
    arrive non-decreasing).
    """

    def __init__(
        self,
        lps: Dict[int, LogicalProcess],
        worker_of: Dict[int, int],
        inbox: Any,
        peer_inboxes: Dict[int, Any],
    ) -> None:
        self._lps = lps
        self._worker_of = worker_of
        self._inbox = inbox
        self._peer_inboxes = peer_inboxes
        self._pending: Dict[int, List[Tuple]] = {}

    def send_message(self, dst_rank: int, msg: RemoteMessage) -> None:
        lp = self._lps.get(dst_rank)
        if lp is not None:
            lp.observe_message(msg)
        else:
            w = self._worker_of[dst_rank]
            self._pending.setdefault(w, []).append(("m", dst_rank, msg))

    def send_advert(self, dst_rank: int, advert: Advert) -> None:
        lp = self._lps.get(dst_rank)
        if lp is not None:
            lp.observe_advert(advert)
        else:
            w = self._worker_of[dst_rank]
            self._pending.setdefault(w, []).append(("a", dst_rank, advert))

    def flush_round(self) -> None:
        pending, self._pending = self._pending, {}
        for w in sorted(pending):
            self._peer_inboxes[w].put(pending[w])

    def _deliver(self, batch: List[Tuple]) -> None:
        for tag, dst_rank, item in batch:
            if tag == "m":
                self._lps[dst_rank].observe_message(item)
            else:
                self._lps[dst_rank].observe_advert(item)

    def poll(self, block: bool) -> bool:
        """Drain the inbox; optionally block for one slice first.
        Returns True when anything was delivered."""
        got = False
        if block:
            try:
                self._deliver(self._inbox.get(timeout=POLL_SLICE_S))
                got = True
            except Empty:
                return False
        while True:
            try:
                self._deliver(self._inbox.get_nowait())
                got = True
            except Empty:
                return got


def drive(
    lps: Dict[int, LogicalProcess],
    router: Any,
    deadlock_timeout_s: float = DEADLOCK_TIMEOUT_S,
) -> None:
    """Run the conservative protocol over ``lps`` until all are done.

    Each round: deliver pending ingress, advance every LP to its safe
    horizon, flush its messages and (if grown) its advert.  Quiescence
    with undone LPs means we must wait on peers; in inline mode — where
    there are no peers — it means a protocol bug, and with positive
    lookahead it cannot legally happen, so it raises after
    ``deadlock_timeout_s`` wall seconds without progress.
    """
    idle_slices = 0
    while True:
        progressed = router.poll(block=False)
        for rank in sorted(lps):
            lp = lps[rank]
            if lp.advance():
                progressed = True
            for dst_rank, msg in lp.take_outgoing():
                router.send_message(dst_rank, msg)
                progressed = True
            advert = lp.take_advert()
            if advert is not None:
                for dst_rank in lp.plan.out_neighbors(rank):
                    router.send_advert(dst_rank, advert)
                progressed = True
        router.flush_round()
        if all(lp.done() for lp in lps.values()):
            return
        if progressed:
            idle_slices = 0
            continue
        if not router.poll(block=True):
            idle_slices += 1
            if idle_slices * POLL_SLICE_S >= deadlock_timeout_s:
                stuck = {
                    lp.plan.partitions[r].name: (lp.sim.now, lp.horizon())
                    for r, lp in lps.items()
                    if not lp.done()
                }
                raise SimulationError(
                    f"parallel deadlock: no progress for "
                    f"{deadlock_timeout_s:.0f}s; stalled partitions "
                    f"(name: now, horizon) = {stuck}; if the workload is "
                    f"legitimately slow, raise the tripwire via "
                    f"run_parallel(..., deadlock_timeout_s=...) or "
                    f"`parallel-sim --deadlock-timeout`"
                )
        else:
            idle_slices = 0


def worker_main(
    worker_id: int,
    ranks: List[int],
    plan: PartitionPlan,
    network: Any,
    program: Callable,
    config: Any,
    until: float,
    worker_of: Dict[int, int],
    inbox: Any,
    peer_inboxes: Dict[int, Any],
    result_queue: Any,
    deadlock_timeout_s: float = DEADLOCK_TIMEOUT_S,
) -> None:
    """Entry point of one persistent worker process."""
    try:
        lps = {
            rank: LogicalProcess(plan, rank, network, program, config, until)
            for rank in ranks
        }
        router = QueueRouter(lps, worker_of, inbox, peer_inboxes)
        drive(lps, router, deadlock_timeout_s)
        results = {rank: lp.result() for rank, lp in lps.items()}
        result_queue.put((worker_id, "ok", results))
    except BaseException:  # noqa: BLE001 - ship the traceback to the parent
        result_queue.put((worker_id, "error", traceback.format_exc()))
