"""Topology partitioning for the conservative parallel kernel.

The paper's deployments are inherently *site-partitioned*: three sites
whose only slow edges are the inter-site links (Figure 5).  That is
exactly the shape conservative parallel DES wants — each site becomes
one logical process, and the inter-site link latency becomes the
channel lookahead that bounds how far each side may safely run ahead.

Two partitioning rules, tried in order:

1. **By site credential** (default): when every node carries the
   credential (e.g. ``site``), nodes group by its value.  A uniform
   credential yields one partition — a legal degenerate plan that the
   runner executes on the plain sequential kernel.
2. **Min-cut over link latency** (fallback): iterate the distinct link
   latencies in descending order and take the connected components of
   the subgraph containing only links *faster* than the threshold.
   Every cut edge then has latency >= threshold, so the threshold is a
   valid lookahead floor.  Lower thresholds only refine the split, so
   the rule keeps refining and takes the finest split with no
   single-node partition (a singleton does all its communication
   cross-partition — pure overhead); if every split strands a
   singleton, the coarsest split wins.  On Figure 5 without credentials
   this recovers the three sites at threshold 100 ms.

Every cut link must have strictly positive latency: zero-latency cuts
give zero lookahead, which deadlocks a conservative protocol.  Rather
than deadlock, :func:`partition_network` collapses such splits to a
single partition (or raises :class:`PartitionError` when the caller
demanded a split via ``require_split=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..events import SimulationError

__all__ = [
    "Partition",
    "CutLink",
    "PartitionPlan",
    "PartitionError",
    "partition_network",
]


class PartitionError(SimulationError):
    """The topology cannot be partitioned for conservative execution."""


@dataclass(frozen=True)
class Partition:
    """One logical process's share of the topology."""

    rank: int
    name: str
    nodes: Tuple[str, ...]

    def __contains__(self, node: str) -> bool:
        return node in self.nodes


@dataclass(frozen=True)
class CutLink:
    """One direction of a link crossing a partition boundary.

    A physical cut link appears twice (once per direction) because the
    transmit resource of each direction is owned by its sender — links
    are full-duplex, so the two halves share no simulation state.
    """

    src: str
    dst: str
    src_rank: int
    dst_rank: int
    latency_ms: float
    bandwidth_mbps: float


@dataclass
class PartitionPlan:
    """The static structure of a parallel run.

    Fully determined by the topology (never by the worker count), so
    event keys, channel lookaheads and message sequence numbers are
    identical no matter how partitions are packed onto processes.
    """

    partitions: Tuple[Partition, ...]
    rank_of: Dict[str, int]
    cuts: Tuple[CutLink, ...]
    #: per directed partition pair: min latency over its cut links —
    #: the channel lookahead in ms.
    lookahead_ms: Dict[Tuple[int, int], float]
    method: str
    _neighbors_in: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    _neighbors_out: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ins: Dict[int, set] = {p.rank: set() for p in self.partitions}
        outs: Dict[int, set] = {p.rank: set() for p in self.partitions}
        for src_rank, dst_rank in self.lookahead_ms:
            outs[src_rank].add(dst_rank)
            ins[dst_rank].add(src_rank)
        self._neighbors_in = {r: tuple(sorted(s)) for r, s in ins.items()}
        self._neighbors_out = {r: tuple(sorted(s)) for r, s in outs.items()}

    def __len__(self) -> int:
        return len(self.partitions)

    @property
    def min_lookahead_ms(self) -> float:
        """The global safety margin: min over all channel lookaheads."""
        if not self.lookahead_ms:
            return float("inf")
        return min(self.lookahead_ms.values())

    def partition_of(self, node: str) -> Partition:
        return self.partitions[self.rank_of[node]]

    def in_neighbors(self, rank: int) -> Tuple[int, ...]:
        """Ranks with a channel *into* ``rank`` (sorted)."""
        return self._neighbors_in[rank]

    def out_neighbors(self, rank: int) -> Tuple[int, ...]:
        """Ranks ``rank`` has a channel *to* (sorted)."""
        return self._neighbors_out[rank]

    def cut_links_from(self, rank: int) -> Tuple[CutLink, ...]:
        return tuple(c for c in self.cuts if c.src_rank == rank)

    def subnetwork(self, network: Any, rank: int) -> Any:
        """A fresh :class:`~repro.network.topology.Network` holding only
        this partition's nodes and its fully internal links."""
        from ...network.topology import Network

        part = self.partitions[rank]
        members = set(part.nodes)
        sub = Network()
        for name in part.nodes:
            info = network.node(name)
            sub.add_node(name, info.cpu_capacity, dict(info.credentials))
        for link in network.links():
            if link.a in members and link.b in members:
                sub.add_link(
                    link.a,
                    link.b,
                    link.latency_ms,
                    link.bandwidth_mbps,
                    link.secure,
                    dict(link.credentials),
                )
        return sub

    def describe(self) -> List[str]:
        """Human-readable plan summary, one line per partition."""
        lines = [f"method={self.method} min_lookahead={self.min_lookahead_ms}ms"]
        for p in self.partitions:
            out = ", ".join(
                f"->{self.partitions[d].name}@{self.lookahead_ms[(p.rank, d)]}ms"
                for d in self.out_neighbors(p.rank)
            )
            lines.append(
                f"  [{p.rank}] {p.name}: {len(p.nodes)} nodes"
                + (f" ({out})" if out else "")
            )
        return lines


def _components(nodes: List[str], edges: List[Tuple[str, str]]) -> List[List[str]]:
    """Connected components (sorted inside and across, for determinism)."""
    adj: Dict[str, List[str]] = {n: [] for n in nodes}
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    seen: set = set()
    comps: List[List[str]] = []
    for start in sorted(nodes):
        if start in seen:
            continue
        stack = [start]
        comp = []
        seen.add(start)
        while stack:
            u = stack.pop()
            comp.append(u)
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        comps.append(sorted(comp))
    return sorted(comps, key=lambda c: c[0])


def _plan_from_groups(
    network: Any, groups: List[Tuple[str, List[str]]], method: str
) -> PartitionPlan:
    partitions = tuple(
        Partition(rank, name, tuple(sorted(nodes)))
        for rank, (name, nodes) in enumerate(groups)
    )
    rank_of = {n: p.rank for p in partitions for n in p.nodes}
    cuts: List[CutLink] = []
    lookahead: Dict[Tuple[int, int], float] = {}
    for link in network.links():
        ra, rb = rank_of[link.a], rank_of[link.b]
        if ra == rb:
            continue
        for src, dst, rs, rd in ((link.a, link.b, ra, rb), (link.b, link.a, rb, ra)):
            cuts.append(
                CutLink(src, dst, rs, rd, link.latency_ms, link.bandwidth_mbps)
            )
            key = (rs, rd)
            prev = lookahead.get(key)
            if prev is None or link.latency_ms < prev:
                lookahead[key] = link.latency_ms
    cuts.sort(key=lambda c: (c.src_rank, c.dst_rank, c.src, c.dst))
    return PartitionPlan(partitions, rank_of, tuple(cuts), lookahead, method)


def _single_partition(network: Any, method: str) -> PartitionPlan:
    nodes = sorted(network.node_names())
    return _plan_from_groups(network, [("all", nodes)], method)


def partition_network(
    network: Any,
    credential: str = "site",
    require_split: bool = False,
) -> PartitionPlan:
    """Partition ``network`` for conservative parallel execution.

    Tries the ``credential`` grouping first, then the latency min-cut
    (module docstring).  Splits whose cut links include a zero-latency
    edge are rejected — they would mean zero lookahead.  When no legal
    split exists the plan degenerates to a single partition unless
    ``require_split`` is set, in which case :class:`PartitionError`
    explains why.
    """
    names = sorted(network.node_names())
    if not names:
        raise PartitionError("cannot partition an empty network")

    def _validate(plan: PartitionPlan) -> Optional[PartitionPlan]:
        bad = [c for c in plan.cuts if c.latency_ms <= 0]
        if bad:
            return None
        return plan

    # Rule 1: group by credential when every node carries it.
    values = {}
    for name in names:
        cred = network.node(name).credentials.get(credential)
        if cred is None:
            values = None
            break
        values.setdefault(str(cred), []).append(name)
    if values is not None:
        groups = sorted(values.items())
        plan = _plan_from_groups(network, groups, f"credential:{credential}")
        checked = _validate(plan)
        if checked is not None:
            return checked
        if require_split:
            raise PartitionError(
                f"credential {credential!r} split has a zero-latency cut link "
                "(zero lookahead would deadlock the conservative protocol)"
            )
        return _single_partition(network, f"degenerate:{credential}-zero-cut")

    # Rule 2: min-cut over link latency.  Descending thresholds refine
    # the split monotonically (fewer fast edges -> more components):
    # keep the finest legal split without singleton partitions, falling
    # back to the coarsest legal split.  Non-positive thresholds are
    # skipped outright.
    latencies = sorted(
        {l.latency_ms for l in network.links() if l.latency_ms > 0}, reverse=True
    )
    coarsest: Optional[PartitionPlan] = None
    finest_clean: Optional[PartitionPlan] = None
    for threshold in latencies:
        fast_edges = [
            (l.a, l.b) for l in network.links() if l.latency_ms < threshold
        ]
        comps = _components(names, fast_edges)
        if len(comps) < 2:
            continue
        groups = [(f"part{idx}", comp) for idx, comp in enumerate(comps)]
        plan = _plan_from_groups(network, groups, f"min-cut:>={threshold:g}ms")
        checked = _validate(plan)
        if checked is None:
            continue
        if coarsest is None:
            coarsest = checked
        if all(len(c) > 1 for c in comps):
            finest_clean = checked  # later thresholds are finer still
    if finest_clean is not None:
        return finest_clean
    if coarsest is not None:
        return coarsest

    if require_split:
        raise PartitionError(
            "no legal split: every candidate cut includes a zero-latency link "
            f"and no node-complete {credential!r} credential exists"
        )
    return _single_partition(network, "degenerate:no-cut")
