"""Public entry point: partition, spawn workers, collect, summarize.

``run_parallel(..., workers=1)`` executes every logical process in the
calling process through the identical protocol (no multiprocessing), so
worker count is purely a *placement* decision: the partition plan, the
event keys, the channel lookaheads and the message sequence numbers are
all derived from the topology alone, which is what makes
``result.signature()`` identical across workers=1/2/4 — the property
the determinism tests pin.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..events import SimulationError
from .lp import LogicalProcess, PartitionContext
from .partition import PartitionPlan, partition_network
from .worker import DEADLOCK_TIMEOUT_S, InlineRouter, drive, worker_main

__all__ = ["ParallelRunResult", "run_parallel"]

#: how long the coordinator waits for any single worker's result.
RESULT_TIMEOUT_S = 300.0


@dataclass
class ParallelRunResult:
    """Outcome of one parallel run, mergeable and signable.

    ``partitions`` maps partition name to its logical process's result
    dict (clock, event count, program counters, latency samples — every
    observable outcome).  ``signature()`` hashes exactly those
    observables, *excluding* wall time, so equal signatures mean equal
    simulations.
    """

    workers_requested: int
    workers_used: int
    until_ms: float
    method: str
    min_lookahead_ms: float
    partitions: Dict[str, Dict[str, Any]]
    wall_s: float = 0.0

    @property
    def total_events(self) -> int:
        return sum(p["events"] for p in self.partitions.values())

    @property
    def events_per_sec(self) -> float:
        return self.total_events / self.wall_s if self.wall_s > 0 else 0.0

    def merged_counters(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for p in self.partitions.values():
            for key, val in p.get("counters", {}).items():
                out[key] = out.get(key, 0) + val
        return {k: out[k] for k in sorted(out)}

    def latency_samples(self) -> List[float]:
        """All end-to-end latency samples, ordered by partition name
        then by each partition's deterministic execution order."""
        samples: List[float] = []
        for name in sorted(self.partitions):
            samples.extend(self.partitions[name].get("latencies_ms", []))
        return samples

    def signature(self) -> str:
        """sha256 over the observable outcomes (never wall time)."""
        canonical = {
            "until_ms": self.until_ms,
            "method": self.method,
            "partitions": {
                name: self.partitions[name] for name in sorted(self.partitions)
            },
        }
        blob = json.dumps(canonical, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workers_requested": self.workers_requested,
            "workers_used": self.workers_used,
            "until_ms": self.until_ms,
            "method": self.method,
            "min_lookahead_ms": self.min_lookahead_ms,
            "total_events": self.total_events,
            "events_per_sec": round(self.events_per_sec, 1),
            "wall_s": round(self.wall_s, 4),
            "signature": self.signature(),
            "partitions": self.partitions,
        }


def _mp_context():
    """Prefer fork: workers warm-start by inheriting the parent image,
    so the topology/program ship for free.  Fall back to spawn where
    fork is unavailable (then everything must be picklable, which the
    public surface already requires)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_parallel(
    network: Any,
    program: Callable[[PartitionContext, Any], None],
    config: Any = None,
    *,
    workers: int = 1,
    until: float,
    plan: Optional[PartitionPlan] = None,
    credential: str = "site",
    deadlock_timeout_s: float = DEADLOCK_TIMEOUT_S,
) -> ParallelRunResult:
    """Run ``program`` over ``network`` on the conservative parallel
    kernel and return a :class:`ParallelRunResult`.

    ``program(ctx, config)`` is called once per partition at t=0 with
    that partition's :class:`PartitionContext`; it must be a module-level
    callable (workers may live in other processes) and fully seeded from
    ``config`` so runs are deterministic.  ``until`` is exclusive,
    exactly like ``Simulator.run``.  ``deadlock_timeout_s`` sets the
    per-worker no-progress tripwire (wall seconds); raise it for
    legitimately slow workloads.
    """
    if until is None or until <= 0:
        raise SimulationError(f"run_parallel needs a positive until, got {until!r}")
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if plan is None:
        plan = partition_network(network, credential=credential)
    n_parts = len(plan)
    n_workers = max(1, min(workers, n_parts))

    start = time.perf_counter()
    if n_workers == 1:
        lps = {
            rank: LogicalProcess(plan, rank, network, program, config, until)
            for rank in range(n_parts)
        }
        drive(lps, InlineRouter(lps), deadlock_timeout_s)
        results = {rank: lp.result() for rank, lp in lps.items()}
    else:
        results = _run_multiprocess(
            plan, network, program, config, until, n_workers,
            deadlock_timeout_s=deadlock_timeout_s,
        )
    wall = time.perf_counter() - start

    return ParallelRunResult(
        workers_requested=workers,
        workers_used=n_workers,
        until_ms=float(until),
        method=plan.method,
        min_lookahead_ms=plan.min_lookahead_ms,
        partitions={r["partition"]: r for r in results.values()},
        wall_s=wall,
    )


def _run_multiprocess(
    plan: PartitionPlan,
    network: Any,
    program: Callable,
    config: Any,
    until: float,
    n_workers: int,
    deadlock_timeout_s: float = DEADLOCK_TIMEOUT_S,
) -> Dict[int, Dict[str, Any]]:
    ctx = _mp_context()
    # Round-robin placement: partition rank r lives on worker r % N.
    # Placement is invisible to results — it only decides which channel
    # traffic crosses a process boundary versus staying in-process.
    worker_of = {rank: rank % n_workers for rank in range(len(plan))}
    ranks_of: Dict[int, List[int]] = {w: [] for w in range(n_workers)}
    for rank, w in worker_of.items():
        ranks_of[w].append(rank)

    inboxes = {w: ctx.Queue() for w in range(n_workers)}
    result_queue = ctx.Queue()
    procs = []
    for w in range(n_workers):
        peer_inboxes = {pw: q for pw, q in inboxes.items() if pw != w}
        proc = ctx.Process(
            target=worker_main,
            args=(
                w, ranks_of[w], plan, network, program, config, until,
                worker_of, inboxes[w], peer_inboxes, result_queue,
                deadlock_timeout_s,
            ),
            name=f"pdes-worker-{w}",
            daemon=True,
        )
        proc.start()
        procs.append(proc)

    results: Dict[int, Dict[str, Any]] = {}
    failure: Optional[str] = None
    try:
        for _ in range(n_workers):
            worker_id, status, payload = result_queue.get(timeout=RESULT_TIMEOUT_S)
            if status == "error":
                failure = f"worker {worker_id} failed:\n{payload}"
                break
            results.update(payload)
    except Exception as exc:  # queue.Empty or a dead coordinator pipe
        failure = f"coordinator timed out collecting results: {exc!r}"
    finally:
        if failure is not None:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
        for proc in procs:
            proc.join(timeout=30.0)
    if failure is not None:
        raise SimulationError(failure)
    return results
