"""Logical processes: one partition, one ordinary :class:`Simulator`.

A :class:`LogicalProcess` wraps the existing sequential kernel — fast
path, event heap, resources, all of it unchanged — and adds only the
conservative synchronization state around it:

- per in-channel **guarantees** (largest sender clock seen, from real
  messages and :class:`~repro.sim.parallel.channel.Advert` nulls),
- the **safe horizon** ``min(guarantee + lookahead)`` bounding how far
  ``advance()`` may run,
- an **ingress heap** of not-yet-injected remote messages, merged into
  the kernel heap under the sender's ``(origin, seq)`` key so the
  execution order is a property of the *plan*, never of OS scheduling.

Programs see a :class:`PartitionContext`: the materialized sub-topology
plus ``send_remote`` / ``on_message`` primitives that route traffic
through sender-side half-links and the timestamped channels.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ...network.topology import _link_key
from ...obs import NULL_OBS
from ..engine import Simulator
from ..events import Event, Injected, SimulationError
from ..transport import SimHalfLink
from .channel import Advert, RemoteMessage
from .partition import PartitionPlan

__all__ = ["LogicalProcess", "PartitionContext"]


class PartitionContext:
    """What a partition program is handed: its slice of the world.

    ``nodes``/``links`` are live simulation objects for this partition
    only; ``plan`` and ``full_network`` expose the global (static)
    structure for routing decisions.  All cross-partition communication
    goes through :meth:`send_remote`, which serializes on the local
    half-link and posts a timestamped message into the destination
    channel.
    """

    def __init__(self, lp: "LogicalProcess", subnetwork: Any) -> None:
        self._lp = lp
        self.sim: Simulator = lp.sim
        self.rank: int = lp.rank
        self.plan: PartitionPlan = lp.plan
        self.partition = lp.plan.partitions[lp.rank]
        self.network = subnetwork
        self.full_network = lp.full_network
        self.nodes, self.links = subnetwork.materialize(lp.sim)
        self.local_nodes: Tuple[str, ...] = self.partition.nodes
        self.remote_nodes: Tuple[str, ...] = tuple(
            sorted(set(lp.full_network.node_names()) - set(self.partition.nodes))
        )
        #: sender-side halves of this partition's outgoing cut links.
        self.half_links: Dict[Tuple[str, str], SimHalfLink] = {
            (cut.src, cut.dst): SimHalfLink(
                lp.sim, cut.src, cut.dst, cut.latency_ms, cut.bandwidth_mbps
            )
            for cut in lp.plan.cut_links_from(lp.rank)
        }
        self._handlers: Dict[str, Callable[["PartitionContext", RemoteMessage], None]] = {}
        #: program-level counters; merged into the run signature.
        self.stats: Dict[str, float] = {}
        #: end-to-end latency samples, in execution order (deterministic).
        self.latencies_ms: List[float] = []

    # -- program surface -------------------------------------------------
    def is_local(self, node: str) -> bool:
        return self.plan.rank_of[node] == self.rank

    def process(self, generator: Generator[Event, Any, Any], name: Optional[str] = None):
        return self.sim.process(generator, name=name)

    def on_message(
        self, kind: str, handler: Callable[["PartitionContext", RemoteMessage], None]
    ) -> None:
        """Register ``handler(ctx, msg)`` for ingress messages of ``kind``."""
        self._handlers[kind] = handler

    def count(self, key: str, n: float = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + n

    def record_latency(self, ms: float) -> None:
        self.latencies_ms.append(ms)

    def transfer_local(
        self, src: str, dst: str, size_bytes: int
    ) -> Generator[Event, Any, None]:
        """Process generator: hop-by-hop transfer entirely inside this
        partition (both endpoints local)."""
        path = self.network.path(src, dst)
        cur = src
        for hop in path.hops:
            link = self.links[_link_key(hop.a, hop.b)]
            yield from link.transfer(cur, size_bytes)
            cur = hop.b if cur == hop.a else hop.a

    def send_remote(
        self, src: str, dest: str, size_bytes: int, kind: str, payload: Any
    ) -> Generator[Event, Any, None]:
        """Process generator: carry ``payload`` from local ``src`` toward
        remote ``dest``.

        Local hops to the boundary run on ordinary links; the cut hop
        serializes on this side's half-link, then the message is posted
        into the channel with delivery time ``now + latency``.  When
        ``dest`` is beyond the neighbor partition the message enters at
        the boundary node and the receiving program relays it onward
        (hop-by-hop, exactly how the gateways forward site traffic).
        """
        exit_node, entry_node, dst_rank = self._remote_route(src, dest)
        if exit_node != src:
            yield from self.transfer_local(src, exit_node, size_bytes)
        half = self.half_links[(exit_node, entry_node)]
        yield from half.transmit(size_bytes)
        self._lp.post(
            dst_rank,
            when=self.sim.now + half.latency_ms,
            dest=dest,
            via=entry_node,
            kind=kind,
            payload=payload,
            size=size_bytes,
        )

    def _remote_route(self, src: str, dest: str) -> Tuple[str, str, int]:
        """``(exit_node, entry_node, next_rank)`` for the first partition
        boundary on the lowest-latency path from ``src`` to ``dest``."""
        path = self.full_network.path(src, dest)
        cur = src
        for hop in path.hops:
            nxt = hop.b if cur == hop.a else hop.a
            if self.plan.rank_of[nxt] != self.rank:
                return cur, nxt, self.plan.rank_of[nxt]
            cur = nxt
        raise SimulationError(f"{dest!r} is local to partition {self.rank}; "
                              "use transfer_local")

    # -- ingress dispatch -------------------------------------------------
    def _dispatch(self, msg: RemoteMessage) -> None:
        handler = self._handlers.get(msg.kind)
        if handler is None:
            raise SimulationError(
                f"partition {self.rank} has no handler for message kind "
                f"{msg.kind!r} (register one with on_message)"
            )
        handler(self, msg)

    def stats_snapshot(self) -> Dict[str, Any]:
        return {
            "counters": {k: self.stats[k] for k in sorted(self.stats)},
            "latencies_ms": list(self.latencies_ms),
        }


class LogicalProcess:
    """One partition's simulator plus its conservative sync state."""

    def __init__(
        self,
        plan: PartitionPlan,
        rank: int,
        network: Any,
        program: Callable[[PartitionContext, Any], None],
        config: Any,
        until: float,
    ) -> None:
        self.plan = plan
        self.rank = rank
        self.until = float(until)
        self.full_network = network
        # NULL_OBS keeps every worker on the fast-path dispatch loop;
        # parallel runs are about throughput, not tracing.
        self.sim = Simulator(obs=NULL_OBS, origin=rank)
        #: largest sender clock seen per in-channel (messages + adverts).
        self._guarantee: Dict[int, float] = {
            p: 0.0 for p in plan.in_neighbors(rank)
        }
        #: remote messages received but not yet merged into the kernel heap.
        self._ingress: List[Tuple[float, int, int, RemoteMessage]] = []
        self._outgoing: List[Tuple[int, RemoteMessage]] = []
        self._msg_seq = 0
        self._msgs_in = 0
        self._last_advert = float("-inf")
        self.ctx = PartitionContext(self, plan.subnetwork(network, rank))
        program(self.ctx, config)

    # -- channel ingress --------------------------------------------------
    def observe_message(self, msg: RemoteMessage) -> None:
        g = self._guarantee.get(msg.origin, 0.0)
        if msg.clock > g:
            self._guarantee[msg.origin] = msg.clock
        heapq.heappush(self._ingress, (msg.when, msg.origin, msg.seq, msg))
        self._msgs_in += 1

    def observe_advert(self, advert: Advert) -> None:
        if advert.clock > self._guarantee.get(advert.origin, 0.0):
            self._guarantee[advert.origin] = advert.clock

    # -- channel egress ---------------------------------------------------
    def post(
        self,
        dst_rank: int,
        when: float,
        dest: str,
        via: str,
        kind: str,
        payload: Any,
        size: int,
    ) -> None:
        self._msg_seq += 1
        self._outgoing.append(
            (
                dst_rank,
                RemoteMessage(
                    when, self.rank, self._msg_seq, dest, via, kind,
                    payload, self.sim.now, size,
                ),
            )
        )

    def take_outgoing(self) -> List[Tuple[int, RemoteMessage]]:
        out, self._outgoing = self._outgoing, []
        return out

    # -- conservative horizon ---------------------------------------------
    def _channel_bound(self) -> float:
        """Unclamped safe horizon from the in-channel guarantees."""
        if not self._guarantee:
            return float("inf")
        look = self.plan.lookahead_ms
        return min(
            clock + look[(p, self.rank)] for p, clock in self._guarantee.items()
        )

    def horizon(self) -> float:
        return min(self._channel_bound(), self.until)

    def advance(self) -> bool:
        """Inject safe ingress and run the kernel up to the horizon.

        Returns True when anything moved (clock, events, or injections)
        so the driver can detect quiescence.
        """
        bound = self.horizon()
        before = (self.sim.now, self.sim._seq, len(self._ingress))
        while self._ingress and self._ingress[0][0] < bound:
            when, origin, seq, msg = heapq.heappop(self._ingress)
            ev = Injected(self.sim, msg)
            ev.add_callback(self._deliver)
            self.sim.schedule_external(when, origin, seq, ev)
        if bound > self.sim.now or self.sim.peek() < bound:
            self.sim.run(until=bound)
        return (self.sim.now, self.sim._seq, len(self._ingress)) != before

    def _deliver(self, ev: Event) -> None:
        self.ctx._dispatch(ev.payload)

    def advert(self) -> float:
        """Lower bound on this LP's future send clocks: nothing can run
        before the next local event, the next pending ingress message, or
        the channel bound — whichever is earliest."""
        ingress_next = self._ingress[0][0] if self._ingress else float("inf")
        return min(self.sim.peek(), ingress_next, self._channel_bound())

    def take_advert(self) -> Optional[Advert]:
        """The advert to flush this round, or None when it hasn't grown.
        Sending only strictly increasing adverts keeps null-message
        traffic at O(horizon / lookahead) per channel."""
        clock = self.advert()
        if clock <= self._last_advert:
            return None
        self._last_advert = clock
        return Advert(self.rank, clock)

    def done(self) -> bool:
        return self.sim.now >= self.until and self.horizon() >= self.until

    # -- results -----------------------------------------------------------
    def result(self) -> Dict[str, Any]:
        return {
            "partition": self.plan.partitions[self.rank].name,
            "rank": self.rank,
            "clock_ms": self.sim.now,
            "events": self.sim._seq,
            "messages_out": self._msg_seq,
            "messages_in": self._msgs_in,
            **self.ctx.stats_snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LogicalProcess rank={self.rank} t={self.sim.now} "
            f"horizon={self.horizon()}>"
        )
