"""The discrete-event simulation kernel.

:class:`Simulator` owns the event list (a binary heap keyed on
``(time, origin, seq)`` — a *total* deterministic order: equal-time
events run in schedule order within one origin, and events merged in
from other partitions of a parallel run (see
:mod:`repro.sim.parallel`) sort by their origin partition id and the
sender's own sequence number, so the merge order never depends on OS
message arrival order) and the simulated clock.  Sequential simulators
all use origin 0, which reduces the key to the classic ``(time, seq)``
schedule order.  All framework time is in **milliseconds** — the unit
of the paper's Figure 7.

This replaces the paper's physical testbed (Pentium III nodes + a Click
software router doing traffic shaping): simulated links impose latency
and bandwidth serialization, simulated nodes impose CPU service times,
and the clock is virtual, so experiments are fast and exactly
reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from ..obs import Observability, resolve_obs
from .events import AllOf, AnyOf, Event, SimulationError, Timeout
from .process import Process

__all__ = ["Simulator"]


class Simulator:
    """Event-list simulator with generator-process support.

    Typical use::

        sim = Simulator()
        sim.process(my_generator(sim))
        sim.run(until=10_000.0)

    Observability: the simulator binds its virtual clock to the
    tracer, so every span opened while this simulator exists records a
    simulated duration alongside its wall-clock one.  With
    ``obs.capture_sim_events`` set, each dispatched event additionally
    emits a ``sim.dispatch`` point event through the tracer — the
    successor of the legacy ``trace`` list, which remains supported as
    a shim (assign a list to :attr:`trace` and dispatches are mirrored
    into it as ``(time, repr(event))`` tuples).
    """

    def __init__(
        self,
        obs: Optional[Observability] = None,
        fast_path: bool = True,
        origin: int = 0,
    ) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        #: partition id stamped into every locally scheduled heap key.
        #: 0 for sequential runs; the parallel layer gives each logical
        #: process its partition rank so merged event streams from
        #: different origins have a total, arrival-independent order.
        self._origin = int(origin)
        self._running = False
        self._trace: Optional[List[Tuple[float, str]]] = None
        self.obs = resolve_obs(obs)
        if self.obs.tracer.enabled:
            self.obs.tracer.bind_sim_clock(lambda: self._now)
        # Dispatch-loop metric handles, resolved once: the step() loop
        # is the hottest path in the repository.
        self._evt_counter = (
            self.obs.metrics.counter("sim.events_dispatched")
            if self.obs.metrics.enabled
            else None
        )
        self._capture_events = (
            self.obs.capture_sim_events and self.obs.tracer.enabled
        )
        #: constructor knob: False pins run()/run_until_complete() to the
        #: fully instrumented step() loop even when nothing observes it.
        self._fast_path_allowed = fast_path
        self._refresh_fast_path()

    def _refresh_fast_path(self) -> None:
        """Select the dispatch loop once, the way __init__ resolves
        metric handles: the tight loop is only legal when no per-event
        observer (legacy trace list, event counter, sim.dispatch
        capture) needs a hook inside it."""
        self._fast = (
            self._fast_path_allowed
            and self._trace is None
            and self._evt_counter is None
            and not self._capture_events
        )

    # -- legacy trace shim -------------------------------------------------
    @property
    def trace(self) -> Optional[List[Tuple[float, str]]]:
        """Legacy dispatch log: ``(time, repr(event))`` per step.

        Superseded by the tracer (see class docstring); assigning a
        list here still works and mirrors exactly what the tracer's
        ``sim.dispatch`` events carry.
        """
        return self._trace

    @trace.setter
    def trace(self, value: Optional[List[Tuple[float, str]]]) -> None:
        self._trace = value
        self._refresh_fast_path()

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event, triggered manually by the caller."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start ``generator`` as a process at the current time."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: triggers when any child triggers."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: triggers when every child has triggered."""
        return AllOf(self, list(events))

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run plain callable ``fn`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        ev = Event(self)
        ev.add_callback(lambda _e: fn())
        ev._triggered = True
        self._schedule(when, ev)
        return ev

    def call_after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run plain callable ``fn`` after ``delay`` ms."""
        return self.call_at(self._now + delay, fn)

    # -- kernel -------------------------------------------------------------
    def _schedule(self, when: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._origin, self._seq, event))

    def schedule_external(
        self, when: float, origin: int, seq: int, event: Event
    ) -> None:
        """Merge an event from another partition into the event list.

        ``(origin, seq)`` is the *sender's* identity and per-origin
        sequence number, which keeps the heap key total and reproducible
        across worker counts.  The caller (the parallel layer's ingress
        path) guarantees ``origin`` differs from this simulator's own
        origin, so external keys can never collide with local ones.
        """
        if when < self._now:
            raise SimulationError(
                f"causality violation: external event at {when} < now {self._now}"
            )
        heapq.heappush(self._heap, (when, origin, seq, event))

    def _queue_event(self, event: Event) -> None:
        """Queue an already-triggered event for callback dispatch *now*."""
        self._schedule(self._now, event)

    def _dispatch(self, event: Event) -> None:
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for fn in callbacks:
                fn(event)

    def step(self) -> float:
        """Process one event; returns its timestamp."""
        when, _origin, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event list corrupted: time went backwards")
        self._now = when
        if self._trace is not None or self._capture_events:
            label = repr(event)
            if self._trace is not None:
                self._trace.append((when, label))
            if self._capture_events:
                self.obs.tracer.event("sim.dispatch", event=label)
        if self._evt_counter is not None:
            self._evt_counter.inc()
        self._dispatch(event)
        return when

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event list drains or the clock passes ``until``.

        Returns the final simulated time.  ``until`` is exclusive: an
        event stamped exactly at ``until`` does not run, and the clock is
        left at ``until``.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            if self._fast:
                # Tight-loop variant of the while-step() below: same pop,
                # same monotonicity check, same dispatch — minus the
                # per-event method call and observer branches, which the
                # constructor established nobody is watching.
                heap = self._heap
                pop = heapq.heappop
                while heap:
                    if until is not None and heap[0][0] >= until:
                        self._now = until
                        break
                    when, _origin, _seq, event = pop(heap)
                    if when < self._now:
                        raise SimulationError(
                            "event list corrupted: time went backwards"
                        )
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    if callbacks:
                        for fn in callbacks:
                            fn(event)
                else:
                    if until is not None and until > self._now:
                        self._now = until
                return self._now
            while self._heap:
                if until is not None and self._heap[0][0] >= until:
                    self._now = until
                    break
                self.step()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_until_complete(self, proc: Process, limit: float = float("inf")) -> Any:
        """Run until ``proc`` finishes; return its value (raise if it failed).

        A failing process re-raises its exception annotated with the
        process name and the simulated time of the failure — without
        this, a chaos-test stack trace says *what* broke but not *who*
        or *when* on the virtual clock.
        """
        if self._fast:
            heap = self._heap
            pop = heapq.heappop
            while not proc.triggered:
                if not heap:
                    raise SimulationError(
                        f"deadlock: event list empty but {proc!r} not finished"
                    )
                if heap[0][0] > limit:
                    raise SimulationError(
                        f"time limit {limit} exceeded waiting on {proc!r}"
                    )
                when, _origin, _seq, event = pop(heap)
                if when < self._now:
                    raise SimulationError(
                        "event list corrupted: time went backwards"
                    )
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for fn in callbacks:
                        fn(event)
        while not proc.triggered:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: event list empty but {proc!r} not finished"
                )
            if self._heap[0][0] > limit:
                raise SimulationError(f"time limit {limit} exceeded waiting on {proc!r}")
            self.step()
        if proc.failed:
            exc = proc.value
            failed_in = getattr(exc, "failed_process", proc.name)
            failed_at = getattr(exc, "failed_at_ms", self._now)
            note = f"in process {failed_in!r} at t={failed_at:.1f}ms"
            if hasattr(exc, "add_note"):  # Python >= 3.11
                exc.add_note(note)
            exc.sim_context = note  # type: ignore[attr-defined]
            raise exc
        return proc.value

    def peek(self) -> float:
        """Timestamp of the next event, or +inf if the list is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    # -- parallel execution -------------------------------------------------
    @classmethod
    def run_parallel(
        cls,
        network: Any,
        program: Callable[..., None],
        config: Any = None,
        *,
        workers: int = 1,
        until: float,
        plan: Any = None,
        credential: str = "site",
        deadlock_timeout_s: Optional[float] = None,
    ) -> Any:
        """Run ``program`` over ``network`` on the conservative parallel
        kernel (:mod:`repro.sim.parallel`): one logical process per
        topology partition, each hosting an ordinary :class:`Simulator`,
        synchronized by null-message lookahead.  ``workers=1`` runs every
        partition in this process (no multiprocessing) but through the
        same partitioned protocol, so results are identical for any
        worker count.  ``deadlock_timeout_s`` tunes the per-worker
        no-progress tripwire (default 60 wall seconds).  Returns a
        :class:`repro.sim.parallel.ParallelRunResult`.
        """
        from .parallel import run_parallel as _run_parallel

        kwargs: Dict[str, Any] = {}
        if deadlock_timeout_s is not None:
            kwargs["deadlock_timeout_s"] = deadlock_timeout_s
        return _run_parallel(
            network,
            program,
            config,
            workers=workers,
            until=until,
            plan=plan,
            credential=credential,
            **kwargs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now} pending={len(self._heap)}>"
