"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-list design: an :class:`Event` is a
one-shot occurrence with an optional value; callbacks registered on an
event fire when it triggers.  Generator-based processes (see
:mod:`repro.sim.process`) yield events to suspend until they trigger.

Events are deliberately tiny objects — the simulator's hot loop touches
millions of them in the larger benchmarks, so we use ``__slots__`` and
avoid any per-event allocation beyond the callback list.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Injected",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "FaultError",
    "NodeDownError",
    "LinkDownError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, running a dead sim...)."""


class FaultError(SimulationError):
    """A simulated infrastructure fault interfered with an operation.

    Base class for the errors the fault-injection layer introduces;
    transport stubs treat these like network errors (a failure the
    caller may retry), never as kernel bugs.
    """


class NodeDownError(FaultError):
    """The target (or executing) node is crashed."""


class LinkDownError(FaultError):
    """The traversed link is partitioned."""


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*; :meth:`succeed` (or :meth:`fail`) moves it
    to *triggered* exactly once, invoking each registered callback with
    the event itself.  Values are delivered through :attr:`value`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_triggered", "_failed")

    def __init__(self, sim: "Any") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._triggered = False
        self._failed = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has occurred (successfully or not)."""
        return self._triggered

    @property
    def failed(self) -> bool:
        """True if the event was triggered via :meth:`fail`."""
        return self._failed

    @property
    def value(self) -> Any:
        """The payload delivered at trigger time (exception if failed)."""
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._queue_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as a failure carrying exception ``exc``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._failed = True
        self._value = exc
        self.sim._queue_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers.

        If the event already ran its callbacks, ``fn`` fires on the next
        kernel step rather than being silently dropped.
        """
        if self.callbacks is None:
            # Already dispatched: schedule an immediate wake-up.
            self.sim.call_at(self.sim.now, lambda: fn(self))
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={getattr(self.sim, 'now', '?')}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: Any, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True  # scheduled immediately, fires later
        self._value = value
        sim._schedule(sim.now + delay, self)


class Injected(Event):
    """An event merged in from outside this simulator's timeline.

    The parallel kernel's ingress path wraps each cross-partition
    message in one of these: it is created already *triggered* (like a
    :class:`Timeout`) and pushed onto the heap via
    ``Simulator.schedule_external`` under the sender's ``(origin, seq)``
    key, so the receiving partition dispatches it at exactly the
    timestamp and total-order position the sender stamped.  ``payload``
    carries the raw cross-partition message.
    """

    __slots__ = ("payload",)

    def __init__(self, sim: Any, payload: Any = None) -> None:
        super().__init__(sim)
        self.payload = payload
        self._triggered = True  # dispatched when its heap key surfaces


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_n_needed", "_n_done")

    def __init__(self, sim: Any, events: List[Event], n_needed: int) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._n_needed = n_needed
        self._n_done = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev.failed:
            self.fail(ev.value)
            return
        self._n_done += 1
        if self._n_done >= self._n_needed:
            self.succeed([e.value for e in self.events if e.triggered])


class AnyOf(_Condition):
    """Triggers when any one of ``events`` triggers."""

    __slots__ = ()

    def __init__(self, sim: Any, events: List[Event]) -> None:
        super().__init__(sim, events, n_needed=1)


class AllOf(_Condition):
    """Triggers when all of ``events`` have triggered."""

    __slots__ = ()

    def __init__(self, sim: Any, events: List[Event]) -> None:
        super().__init__(sim, events, n_needed=len(events))
