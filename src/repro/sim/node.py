"""Simulated compute nodes.

A :class:`SimNode` models the Pentium III hosts of the paper's testbed:
a CPU with a capacity in *work units per second* and a FIFO run queue.
Components installed on a node charge their per-request CPU cost here,
so an overloaded node shows up as queueing delay — which is what the
planner's condition 3 (load vs. capacity) is protecting against.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from .engine import Simulator
from .events import Event, NodeDownError
from .resources import Monitor, Resource

__all__ = ["SimNode"]


class SimNode:
    """A host in the simulated network.

    ``cpu_capacity`` is expressed in work-units/second; executing a job of
    ``cpu_work`` units takes ``cpu_work / cpu_capacity`` seconds of
    exclusive CPU.  ``credentials`` carries application-independent facts
    about the node (site, trust domain) that the credential-translation
    layer maps into service properties.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu_capacity: float = 1000.0,
        credentials: Optional[Dict[str, Any]] = None,
        cores: int = 1,
    ) -> None:
        if cpu_capacity <= 0:
            raise ValueError(f"cpu_capacity must be positive, got {cpu_capacity}")
        self.sim = sim
        self.name = name
        self.cpu_capacity = cpu_capacity
        self.credentials = dict(credentials or {})
        self.cpu = Resource(sim, capacity=cores)
        self.stats = Monitor(f"node:{name}")
        #: components installed here by the runtime, keyed by instance id.
        self.installed: Dict[str, Any] = {}
        #: liveness flag: a crashed node refuses CPU work and deliveries.
        self.up = True
        #: sim time of the most recent crash (None while healthy);
        #: recovery metrics are measured from this instant.
        self.crashed_at_ms: Optional[float] = None
        self.crashes = 0

    def crash(self) -> None:
        """Fail-stop the node: volatile state is lost, work is refused.

        Components installed here stop serving immediately (any job in
        flight across the crash instant fails on its next resume); the
        runtime-level registries are reconciled later, by failover —
        the directory's view of this node is *supposed* to go stale
        until a failure detector notices.
        """
        if not self.up:
            return
        self.up = False
        self.crashed_at_ms = self.sim.now
        self.crashes += 1
        self.installed.clear()

    def restart(self) -> None:
        """Bring the node back, empty: installed state did not survive."""
        if self.up:
            return
        self.up = True
        self.crashed_at_ms = None

    def service_time_ms(self, cpu_work: float) -> float:
        """Exclusive-CPU time, in ms, for a job of ``cpu_work`` units."""
        if cpu_work < 0:
            raise ValueError(f"negative cpu work: {cpu_work}")
        return cpu_work / self.cpu_capacity * 1e3

    def execute(self, cpu_work: float) -> Generator[Event, Any, None]:
        """Process generator: queue for the CPU, hold it, release it.

        Raises :class:`NodeDownError` if the node is crashed — checked
        both on entry and after the service time elapses, so a crash
        mid-execution kills the job rather than letting it complete on
        a dead host.
        """
        if not self.up:
            raise NodeDownError(f"node {self.name} is down")
        start = self.sim.now
        yield self.cpu.request()
        try:
            yield self.sim.timeout(self.service_time_ms(cpu_work))
        finally:
            self.cpu.release()
        if not self.up:
            raise NodeDownError(f"node {self.name} crashed during execution")
        self.stats.observe(self.sim.now - start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimNode {self.name} cap={self.cpu_capacity} installed={len(self.installed)}>"
