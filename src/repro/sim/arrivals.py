"""Open-loop arrival processes as first-class event sources.

The scripted workloads are *closed-loop*: each client issues its next
operation only after the previous one completes, so offered load can
never exceed service capacity and the system never saturates.  Real
flash crowds are *open-loop* — arrivals keep coming at the environment's
rate whether or not the service keeps up — which is the regime where
admission control and load shedding decide between a slow service and a
dead one.

An :class:`ArrivalProcess` is a seeded, deterministic source of arrival
instants.  :meth:`ArrivalProcess.drive` pumps it through the simulator
one event per arrival (the next arrival is scheduled only when the
current one fires, so a 100k-arrival storm costs one pending event, not
100k heap entries up front).

Non-homogeneous processes (:class:`DiurnalProcess`,
:class:`FlashCrowdProcess`) generate by Lewis-Shedler thinning: draw
candidate gaps from a homogeneous Poisson process at the peak rate and
accept each candidate with probability ``rate(t)/peak``.  The same seed
therefore reproduces the same arrival instants exactly, independent of
what the rest of the simulation does.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Iterator, Optional

from .engine import Simulator

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "DiurnalProcess",
    "FlashCrowdProcess",
    "ArrivalStream",
]


class ArrivalStream:
    """Handle for one live :meth:`ArrivalProcess.drive` pump."""

    __slots__ = ("count", "exhausted")

    def __init__(self) -> None:
        #: arrivals fired so far
        self.count = 0
        #: True once the pump stopped (horizon or limit reached)
        self.exhausted = False


class ArrivalProcess:
    """Seeded source of arrival instants (subclasses define the rate)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    # -- rate function -------------------------------------------------------
    def rate_at(self, t_ms: float) -> float:
        """Instantaneous arrival rate (arrivals/second) at offset ``t_ms``
        from the start of the stream."""
        raise NotImplementedError

    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate_at` over the whole stream (the
        thinning envelope)."""
        raise NotImplementedError

    # -- generation ----------------------------------------------------------
    def offsets_ms(self) -> Iterator[float]:
        """Infinite iterator of arrival offsets (ms from stream start).

        A fresh iterator restarts the seeded RNG, so two iterations of
        the same process yield identical instants.
        """
        rng = random.Random(f"{type(self).__name__}:{self.seed}")
        lam_max = self.peak_rate()
        if lam_max <= 0:
            return
        t = 0.0
        while True:
            # candidate gap from the homogeneous envelope, then thin
            t += rng.expovariate(lam_max) * 1000.0
            if rng.random() * lam_max <= self.rate_at(t):
                yield t

    def expected_arrivals(self, duration_ms: float, step_ms: float = 50.0) -> float:
        """Numeric integral of the rate over ``[0, duration_ms]``."""
        steps = max(1, int(duration_ms / step_ms))
        dt = duration_ms / steps
        total = 0.0
        for i in range(steps):
            total += self.rate_at((i + 0.5) * dt) * dt / 1000.0
        return total

    def drive(
        self,
        sim: Simulator,
        fn: Callable[[float], None],
        duration_ms: float,
        limit: Optional[int] = None,
    ) -> ArrivalStream:
        """Pump arrivals through ``sim``: call ``fn(t_abs_ms)`` at every
        arrival instant within ``duration_ms`` of now.

        One simulator event exists per *pending* arrival — the next one
        is armed from the current one's callback — so arbitrarily long
        storms stay O(1) in heap space.  Returns a live
        :class:`ArrivalStream` whose ``count`` grows as arrivals fire.
        """
        stream = ArrivalStream()
        gen = self.offsets_ms()
        t0 = sim.now

        def _arm() -> None:
            if limit is not None and stream.count >= limit:
                stream.exhausted = True
                return
            off = next(gen, None)
            if off is None or off > duration_ms:
                stream.exhausted = True
                return
            def _fire(_off: float = off) -> None:
                stream.count += 1
                fn(t0 + _off)
                _arm()
            sim.call_at(t0 + off, _fire)

        _arm()
        return stream


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_per_s``."""

    def __init__(self, rate_per_s: float, seed: int = 0) -> None:
        super().__init__(seed)
        if rate_per_s < 0:
            raise ValueError(f"rate must be >= 0, got {rate_per_s}")
        self.rate_per_s = float(rate_per_s)

    def rate_at(self, t_ms: float) -> float:
        return self.rate_per_s

    def peak_rate(self) -> float:
        return self.rate_per_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PoissonProcess {self.rate_per_s}/s seed={self.seed}>"


class DiurnalProcess(ArrivalProcess):
    """Sinusoidal day/night cycle between ``base`` and ``peak`` rates.

    ``rate(t) = base + (peak - base) * (1 - cos(2π (t+phase)/period)) / 2``
    — the stream starts at the trough by default (``phase_ms = 0``).
    """

    def __init__(
        self,
        base_rate_per_s: float,
        peak_rate_per_s: float,
        period_ms: float = 86_400_000.0,
        phase_ms: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if base_rate_per_s < 0 or peak_rate_per_s < base_rate_per_s:
            raise ValueError(
                f"need 0 <= base <= peak, got {base_rate_per_s}, {peak_rate_per_s}"
            )
        if period_ms <= 0:
            raise ValueError(f"period must be positive, got {period_ms}")
        self.base_rate_per_s = float(base_rate_per_s)
        self.peak_rate_per_s = float(peak_rate_per_s)
        self.period_ms = float(period_ms)
        self.phase_ms = float(phase_ms)

    def rate_at(self, t_ms: float) -> float:
        swing = self.peak_rate_per_s - self.base_rate_per_s
        x = 2.0 * math.pi * (t_ms + self.phase_ms) / self.period_ms
        return self.base_rate_per_s + swing * (1.0 - math.cos(x)) / 2.0

    def peak_rate(self) -> float:
        return self.peak_rate_per_s


class FlashCrowdProcess(ArrivalProcess):
    """A baseline rate with one superimposed flash crowd.

    The rate holds at ``base`` until ``at_ms``, ramps linearly to
    ``peak`` over ``ramp_ms``, holds the peak for ``hold_ms``, then
    decays linearly back to ``base`` over ``decay_ms`` — the classic
    news-event load shape that drives a service past saturation and
    back.
    """

    def __init__(
        self,
        base_rate_per_s: float,
        peak_rate_per_s: float,
        at_ms: float,
        ramp_ms: float = 2_000.0,
        hold_ms: float = 10_000.0,
        decay_ms: float = 5_000.0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if base_rate_per_s < 0 or peak_rate_per_s < base_rate_per_s:
            raise ValueError(
                f"need 0 <= base <= peak, got {base_rate_per_s}, {peak_rate_per_s}"
            )
        if min(at_ms, ramp_ms, hold_ms, decay_ms) < 0:
            raise ValueError("flash-crowd timings must be >= 0")
        self.base_rate_per_s = float(base_rate_per_s)
        self.peak_rate_per_s = float(peak_rate_per_s)
        self.at_ms = float(at_ms)
        self.ramp_ms = float(ramp_ms)
        self.hold_ms = float(hold_ms)
        self.decay_ms = float(decay_ms)

    def rate_at(self, t_ms: float) -> float:
        base, peak = self.base_rate_per_s, self.peak_rate_per_s
        t = t_ms - self.at_ms
        if t < 0:
            return base
        if t < self.ramp_ms:
            return base + (peak - base) * (t / self.ramp_ms)
        t -= self.ramp_ms
        if t < self.hold_ms:
            return peak
        t -= self.hold_ms
        if t < self.decay_ms:
            return peak - (peak - base) * (t / self.decay_ms)
        return base

    def peak_rate(self) -> float:
        return self.peak_rate_per_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlashCrowdProcess {self.base_rate_per_s}->{self.peak_rate_per_s}/s "
            f"at={self.at_ms}ms seed={self.seed}>"
        )
