"""Service properties: typed, semantics-free parameters (paper §3.1).

A property declares *only* a value domain — "the framework does not
assume any information about the semantics of a given property"; meaning
lives entirely in the service.  The paper's examples:

- ``Confidentiality``: Boolean, values T/F
- ``TrustLevel``: Interval, range (1, 5)
- ``User``: String

This module provides the domains, the :class:`PropertyDef` declaration,
the ``ANY`` wildcard used by modification rules and requirement matching,
deferred environment references (``Node.TrustLevel`` in the spec text),
and the small value algebra (:func:`satisfies`) the planner uses to match
required against implemented/derived values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional, Tuple

__all__ = [
    "ANY",
    "AnyValue",
    "EnvRef",
    "ValueRange",
    "OneOf",
    "Domain",
    "BooleanDomain",
    "IntervalDomain",
    "StringDomain",
    "EnumDomain",
    "NumberDomain",
    "PropertyDef",
    "SpecError",
    "satisfies",
    "parse_domain",
]


class SpecError(ValueError):
    """Malformed service specification."""


class AnyValue:
    """Singleton wildcard: matches every value (spelled ``ANY`` in specs)."""

    _instance: Optional["AnyValue"] = None

    def __new__(cls) -> "AnyValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"

    def __deepcopy__(self, memo: dict) -> "AnyValue":
        return self

    def __reduce__(self):
        return (AnyValue, ())


ANY = AnyValue()


@dataclass(frozen=True)
class EnvRef:
    """A deferred binding to an environment property.

    The paper writes ``Node.TrustLevel`` inside a view's ``Factors`` or
    ``Implements`` clauses: the concrete value is only known once the
    planner tentatively places the component on a node (or linkage on a
    path).  ``scope`` is ``"Node"`` or ``"Link"``.
    """

    scope: str
    prop: str

    def __post_init__(self) -> None:
        if self.scope not in ("Node", "Link"):
            raise SpecError(f"EnvRef scope must be Node or Link, got {self.scope!r}")

    def __repr__(self) -> str:
        return f"{self.scope}.{self.prop}"

    @classmethod
    def parse(cls, text: str) -> "EnvRef":
        scope, _, prop = text.partition(".")
        if not prop:
            raise SpecError(f"malformed environment reference {text!r}")
        return cls(scope, prop)


@dataclass(frozen=True)
class ValueRange:
    """Inclusive integer range, the spec's ``(lo, hi)`` notation."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise SpecError(f"empty range ({self.lo}, {self.hi})")

    def __contains__(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and self.lo <= value <= self.hi

    def __iter__(self):
        return iter(range(self.lo, self.hi + 1))

    def __repr__(self) -> str:
        return f"({self.lo},{self.hi})"


@dataclass(frozen=True)
class OneOf:
    """Finite value set for requirement matching (e.g. ``{2, 4}``)."""

    values: FrozenSet[Any]

    def __init__(self, values: Iterable[Any]) -> None:
        object.__setattr__(self, "values", frozenset(values))

    def __contains__(self, value: Any) -> bool:
        return value in self.values

    def __repr__(self) -> str:
        inner = ",".join(repr(v) for v in sorted(self.values, key=repr))
        return f"{{{inner}}}"


def satisfies(required: Any, actual: Any, mode: str = "exact") -> bool:
    """Does ``actual`` meet ``required``?

    - ``required is ANY`` matches everything (including absence=None);
    - ``actual is ANY`` matches everything: the provider is transparent /
      unconstrained for this property (e.g. an Encryptor passes whatever
      trust level its downstream provides);
    - a :class:`ValueRange`/:class:`OneOf` requirement matches by
      membership;
    - otherwise per ``mode``: ``"exact"`` equality, ``"at_least"``
      (``actual >= required``), or ``"at_most"`` (``actual <= required``).
      Ordered modes let a spec declare that e.g. ``TrustLevel = 4``
      required is satisfied by an implementation offering level 5 — the
      reading the paper's case study needs.  ``actual is None`` (property
      absent / not vouched for) only satisfies ``ANY``.
    """
    if required is ANY or actual is ANY:
        return True
    if actual is None:
        return False
    if isinstance(required, (ValueRange, OneOf)):
        return actual in required
    if mode == "at_least":
        return actual >= required
    if mode == "at_most":
        return actual <= required
    if mode != "exact":
        raise SpecError(f"unknown match mode {mode!r}")
    return required == actual


class Domain:
    """Base value domain.  Subclasses implement containment + parsing."""

    kind = "abstract"

    def contains(self, value: Any) -> bool:
        raise NotImplementedError

    def parse(self, text: str) -> Any:
        """Parse the spec's textual value form into a Python value."""
        raise NotImplementedError

    def validate(self, value: Any, prop: str = "?") -> Any:
        if value is ANY or isinstance(value, (EnvRef, ValueRange, OneOf)):
            return value
        if not self.contains(value):
            raise SpecError(f"value {value!r} outside domain of property {prop!r} ({self})")
        return value

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class BooleanDomain(Domain):
    """T/F values, stored as Python bools."""

    kind = "Boolean"

    def contains(self, value: Any) -> bool:
        return isinstance(value, bool)

    def parse(self, text: str) -> Any:
        t = text.strip()
        if t in ("T", "true", "True"):
            return True
        if t in ("F", "false", "False"):
            return False
        raise SpecError(f"not a Boolean literal: {text!r}")

    def __repr__(self) -> str:
        return "Boolean[T,F]"


class IntervalDomain(Domain):
    """Integers within an inclusive range (paper's ``Interval`` type)."""

    kind = "Interval"

    def __init__(self, lo: int, hi: int) -> None:
        if lo > hi:
            raise SpecError(f"empty interval ({lo}, {hi})")
        self.lo = lo
        self.hi = hi

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and self.lo <= value <= self.hi
        )

    def parse(self, text: str) -> Any:
        try:
            return int(text.strip())
        except ValueError:
            raise SpecError(f"not an integer literal: {text!r}") from None

    def __repr__(self) -> str:
        return f"Interval({self.lo},{self.hi})"


class NumberDomain(Domain):
    """Unbounded reals — used by QoS-style properties (frame rate...)."""

    kind = "Number"

    def contains(self, value: Any) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def parse(self, text: str) -> Any:
        try:
            return float(text.strip())
        except ValueError:
            raise SpecError(f"not a number literal: {text!r}") from None

    def __repr__(self) -> str:
        return "Number"


class StringDomain(Domain):
    """Arbitrary strings (paper's ``User`` property)."""

    kind = "String"

    def contains(self, value: Any) -> bool:
        return isinstance(value, str)

    def parse(self, text: str) -> Any:
        return text.strip()

    def __repr__(self) -> str:
        return "String"


class EnumDomain(Domain):
    """A declared finite set of string values."""

    kind = "Enum"

    def __init__(self, values: Iterable[str]) -> None:
        self.values = tuple(values)
        if not self.values:
            raise SpecError("enum domain needs at least one value")
        self._set = frozenset(self.values)

    def contains(self, value: Any) -> bool:
        return value in self._set

    def parse(self, text: str) -> Any:
        t = text.strip()
        if t not in self._set:
            raise SpecError(f"{t!r} not in enum {sorted(self._set)}")
        return t

    def __repr__(self) -> str:
        return f"Enum{sorted(self._set)}"


def parse_domain(type_name: str, values: Optional[str] = None, value_range: Optional[str] = None) -> Domain:
    """Build a domain from the spec's Type/Values/ValueRange fields."""
    t = type_name.strip().lower()
    if t == "boolean":
        return BooleanDomain()
    if t == "interval":
        if not value_range:
            raise SpecError("Interval property needs a ValueRange")
        rng = value_range.strip().lstrip("([").rstrip(")]")
        try:
            lo_s, hi_s = rng.split(",")
            return IntervalDomain(int(lo_s), int(hi_s))
        except ValueError:
            raise SpecError(f"malformed ValueRange {value_range!r}") from None
    if t == "string":
        return StringDomain()
    if t == "number":
        return NumberDomain()
    if t == "enum":
        if not values:
            raise SpecError("Enum property needs Values")
        return EnumDomain(v.strip() for v in values.split(","))
    raise SpecError(f"unknown property type {type_name!r}")


@dataclass
class PropertyDef:
    """Declaration of one service property.

    ``derived`` optionally computes the property from other properties —
    the paper notes "a property can be defined as a function of other
    properties".  The function receives a mapping of the other property
    values and returns this property's value.
    """

    name: str
    domain: Domain
    description: str = ""
    derived: Optional[Callable[[Dict[str, Any]], Any]] = None
    depends_on: Tuple[str, ...] = ()
    #: how requirements match implementations: "exact", "at_least", "at_most"
    match_mode: str = "exact"

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("property name must be non-empty")
        if self.derived is not None and not self.depends_on:
            raise SpecError(f"derived property {self.name!r} must list depends_on")
        if self.match_mode not in ("exact", "at_least", "at_most"):
            raise SpecError(
                f"property {self.name!r}: unknown match mode {self.match_mode!r}"
            )

    def validate(self, value: Any) -> Any:
        return self.domain.validate(value, self.name)

    def parse_value(self, text: str) -> Any:
        """Parse a spec literal, honoring ANY / Node.X / (lo,hi) / {a,b}."""
        t = text.strip()
        if t == "ANY":
            return ANY
        if "." in t and t.split(".", 1)[0] in ("Node", "Link"):
            return EnvRef.parse(t)
        if t.startswith("(") and t.endswith(")") and "," in t:
            try:
                lo_s, hi_s = t[1:-1].split(",")
                return ValueRange(int(lo_s), int(hi_s))
            except ValueError:
                pass  # fall through: not a range literal
        if t.startswith("{") and t.endswith("}"):
            return OneOf(self.domain.parse(v) for v in t[1:-1].split(","))
        return self.domain.parse(t)

    def evaluate_derived(self, others: Dict[str, Any]) -> Any:
        if self.derived is None:
            raise SpecError(f"property {self.name!r} is not derived")
        missing = [d for d in self.depends_on if d not in others]
        if missing:
            raise SpecError(f"derived property {self.name!r} missing inputs {missing}")
        return self.validate(self.derived(others))

    def __repr__(self) -> str:
        return f"<Property {self.name}: {self.domain!r}>"
