"""Component declarations: linkages, conditions, behaviors (paper §3.1).

A component ``Implements`` interfaces (with the property values it
generates) and ``Requires`` interfaces (with the property values it
demands of the server it links to).  ``Conditions`` gate installation on
the node environment; ``Behaviors`` quantify resource demands for the
planner's load model (condition 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .properties import ANY, EnvRef, OneOf, SpecError, ValueRange, satisfies

__all__ = [
    "InterfaceBinding",
    "Condition",
    "Behaviors",
    "ComponentDef",
    "resolve_env_refs",
]


def resolve_env_refs(props: Mapping[str, Any], node_env: Mapping[str, Any]) -> Dict[str, Any]:
    """Replace ``Node.X`` references with concrete environment values.

    Unresolvable references become ``None`` (property not vouched for),
    which fails any non-ANY requirement — the safe default.
    """
    out: Dict[str, Any] = {}
    for name, value in props.items():
        if isinstance(value, EnvRef):
            out[name] = node_env.get(value.prop)
        else:
            out[name] = value
    return out


@dataclass(frozen=True)
class InterfaceBinding:
    """An interface name plus property bindings.

    In an ``Implements`` clause the bindings are the values the component
    *generates* (possibly deferred via :class:`EnvRef`); in a
    ``Requires`` clause they are the values it *demands* (possibly
    relaxed via ``ANY``, a range, or a set).
    """

    interface: str
    properties: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.interface:
            raise SpecError("interface binding needs an interface name")
        object.__setattr__(self, "properties", dict(self.properties))

    def resolved(self, node_env: Mapping[str, Any]) -> Dict[str, Any]:
        return resolve_env_refs(self.properties, node_env)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.properties.items()))
        return f"<{self.interface} {inner}>"


@dataclass(frozen=True)
class Condition:
    """One installation condition: a property must satisfy a requirement.

    Examples from the paper: ``User = Alice``; ``Node.TrustLevel ∈ (1,3)``.
    The subject property is looked up in the *combined* environment the
    planner builds for a candidate node (credential-translated node
    properties merged with per-request context such as the client's
    ``User``).
    """

    prop: str
    requirement: Any  # exact value, ValueRange, OneOf, or ANY

    def evaluate(self, env: Mapping[str, Any]) -> bool:
        return satisfies(self.requirement, env.get(self.prop))

    def __repr__(self) -> str:
        return f"<Condition {self.prop} ~ {self.requirement!r}>"


@dataclass(frozen=True)
class Behaviors:
    """Resource-demand metrics (paper §3.1 'Behaviors').

    The four metrics the paper calls out, plus capacity:

    - ``cpu_per_request`` — work units consumed serving one request;
    - ``request_rate`` — requests/second this component *emits* when it
      is the workload source (clients);
    - ``bytes_per_request`` / ``bytes_per_response`` — average message
      sizes on the component's required linkages;
    - ``rrf`` — Request Reduction Factor: requests issued downstream per
      request served (a cache with 80% hit rate has RRF 0.2);
    - ``capacity`` — max requests/second the component can serve.
    """

    capacity: float = float("inf")
    cpu_per_request: float = 1.0
    request_rate: float = 0.0
    bytes_per_request: int = 512
    bytes_per_response: int = 2048
    rrf: float = 1.0
    #: size of the component's code bundle, for deployment-cost modeling
    code_size_bytes: int = 200_000

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SpecError("capacity must be positive")
        if self.cpu_per_request < 0 or self.request_rate < 0:
            raise SpecError("negative behavior metric")
        if not 0.0 <= self.rrf:
            raise SpecError(f"rrf must be non-negative, got {self.rrf}")
        if self.bytes_per_request < 0 or self.bytes_per_response < 0:
            raise SpecError("negative message size")
        if self.code_size_bytes < 0:
            raise SpecError("negative code size")


@dataclass
class ComponentDef:
    """One deployable component of a service.

    ``implements`` / ``requires`` express the linkage constraints;
    a 'client' component C1 can connect to a 'server' C2 only if C2
    implements an interface C1 requires, with compatible properties.
    """

    name: str
    implements: Tuple[InterfaceBinding, ...] = ()
    requires: Tuple[InterfaceBinding, ...] = ()
    conditions: Tuple[Condition, ...] = ()
    behaviors: Behaviors = field(default_factory=Behaviors)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("component name must be non-empty")
        self.implements = tuple(self.implements)
        self.requires = tuple(self.requires)
        self.conditions = tuple(self.conditions)

    # -- queries used by the planner --------------------------------------
    @property
    def is_view(self) -> bool:
        return False

    @property
    def is_terminal(self) -> bool:
        """True if the component requires nothing (linkage recursion stops)."""
        return not self.requires

    def implements_interface(self, interface: str) -> Optional[InterfaceBinding]:
        for b in self.implements:
            if b.interface == interface:
                return b
        return None

    def required_interfaces(self) -> List[str]:
        return [b.interface for b in self.requires]

    def installable_in(self, env: Mapping[str, Any]) -> bool:
        """Planner condition 1: every installation condition holds."""
        return all(c.evaluate(env) for c in self.conditions)

    def failing_conditions(self, env: Mapping[str, Any]) -> List[Condition]:
        return [c for c in self.conditions if not c.evaluate(env)]

    def __repr__(self) -> str:
        return f"<Component {self.name}>"
