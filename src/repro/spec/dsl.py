"""Parser for the paper's readable specification form (Figure 2).

The paper's service specifications "use an XML format; however, the
examples in this paper are written in a different form to improve
readability".  This module parses that readable form, e.g.::

    <Property>
    Name: TrustLevel
    Type: Interval
    ValueRange: (1,5)
    </Property>

    <Component>
    Name: MailClient
    <Linkages>
    <Implements>
    Name: ClientInterface
    Properties: Confidentiality = F, TrustLevel = 4
    </Implements>
    <Requires>
    Name: ServerInterface
    Properties: Confidentiality = T, TrustLevel = 4
    </Requires>
    </Linkages>
    <Conditions>
    Properties: User = Alice
    </Conditions>
    </Component>

    <PropertyModificationRule>
    Name: Confidentiality
    Rules:
    (In: T) x (Env: T) = (Out: T)
    (In: F) x (Env: ANY) = (Out: F)
    (In: ANY) x (Env: F) = (Out: F)
    </PropertyModificationRule>

Conditions accept ``=``, ``in`` and the paper's ``∈`` for range/set
membership.  The strict XML form lives in :mod:`repro.spec.xmlio`; both
produce identical :class:`~repro.spec.service.ServiceSpec` objects.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .components import Behaviors, ComponentDef, Condition, InterfaceBinding
from .interfaces import InterfaceDef
from .properties import ANY, EnvRef, PropertyDef, SpecError, ValueRange, parse_domain
from .rules import ModificationRule, PropertyModificationRule
from .service import ServiceSpec
from .views import ViewDef

__all__ = ["parse_service", "to_text", "ParseError"]


class ParseError(SpecError):
    """Malformed readable-form specification text."""


_TAG_OPEN = re.compile(r"^<([A-Za-z]+)>$")
_TAG_CLOSE = re.compile(r"^</([A-Za-z]+)>$")
_RULE_ROW = re.compile(
    r"^\(In:\s*(?P<in>[^)]*)\)\s*[x×*]\s*\(Env:\s*(?P<env>[^)]*)\)\s*=\s*\(Out:\s*(?P<out>[^)]*)\)$"
)


@dataclass
class Block:
    """One parsed ``<Tag> ... </Tag>`` region."""

    tag: str
    fields: Dict[str, List[str]] = field(default_factory=dict)
    children: List["Block"] = field(default_factory=list)
    #: raw non-field lines (rule rows live here)
    raw_lines: List[str] = field(default_factory=list)

    def one(self, key: str, default: Optional[str] = None) -> Optional[str]:
        vals = self.fields.get(key)
        if not vals:
            if default is not None:
                return default
            return None
        if len(vals) > 1:
            raise ParseError(f"<{self.tag}> has multiple {key!r} fields")
        return vals[0]

    def require(self, key: str) -> str:
        val = self.one(key)
        if val is None:
            raise ParseError(f"<{self.tag}> is missing required field {key!r}")
        return val

    def child_blocks(self, tag: str) -> List["Block"]:
        return [c for c in self.children if c.tag == tag]


def _logical_lines(text: str) -> List[str]:
    """Strip comments/blank lines and join ','-continued lines."""
    out: List[str] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if out and out[-1].endswith(","):
            out[-1] += " " + line
        else:
            out.append(line)
    return out


def _parse_blocks(lines: List[str], pos: int, closing: Optional[str]) -> Tuple[List[Block], int]:
    blocks: List[Block] = []
    while pos < len(lines):
        line = lines[pos]
        m_close = _TAG_CLOSE.match(line)
        if m_close:
            if closing is None or m_close.group(1) != closing:
                raise ParseError(f"unexpected closing tag {line!r}")
            return blocks, pos + 1
        m_open = _TAG_OPEN.match(line)
        if not m_open:
            raise ParseError(f"expected a <Tag>, got {line!r}")
        tag = m_open.group(1)
        block = Block(tag)
        pos += 1
        while pos < len(lines):
            line = lines[pos]
            if _TAG_CLOSE.match(line):
                m = _TAG_CLOSE.match(line)
                assert m is not None
                if m.group(1) != tag:
                    raise ParseError(
                        f"mismatched closing tag {line!r} inside <{tag}>"
                    )
                pos += 1
                break
            if _TAG_OPEN.match(line):
                children, pos = _parse_blocks(lines, pos, closing=None)
                # _parse_blocks with closing=None parses exactly one block
                block.children.extend(children)
                continue
            if ":" in line and not line.startswith("("):
                key, _, value = line.partition(":")
                block.fields.setdefault(key.strip(), []).append(value.strip())
            else:
                block.raw_lines.append(line)
            pos += 1
        else:
            raise ParseError(f"unterminated <{tag}>")
        blocks.append(block)
        if closing is None:
            return blocks, pos
    if closing is not None:
        raise ParseError(f"missing </{closing}>")
    return blocks, pos


def _split_top_level(text: str, sep: str = ",") -> List[str]:
    """Split on ``sep`` outside parentheses/braces."""
    parts: List[str] = []
    depth = 0
    cur: List[str] = []
    for ch in text:
        if ch in "({[":
            depth += 1
        elif ch in ")}]":
            depth -= 1
        if ch == sep and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


class _SpecBuilder:
    """Turns parsed blocks into a validated :class:`ServiceSpec`."""

    def __init__(self, name: str) -> None:
        self.spec = ServiceSpec(name=name)

    # -- value parsing ------------------------------------------------------
    def _parse_value(self, prop: str, text: str) -> Any:
        pdef = self.spec.properties.get(prop)
        if pdef is not None:
            return pdef.parse_value(text)
        # Unknown property (open environment namespace): best-effort.
        t = text.strip()
        if t == "ANY":
            return ANY
        if "." in t and t.split(".", 1)[0] in ("Node", "Link"):
            return EnvRef.parse(t)
        if t in ("T", "F"):
            return t == "T"
        if t.startswith("{") and t.endswith("}"):
            from .properties import OneOf

            return OneOf(
                self._parse_value(prop, v) for v in _split_top_level(t[1:-1])
            )
        if t.startswith("(") and t.endswith(")") and "," in t:
            parts = _split_top_level(t[1:-1])
            if len(parts) == 2:
                try:
                    return ValueRange(int(parts[0]), int(parts[1]))
                except ValueError:
                    pass
        try:
            return int(t)
        except ValueError:
            pass
        try:
            return float(t)
        except ValueError:
            pass
        return t

    def _parse_prop_assignments(self, text: str) -> Dict[str, Any]:
        """``Confidentiality = T, TrustLevel = 4`` -> bindings dict."""
        out: Dict[str, Any] = {}
        for part in _split_top_level(text):
            if not part:
                continue
            if "=" in part:
                key, _, val = part.partition("=")
                key = key.strip()
                out[key] = self._parse_value(key, val.strip())
            else:
                # Bare property name: required with any generated value.
                out[part.strip()] = ANY
        return out

    def _parse_conditions(self, text: str) -> List[Condition]:
        conds: List[Condition] = []
        for part in _split_top_level(text):
            if not part:
                continue
            m = re.match(r"^(?P<key>[\w.]+)\s*(?P<op>=|in|∈|2)\s*(?P<val>.+)$", part)
            # Note: the paper's PDF renders ∈ as '2' in one place; accept it.
            if not m:
                raise ParseError(f"malformed condition {part!r}")
            key = m.group("key")
            # `Node.TrustLevel` in a condition addresses the node
            # environment, which is where conditions are evaluated anyway.
            if key.startswith("Node."):
                key = key[len("Node."):]
            val_text = m.group("val").strip()
            op = m.group("op")
            if op in ("in", "∈", "2"):
                value = self._parse_membership(key, val_text)
            else:
                value = self._parse_value(key, val_text)
            conds.append(Condition(key, value))
        return conds

    def _parse_membership(self, prop: str, text: str) -> Any:
        t = text.strip()
        if t.startswith("(") and t.endswith(")"):
            lo_s, hi_s = _split_top_level(t[1:-1])
            return ValueRange(int(lo_s), int(hi_s))
        if t.startswith("{") and t.endswith("}"):
            from .properties import OneOf

            return OneOf(self._parse_value(prop, v) for v in _split_top_level(t[1:-1]))
        raise ParseError(f"malformed membership expression {text!r}")

    # -- block handlers -------------------------------------------------------
    _MATCH_MODES = {
        "exact": "exact",
        "atleast": "at_least",
        "at_least": "at_least",
        "atmost": "at_most",
        "at_most": "at_most",
    }

    def property_block(self, b: Block) -> None:
        name = b.require("Name")
        domain = parse_domain(
            b.require("Type"), values=b.one("Values"), value_range=b.one("ValueRange")
        )
        match_text = (b.one("Match", "exact") or "exact").strip().lower()
        try:
            match_mode = self._MATCH_MODES[match_text]
        except KeyError:
            raise ParseError(f"property {name!r}: unknown Match {match_text!r}") from None
        self.spec.add_property(
            PropertyDef(
                name,
                domain,
                description=b.one("Description", ""),
                match_mode=match_mode,
            )
        )

    def interface_block(self, b: Block) -> None:
        props_text = b.one("Properties", "")
        props = tuple(p for p in _split_top_level(props_text or "") if p)
        self.spec.add_interface(InterfaceDef(b.require("Name"), props))

    def _parse_bindings(self, parent: Block, tag: str) -> List[InterfaceBinding]:
        bindings = []
        for blk in parent.child_blocks(tag):
            iface = blk.require("Name")
            props = self._parse_prop_assignments(blk.one("Properties", "") or "")
            bindings.append(InterfaceBinding(iface, props))
        return bindings

    def _parse_behaviors(self, parent: Block) -> Behaviors:
        for blk in parent.child_blocks("Behaviors"):
            kwargs: Dict[str, Any] = {}
            mapping = {
                "Capacity": ("capacity", float),
                "RRF": ("rrf", float),
                "CpuPerRequest": ("cpu_per_request", float),
                "RequestRate": ("request_rate", float),
                "BytesPerRequest": ("bytes_per_request", int),
                "BytesPerResponse": ("bytes_per_response", int),
                "CodeSize": ("code_size_bytes", int),
            }
            for key, (attr, conv) in mapping.items():
                val = blk.one(key)
                if val is not None:
                    try:
                        kwargs[attr] = conv(val)
                    except ValueError:
                        raise ParseError(f"malformed {key}: {val!r}") from None
            return Behaviors(**kwargs)
        return Behaviors()

    def _parse_unit_conditions(self, parent: Block) -> List[Condition]:
        conds: List[Condition] = []
        for blk in parent.child_blocks("Conditions"):
            props_text = blk.one("Properties", "") or ""
            conds.extend(self._parse_conditions(props_text))
        return conds

    def component_block(self, b: Block) -> None:
        linkages = b.child_blocks("Linkages")
        implements: List[InterfaceBinding] = []
        requires: List[InterfaceBinding] = []
        for lk in linkages:
            implements.extend(self._parse_bindings(lk, "Implements"))
            requires.extend(self._parse_bindings(lk, "Requires"))
        self.spec.add_component(
            ComponentDef(
                name=b.require("Name"),
                implements=tuple(implements),
                requires=tuple(requires),
                conditions=tuple(self._parse_unit_conditions(b)),
                behaviors=self._parse_behaviors(b),
                description=b.one("Description", ""),
            )
        )

    def view_block(self, b: Block) -> None:
        linkages = b.child_blocks("Linkages")
        implements: List[InterfaceBinding] = []
        requires: List[InterfaceBinding] = []
        for lk in linkages:
            implements.extend(self._parse_bindings(lk, "Implements"))
            requires.extend(self._parse_bindings(lk, "Requires"))
        factors: Dict[str, Any] = {}
        for fb in b.child_blocks("Factors"):
            factors.update(self._parse_prop_assignments(fb.one("Properties", "") or ""))
        self.spec.add_view(
            ViewDef(
                name=b.require("Name"),
                implements=tuple(implements),
                requires=tuple(requires),
                conditions=tuple(self._parse_unit_conditions(b)),
                behaviors=self._parse_behaviors(b),
                description=b.one("Description", ""),
                represents=b.require("Represents"),
                kind=b.one("Kind", "data") or "data",
                factors=factors,
            )
        )

    def rule_block(self, b: Block) -> None:
        prop = b.require("Name")
        rows: List[ModificationRule] = []
        for raw in b.raw_lines:
            m = _RULE_ROW.match(raw)
            if not m:
                raise ParseError(f"malformed rule row {raw!r}")
            rows.append(
                ModificationRule(
                    in_pattern=self._parse_value(prop, m.group("in")),
                    env_pattern=self._parse_value(prop, m.group("env")),
                    out=self._parse_value(prop, m.group("out")),
                )
            )
        self.spec.add_rule(PropertyModificationRule(prop, tuple(rows)))


_PASS1 = ("Property",)
_PASS2 = ("Interface",)
_PASS3 = ("Component", "View", "PropertyModificationRule")


def parse_service(text: str, name: str = "service") -> ServiceSpec:
    """Parse readable-form text into a validated :class:`ServiceSpec`.

    A top-level ``<Service>`` wrapper with a ``Name:`` field is optional;
    without one, ``name`` is used.
    """
    lines = _logical_lines(text)
    blocks, pos = [], 0
    while pos < len(lines):
        parsed, pos = _parse_blocks(lines, pos, closing=None)
        blocks.extend(parsed)

    if len(blocks) == 1 and blocks[0].tag == "Service":
        svc = blocks[0]
        name = svc.one("Name", name) or name
        blocks = svc.children

    builder = _SpecBuilder(name)
    handlers = {
        "Property": builder.property_block,
        "Interface": builder.interface_block,
        "Component": builder.component_block,
        "View": builder.view_block,
        "PropertyModificationRule": builder.rule_block,
    }
    for wanted in (_PASS1, _PASS2, _PASS3):
        for b in blocks:
            if b.tag in wanted:
                handlers[b.tag](b)
    unknown = [b.tag for b in blocks if b.tag not in handlers]
    if unknown:
        raise ParseError(f"unknown top-level blocks: {unknown}")
    return builder.spec.validate()


# -- serialization back to the readable form ---------------------------------

def _text_value(value: Any) -> str:
    from .xmlio import value_to_text

    return value_to_text(value)


def _text_domain_fields(domain) -> List[str]:
    from .properties import (
        BooleanDomain,
        EnumDomain,
        IntervalDomain,
        NumberDomain,
        StringDomain,
    )

    if isinstance(domain, BooleanDomain):
        return ["Type: Boolean", "Values: T, F"]
    if isinstance(domain, IntervalDomain):
        return ["Type: Interval", f"ValueRange: ({domain.lo},{domain.hi})"]
    if isinstance(domain, StringDomain):
        return ["Type: String"]
    if isinstance(domain, NumberDomain):
        return ["Type: Number"]
    if isinstance(domain, EnumDomain):
        return ["Type: Enum", "Values: " + ", ".join(domain.values)]
    raise SpecError(f"cannot serialize domain {domain!r}")


_MATCH_TEXT = {"exact": None, "at_least": "AtLeast", "at_most": "AtMost"}


def _text_bindings(lines: List[str], tag: str, bindings) -> None:
    for b in bindings:
        lines.append(f"<{tag}>")
        lines.append(f"Name: {b.interface}")
        if b.properties:
            assigns = ", ".join(
                f"{k} = {_text_value(v)}" for k, v in b.properties.items()
            )
            lines.append(f"Properties: {assigns}")
        lines.append(f"</{tag}>")


def _text_conditions(lines: List[str], conditions) -> None:
    if not conditions:
        return
    parts = []
    for c in conditions:
        if isinstance(c.requirement, (ValueRange,)) or type(c.requirement).__name__ == "OneOf":
            parts.append(f"{c.prop} in {_text_value(c.requirement)}")
        else:
            parts.append(f"{c.prop} = {_text_value(c.requirement)}")
    lines.append("<Conditions>")
    lines.append("Properties: " + ", ".join(parts))
    lines.append("</Conditions>")


def _text_behaviors(lines: List[str], b: Behaviors) -> None:
    default = Behaviors()
    rows = []
    if b.capacity != default.capacity:
        rows.append(f"Capacity: {b.capacity:g}")
    if b.rrf != default.rrf:
        rows.append(f"RRF: {b.rrf:g}")
    if b.cpu_per_request != default.cpu_per_request:
        rows.append(f"CpuPerRequest: {b.cpu_per_request:g}")
    if b.request_rate != default.request_rate:
        rows.append(f"RequestRate: {b.request_rate:g}")
    if b.bytes_per_request != default.bytes_per_request:
        rows.append(f"BytesPerRequest: {b.bytes_per_request}")
    if b.bytes_per_response != default.bytes_per_response:
        rows.append(f"BytesPerResponse: {b.bytes_per_response}")
    if b.code_size_bytes != default.code_size_bytes:
        rows.append(f"CodeSize: {b.code_size_bytes}")
    if rows:
        lines.append("<Behaviors>")
        lines.extend(rows)
        lines.append("</Behaviors>")


def to_text(spec: "ServiceSpec") -> str:
    """Serialize a spec into the paper's readable form.

    Inverse of :func:`parse_service` for every construct that form can
    express; rules with *computed* outputs (Python callables) are not
    textual and raise :class:`SpecError`, mirroring the XML serializer.
    """
    from .views import ViewDef as _ViewDef

    lines: List[str] = ["<Service>", f"Name: {spec.name}", ""]

    for prop in spec.properties.values():
        lines.append("<Property>")
        lines.append(f"Name: {prop.name}")
        lines.extend(_text_domain_fields(prop.domain))
        match = _MATCH_TEXT[prop.match_mode]
        if match:
            lines.append(f"Match: {match}")
        lines.append("</Property>")
        lines.append("")

    for iface in spec.interfaces.values():
        lines.append("<Interface>")
        lines.append(f"Name: {iface.name}")
        if iface.properties:
            lines.append("Properties: " + ", ".join(iface.properties))
        lines.append("</Interface>")
        lines.append("")

    for unit in spec.units():
        is_view = isinstance(unit, _ViewDef)
        tag = "View" if is_view else "Component"
        lines.append(f"<{tag}>")
        lines.append(f"Name: {unit.name}")
        if is_view:
            lines.append(f"Represents: {unit.represents}")
            lines.append(f"Kind: {unit.kind}")
            if unit.factors:
                lines.append("<Factors>")
                lines.append(
                    "Properties: "
                    + ", ".join(f"{k} = {_text_value(v)}" for k, v in unit.factors.items())
                )
                lines.append("</Factors>")
        if unit.implements or unit.requires:
            lines.append("<Linkages>")
            _text_bindings(lines, "Implements", unit.implements)
            _text_bindings(lines, "Requires", unit.requires)
            lines.append("</Linkages>")
        _text_conditions(lines, unit.conditions)
        _text_behaviors(lines, unit.behaviors)
        lines.append(f"</{tag}>")
        lines.append("")

    for prop_name in spec.rules.properties():
        rule = spec.rules.rule_for(prop_name)
        assert rule is not None
        lines.append("<PropertyModificationRule>")
        lines.append(f"Name: {prop_name}")
        lines.append("Rules:")
        for row in rule.rules:
            if callable(row.out):
                raise SpecError(
                    f"rule for {prop_name!r} has a computed output; not serializable"
                )
            lines.append(
                f"(In: {_text_value(row.in_pattern)}) x "
                f"(Env: {_text_value(row.env_pattern)}) = "
                f"(Out: {_text_value(row.out)})"
            )
        lines.append("</PropertyModificationRule>")
        lines.append("")

    lines.append("</Service>")
    return "\n".join(lines)
