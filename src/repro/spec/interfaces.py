"""Interface declarations (paper §3.1).

Interfaces "play the same role as in object-oriented languages, serving
as the granularity for identifying functionality implemented by the
service"; each interface lists the properties that serve as its
attributes (e.g. ``ServerInterface`` carries ``Confidentiality`` and
``TrustLevel``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .properties import SpecError

__all__ = ["InterfaceDef"]


@dataclass(frozen=True)
class InterfaceDef:
    """One named interface and the properties attached to it."""

    name: str
    properties: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("interface name must be non-empty")
        seen = set()
        for p in self.properties:
            if p in seen:
                raise SpecError(f"interface {self.name!r} lists property {p!r} twice")
            seen.add(p)

    def has_property(self, prop: str) -> bool:
        return prop in self.properties

    def __repr__(self) -> str:
        return f"<Interface {self.name} props={list(self.properties)}>"
