"""XML serialization of service specifications.

The paper's implementation stores specs in XML ("using the XML Winter
Pack 01"); this module provides the equivalent with :mod:`xml.etree`.
``to_xml`` / ``from_xml`` round-trip every construct of the readable
form: properties, interfaces, components, views (factors), conditions,
behaviors, and property-modification rules.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Dict, List, Optional

from .components import Behaviors, ComponentDef, Condition, InterfaceBinding
from .interfaces import InterfaceDef
from .properties import (
    ANY,
    BooleanDomain,
    Domain,
    EnumDomain,
    EnvRef,
    IntervalDomain,
    NumberDomain,
    OneOf,
    PropertyDef,
    SpecError,
    StringDomain,
    ValueRange,
    parse_domain,
)
from .rules import ModificationRule, PropertyModificationRule
from .service import ServiceSpec
from .views import ViewDef

__all__ = ["to_xml", "from_xml"]


# -- value text form ---------------------------------------------------------

def value_to_text(value: Any) -> str:
    """Serialize a bound value into the spec's textual form."""
    if value is ANY:
        return "ANY"
    if isinstance(value, EnvRef):
        return f"{value.scope}.{value.prop}"
    if isinstance(value, bool):
        return "T" if value else "F"
    if isinstance(value, ValueRange):
        return f"({value.lo},{value.hi})"
    if isinstance(value, OneOf):
        return "{" + ",".join(value_to_text(v) for v in sorted(value.values, key=repr)) + "}"
    return str(value)


def _domain_attrs(domain: Domain) -> Dict[str, str]:
    if isinstance(domain, BooleanDomain):
        return {"type": "Boolean", "values": "T,F"}
    if isinstance(domain, IntervalDomain):
        return {"type": "Interval", "valueRange": f"({domain.lo},{domain.hi})"}
    if isinstance(domain, StringDomain):
        return {"type": "String"}
    if isinstance(domain, NumberDomain):
        return {"type": "Number"}
    if isinstance(domain, EnumDomain):
        return {"type": "Enum", "values": ",".join(domain.values)}
    raise SpecError(f"cannot serialize domain {domain!r}")


# -- serialization -----------------------------------------------------------

def _bindings_el(parent: ET.Element, tag: str, bindings) -> None:
    for b in bindings:
        el = ET.SubElement(parent, tag, name=b.interface)
        for prop, value in b.properties.items():
            ET.SubElement(el, "PropertyValue", name=prop, value=value_to_text(value))


def _conditions_el(parent: ET.Element, conditions) -> None:
    if not conditions:
        return
    conds = ET.SubElement(parent, "Conditions")
    for c in conditions:
        op = "in" if isinstance(c.requirement, (ValueRange, OneOf)) else "eq"
        ET.SubElement(
            conds, "Condition", property=c.prop, op=op, value=value_to_text(c.requirement)
        )


_DEFAULT_BEHAVIORS = Behaviors()


def _num(value: float) -> str:
    """Canonical numeric text (ints print without a trailing .0), so a
    serialize-parse-serialize cycle is a fixpoint."""
    return f"{value:g}"


def _behaviors_el(parent: ET.Element, b: Behaviors) -> None:
    attrs: Dict[str, str] = {}
    if b.capacity != _DEFAULT_BEHAVIORS.capacity:
        attrs["capacity"] = _num(b.capacity)
    if b.cpu_per_request != _DEFAULT_BEHAVIORS.cpu_per_request:
        attrs["cpuPerRequest"] = _num(b.cpu_per_request)
    if b.request_rate != _DEFAULT_BEHAVIORS.request_rate:
        attrs["requestRate"] = _num(b.request_rate)
    if b.bytes_per_request != _DEFAULT_BEHAVIORS.bytes_per_request:
        attrs["bytesPerRequest"] = str(b.bytes_per_request)
    if b.bytes_per_response != _DEFAULT_BEHAVIORS.bytes_per_response:
        attrs["bytesPerResponse"] = str(b.bytes_per_response)
    if b.rrf != _DEFAULT_BEHAVIORS.rrf:
        attrs["rrf"] = _num(b.rrf)
    if b.code_size_bytes != _DEFAULT_BEHAVIORS.code_size_bytes:
        attrs["codeSize"] = str(b.code_size_bytes)
    if attrs:
        ET.SubElement(parent, "Behaviors", **attrs)


def _unit_el(parent: ET.Element, unit: ComponentDef) -> None:
    if isinstance(unit, ViewDef):
        el = ET.SubElement(
            parent, "View", name=unit.name, represents=unit.represents, kind=unit.kind
        )
        if unit.factors:
            factors = ET.SubElement(el, "Factors")
            for prop, value in unit.factors.items():
                ET.SubElement(
                    factors, "PropertyValue", name=prop, value=value_to_text(value)
                )
    else:
        el = ET.SubElement(parent, "Component", name=unit.name)
    if unit.implements or unit.requires:
        linkages = ET.SubElement(el, "Linkages")
        _bindings_el(linkages, "Implements", unit.implements)
        _bindings_el(linkages, "Requires", unit.requires)
    _conditions_el(el, unit.conditions)
    _behaviors_el(el, unit.behaviors)


def to_xml(spec: ServiceSpec) -> str:
    """Serialize a spec to an XML document string."""
    root = ET.Element("Service", name=spec.name)
    for prop in spec.properties.values():
        attrs = _domain_attrs(prop.domain)
        if prop.match_mode != "exact":
            attrs["match"] = prop.match_mode
        ET.SubElement(root, "Property", name=prop.name, **attrs)
    for iface in spec.interfaces.values():
        ET.SubElement(
            root, "Interface", name=iface.name, properties=",".join(iface.properties)
        )
    for comp in spec.components.values():
        _unit_el(root, comp)
    for view in spec.views.values():
        _unit_el(root, view)
    for prop_name in spec.rules.properties():
        rule = spec.rules.rule_for(prop_name)
        assert rule is not None
        rule_el = ET.SubElement(root, "PropertyModificationRule", property=prop_name)
        for row in rule.rules:
            if callable(row.out):
                raise SpecError(
                    f"rule for {prop_name!r} has a computed output; not serializable"
                )
            ET.SubElement(
                rule_el,
                "Rule",
                **{
                    "in": value_to_text(row.in_pattern),
                    "env": value_to_text(row.env_pattern),
                    "out": value_to_text(row.out),
                },
            )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


# -- deserialization ---------------------------------------------------------

def _parse_value(spec: ServiceSpec, prop: str, text: str) -> Any:
    pdef = spec.properties.get(prop)
    if pdef is not None:
        return pdef.parse_value(text)
    if text == "ANY":
        return ANY
    if "." in text and text.split(".", 1)[0] in ("Node", "Link"):
        return EnvRef.parse(text)
    if text in ("T", "F"):
        return text == "T"
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            continue
    return text


def _parse_bindings(spec: ServiceSpec, parent: ET.Element, tag: str) -> List[InterfaceBinding]:
    out = []
    for el in parent.findall(tag):
        props = {
            pv.get("name", ""): _parse_value(spec, pv.get("name", ""), pv.get("value", ""))
            for pv in el.findall("PropertyValue")
        }
        out.append(InterfaceBinding(el.get("name", ""), props))
    return out


def _parse_conditions(spec: ServiceSpec, el: ET.Element) -> List[Condition]:
    out = []
    for conds in el.findall("Conditions"):
        for c in conds.findall("Condition"):
            prop = c.get("property", "")
            text = c.get("value", "")
            if c.get("op") == "in":
                if text.startswith("(") and text.endswith(")"):
                    lo_s, hi_s = text[1:-1].split(",")
                    value: Any = ValueRange(int(lo_s), int(hi_s))
                elif text.startswith("{") and text.endswith("}"):
                    value = OneOf(
                        _parse_value(spec, prop, v) for v in text[1:-1].split(",")
                    )
                else:
                    raise SpecError(f"malformed membership value {text!r}")
            else:
                value = _parse_value(spec, prop, text)
            out.append(Condition(prop, value))
    return out


def _parse_behaviors(el: ET.Element) -> Behaviors:
    b = el.find("Behaviors")
    if b is None:
        return Behaviors()
    kwargs: Dict[str, Any] = {}
    conv = {
        "capacity": ("capacity", float),
        "cpuPerRequest": ("cpu_per_request", float),
        "requestRate": ("request_rate", float),
        "bytesPerRequest": ("bytes_per_request", int),
        "bytesPerResponse": ("bytes_per_response", int),
        "rrf": ("rrf", float),
        "codeSize": ("code_size_bytes", int),
    }
    for attr, (field_name, fn) in conv.items():
        raw = b.get(attr)
        if raw is not None:
            kwargs[field_name] = fn(raw)
    return Behaviors(**kwargs)


def from_xml(text: str) -> ServiceSpec:
    """Parse an XML document into a validated :class:`ServiceSpec`."""
    root = ET.fromstring(text)
    if root.tag != "Service":
        raise SpecError(f"expected <Service> root, got <{root.tag}>")
    spec = ServiceSpec(name=root.get("name", "service"))

    for el in root.findall("Property"):
        spec.add_property(
            PropertyDef(
                el.get("name", ""),
                parse_domain(
                    el.get("type", ""), values=el.get("values"), value_range=el.get("valueRange")
                ),
                match_mode=el.get("match", "exact"),
            )
        )
    for el in root.findall("Interface"):
        props_attr = el.get("properties", "")
        props = tuple(p for p in props_attr.split(",") if p)
        spec.add_interface(InterfaceDef(el.get("name", ""), props))

    for el in root.findall("Component"):
        linkages = el.find("Linkages")
        implements = _parse_bindings(spec, linkages, "Implements") if linkages is not None else []
        requires = _parse_bindings(spec, linkages, "Requires") if linkages is not None else []
        spec.add_component(
            ComponentDef(
                name=el.get("name", ""),
                implements=tuple(implements),
                requires=tuple(requires),
                conditions=tuple(_parse_conditions(spec, el)),
                behaviors=_parse_behaviors(el),
            )
        )
    for el in root.findall("View"):
        linkages = el.find("Linkages")
        implements = _parse_bindings(spec, linkages, "Implements") if linkages is not None else []
        requires = _parse_bindings(spec, linkages, "Requires") if linkages is not None else []
        factors: Dict[str, Any] = {}
        factors_el = el.find("Factors")
        if factors_el is not None:
            for pv in factors_el.findall("PropertyValue"):
                name = pv.get("name", "")
                factors[name] = _parse_value(spec, name, pv.get("value", ""))
        spec.add_view(
            ViewDef(
                name=el.get("name", ""),
                implements=tuple(implements),
                requires=tuple(requires),
                conditions=tuple(_parse_conditions(spec, el)),
                behaviors=_parse_behaviors(el),
                represents=el.get("represents", ""),
                kind=el.get("kind", "data"),
                factors=factors,
            )
        )
    for el in root.findall("PropertyModificationRule"):
        prop = el.get("property", "")
        rows = tuple(
            ModificationRule(
                in_pattern=_parse_value(spec, prop, r.get("in", "ANY")),
                env_pattern=_parse_value(spec, prop, r.get("env", "ANY")),
                out=_parse_value(spec, prop, r.get("out", "ANY")),
            )
            for r in el.findall("Rule")
        )
        spec.add_rule(PropertyModificationRule(prop, rows))
    return spec.validate()
