"""Property modification rules (paper §3.3, Figure 4).

The environment transforms implemented interface properties: a
``Confidentiality = T`` interface exposed across an insecure link is no
longer confidential.  The paper models this with rules of the form::

    <PropertyModificationRule>
    Name: Confidentiality
    Rules:
    (In: T)   x (Env: T)   = (Out: T)
    (In: F)   x (Env: ANY) = (Out: F)
    (In: ANY) x (Env: F)   = (Out: F)
    </PropertyModificationRule>

First matching rule wins.  A property with no rule set passes through
the environment unchanged (identity).  ``Env`` values come from the
path environment built by credential translation; an absent ``In`` or
``Env`` value is ``None`` and matches only ``ANY`` patterns — the
conservative reading for security-flavoured properties.

The paper stresses these rules are general, not security-specific: a QoS
property like delivered frame rate can be modified the same way (see the
video-service example), so rule *outputs* may also be computed — pass a
callable instead of a constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from .properties import ANY, SpecError, satisfies

__all__ = ["ModificationRule", "PropertyModificationRule", "RuleSet"]

OutSpec = Union[Any, Callable[[Any, Any], Any]]


@dataclass(frozen=True)
class ModificationRule:
    """One ``(In) x (Env) = (Out)`` row.

    ``in_pattern`` / ``env_pattern`` are matched with the same value
    algebra as requirements (exact / range / set / ANY).  ``out`` is a
    constant, or a callable ``f(in_value, env_value) -> out_value`` for
    computed transformations.
    """

    in_pattern: Any
    env_pattern: Any
    out: OutSpec

    def matches(self, in_value: Any, env_value: Any) -> bool:
        in_ok = (self.in_pattern is ANY) or satisfies(self.in_pattern, in_value)
        env_ok = (self.env_pattern is ANY) or satisfies(self.env_pattern, env_value)
        return in_ok and env_ok

    def output(self, in_value: Any, env_value: Any) -> Any:
        if callable(self.out):
            return self.out(in_value, env_value)
        return self.out

    def __repr__(self) -> str:
        return f"(In: {self.in_pattern!r}) x (Env: {self.env_pattern!r}) = (Out: {self.out!r})"


@dataclass
class PropertyModificationRule:
    """The ordered rule list for one property (Figure 4)."""

    property: str
    rules: Tuple[ModificationRule, ...] = ()

    def __post_init__(self) -> None:
        if not self.property:
            raise SpecError("modification rule needs a property name")
        self.rules = tuple(self.rules)
        if not self.rules:
            raise SpecError(f"modification rule for {self.property!r} has no rows")

    def apply(self, in_value: Any, env_value: Any) -> Any:
        """Transform ``in_value`` through the environment.

        First matching row wins.  If no row matches, the property is not
        vouched for in this environment: return ``None`` (which fails
        any non-ANY requirement).
        """
        for rule in self.rules:
            if rule.matches(in_value, env_value):
                return rule.output(in_value, env_value)
        return None

    def __repr__(self) -> str:
        return f"<PropertyModificationRule {self.property} rows={len(self.rules)}>"


class RuleSet:
    """All modification rules of a service, keyed by property name."""

    def __init__(self, rules: Optional[List[PropertyModificationRule]] = None) -> None:
        self._rules: Dict[str, PropertyModificationRule] = {}
        for r in rules or []:
            self.add(r)

    def add(self, rule: PropertyModificationRule) -> None:
        if rule.property in self._rules:
            raise SpecError(f"duplicate modification rule for {rule.property!r}")
        self._rules[rule.property] = rule

    def has_rule(self, prop: str) -> bool:
        return prop in self._rules

    def rule_for(self, prop: str) -> Optional[PropertyModificationRule]:
        return self._rules.get(prop)

    def properties(self) -> List[str]:
        return list(self._rules)

    def apply(self, prop: str, in_value: Any, env_value: Any) -> Any:
        """Transform one property value through an environment.

        Properties without a rule pass through unchanged — the
        environment is transparent to them.
        """
        rule = self._rules.get(prop)
        if rule is None:
            return in_value
        return rule.apply(in_value, env_value)

    def transform(
        self, implemented: Mapping[str, Any], env: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """Transform a whole implemented-property bag through ``env``."""
        return {
            prop: self.apply(prop, value, env.get(prop))
            for prop, value in implemented.items()
        }

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:
        return f"<RuleSet {sorted(self._rules)}>"


def confidentiality_rule(property_name: str = "Confidentiality") -> PropertyModificationRule:
    """The exact rule of Figure 4, reusable by services and tests."""
    return PropertyModificationRule(
        property=property_name,
        rules=(
            ModificationRule(True, True, True),
            ModificationRule(False, ANY, False),
            ModificationRule(ANY, False, False),
        ),
    )


__all__.append("confidentiality_rule")
