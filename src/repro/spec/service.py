"""The aggregate service specification and its validation.

A :class:`ServiceSpec` bundles everything §3.1 describes: property
definitions, interfaces, components, views, and property-modification
rules.  :meth:`ServiceSpec.validate` cross-checks the namespace — every
interface a component names must exist, every property an interface or
binding names must be declared, bound values must lie in their domains,
views must represent real components — so planners can assume a
well-formed spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .components import ComponentDef, InterfaceBinding
from .interfaces import InterfaceDef
from .properties import ANY, EnvRef, OneOf, PropertyDef, SpecError, ValueRange
from .rules import PropertyModificationRule, RuleSet
from .views import ViewDef

__all__ = ["ServiceSpec"]

Unit = ComponentDef  # components and views share the ComponentDef surface


@dataclass
class ServiceSpec:
    """Declarative description of one partitionable service."""

    name: str
    properties: Dict[str, PropertyDef] = field(default_factory=dict)
    interfaces: Dict[str, InterfaceDef] = field(default_factory=dict)
    components: Dict[str, ComponentDef] = field(default_factory=dict)
    views: Dict[str, ViewDef] = field(default_factory=dict)
    rules: RuleSet = field(default_factory=RuleSet)
    description: str = ""

    # -- construction helpers ----------------------------------------------
    def add_property(self, prop: PropertyDef) -> PropertyDef:
        if prop.name in self.properties:
            raise SpecError(f"duplicate property {prop.name!r}")
        self.properties[prop.name] = prop
        return prop

    def add_interface(self, iface: InterfaceDef) -> InterfaceDef:
        if iface.name in self.interfaces:
            raise SpecError(f"duplicate interface {iface.name!r}")
        self.interfaces[iface.name] = iface
        return iface

    def add_component(self, comp: ComponentDef) -> ComponentDef:
        if isinstance(comp, ViewDef):
            return self.add_view(comp)
        if comp.name in self.components or comp.name in self.views:
            raise SpecError(f"duplicate component {comp.name!r}")
        self.components[comp.name] = comp
        return comp

    def add_view(self, view: ViewDef) -> ViewDef:
        if view.name in self.components or view.name in self.views:
            raise SpecError(f"duplicate view {view.name!r}")
        self.views[view.name] = view
        return view

    def add_rule(self, rule: PropertyModificationRule) -> PropertyModificationRule:
        self.rules.add(rule)
        return rule

    # -- queries --------------------------------------------------------------
    def unit(self, name: str) -> Unit:
        """Component or view by name."""
        if name in self.components:
            return self.components[name]
        if name in self.views:
            return self.views[name]
        raise SpecError(f"service {self.name!r} has no component/view {name!r}")

    def units(self) -> List[Unit]:
        """All deployable units (components then views), stable order."""
        return list(self.components.values()) + list(self.views.values())

    def has_unit(self, name: str) -> bool:
        return name in self.components or name in self.views

    def implementers_of(self, interface: str) -> List[Unit]:
        """Units implementing ``interface`` (string-level match)."""
        return [u for u in self.units() if u.implements_interface(interface)]

    def views_of(self, component: str) -> List[ViewDef]:
        return [v for v in self.views.values() if v.represents == component]

    def interface(self, name: str) -> InterfaceDef:
        try:
            return self.interfaces[name]
        except KeyError:
            raise SpecError(f"service {self.name!r} has no interface {name!r}") from None

    def property_def(self, name: str) -> PropertyDef:
        try:
            return self.properties[name]
        except KeyError:
            raise SpecError(f"service {self.name!r} has no property {name!r}") from None

    # -- validation --------------------------------------------------------
    def validate(self) -> "ServiceSpec":
        """Cross-check the whole namespace; returns self for chaining."""
        if not self.name:
            raise SpecError("service name must be non-empty")
        for iface in self.interfaces.values():
            for prop in iface.properties:
                if prop not in self.properties:
                    raise SpecError(
                        f"interface {iface.name!r} references unknown property {prop!r}"
                    )
        for unit in self.units():
            self._validate_unit(unit)
        for view in self.views.values():
            if view.represents not in self.components:
                raise SpecError(
                    f"view {view.name!r} represents unknown component {view.represents!r}"
                )
            for prop in view.factors:
                if prop not in self.properties:
                    raise SpecError(
                        f"view {view.name!r} factors unknown property {prop!r}"
                    )
        for prop in self.rules.properties():
            if prop not in self.properties:
                raise SpecError(f"modification rule for unknown property {prop!r}")
        for pdef in self.properties.values():
            for dep in pdef.depends_on:
                if dep not in self.properties:
                    raise SpecError(
                        f"derived property {pdef.name!r} depends on unknown {dep!r}"
                    )
        return self

    def _validate_unit(self, unit: Unit) -> None:
        for binding in tuple(unit.implements) + tuple(unit.requires):
            iface = self.interfaces.get(binding.interface)
            if iface is None:
                raise SpecError(
                    f"{unit.name!r} references unknown interface {binding.interface!r}"
                )
            for prop, value in binding.properties.items():
                if prop not in self.properties:
                    raise SpecError(
                        f"{unit.name!r} binds unknown property {prop!r} "
                        f"on interface {binding.interface!r}"
                    )
                if not iface.has_property(prop):
                    raise SpecError(
                        f"interface {binding.interface!r} does not carry property "
                        f"{prop!r} (bound by {unit.name!r})"
                    )
                self._validate_value(unit.name, prop, value)
        for cond in unit.conditions:
            if cond.prop in self.properties:
                self._validate_value(unit.name, cond.prop, cond.requirement)
            # Conditions may also reference raw environment/request keys
            # (e.g. User before it is declared); undeclared names are
            # permitted there since the environment namespace is open.

    def _validate_value(self, owner: str, prop: str, value: Any) -> None:
        pdef = self.properties[prop]
        if value is ANY or isinstance(value, EnvRef):
            return
        if isinstance(value, ValueRange):
            return  # domain-checked at match time
        if isinstance(value, OneOf):
            for v in value.values:
                pdef.validate(v)
            return
        try:
            pdef.validate(value)
        except SpecError as exc:
            raise SpecError(f"in {owner!r}: {exc}") from None

    def __repr__(self) -> str:
        return (
            f"<ServiceSpec {self.name!r} props={len(self.properties)} "
            f"ifaces={len(self.interfaces)} comps={len(self.components)} "
            f"views={len(self.views)} rules={len(self.rules)}>"
        )
