"""Views: customized implementations of a component (paper §3.1, [17]).

A view *represents* an original component and comes in two kinds:

- **object view** — restricts functionality (``ViewMailClient`` supports
  send/receive but not the address book);
- **data view** — holds a subset of the original's state
  (``ViewMailServer`` caches some user accounts).

Views must be kept consistent with their original — the runtime's
coherence layer manages that (see :mod:`repro.coherence`).  A single view
definition can be instantiated into multiple *configurations*: the
``Factors`` clause binds service properties per instantiation, typically
to environment values (``TrustLevel = Node.TrustLevel``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from .components import ComponentDef, InterfaceBinding, resolve_env_refs
from .properties import EnvRef, SpecError

__all__ = ["ViewDef", "ViewConfiguration"]

VIEW_KINDS = ("object", "data")


@dataclass
class ViewDef(ComponentDef):
    """A view definition (subclass of component: views are deployable too)."""

    represents: str = ""
    kind: str = "data"
    factors: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.represents:
            raise SpecError(f"view {self.name!r} needs a Represents target")
        if self.kind not in VIEW_KINDS:
            raise SpecError(f"view kind must be one of {VIEW_KINDS}, got {self.kind!r}")
        self.factors = dict(self.factors)

    @property
    def is_view(self) -> bool:
        return True

    def configure(self, node_env: Mapping[str, Any]) -> "ViewConfiguration":
        """Bind the Factors against a concrete node environment.

        Returns the configuration realized on that node — e.g. a
        ``ViewMailServer`` with ``TrustLevel = 2`` on a trust-2 node.
        Unresolvable factors bind to ``None`` (and will fail any property
        compatibility check that needs them).
        """
        bound = resolve_env_refs(self.factors, node_env)
        return ViewConfiguration(view=self, factor_values=bound)

    def __repr__(self) -> str:
        return f"<View {self.name} represents={self.represents} kind={self.kind}>"


@dataclass(frozen=True)
class ViewConfiguration:
    """A view with its Factors bound to concrete values.

    The planner treats each distinct configuration as a distinct
    deployable unit; the runtime keys coherence state on
    ``(view name, factor values)``.
    """

    view: ViewDef
    factor_values: Mapping[str, Any]

    def __post_init__(self) -> None:
        object.__setattr__(self, "factor_values", dict(self.factor_values))

    @property
    def identity(self) -> Tuple[str, Tuple[Tuple[str, Any], ...]]:
        return (self.view.name, tuple(sorted(self.factor_values.items())))

    def resolved_implements(self, node_env: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
        """Implemented-interface properties with factors + env substituted."""
        merged_env = dict(node_env)
        merged_env.update({k: v for k, v in self.factor_values.items() if v is not None})
        return {
            b.interface: resolve_env_refs(b.properties, merged_env)
            for b in self.view.implements
        }

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.factor_values.items()))
        return f"<ViewConfig {self.view.name} [{inner}]>"
