"""Declarative service specification (paper §3.1).

Properties, interfaces, components, views, installation conditions,
behaviors, and property-modification rules — plus parsers for the
paper's readable text form (:func:`parse_service`) and the XML form
(:func:`from_xml` / :func:`to_xml`).
"""

from .components import Behaviors, ComponentDef, Condition, InterfaceBinding, resolve_env_refs
from .dsl import ParseError, parse_service, to_text
from .interfaces import InterfaceDef
from .properties import (
    ANY,
    AnyValue,
    BooleanDomain,
    Domain,
    EnumDomain,
    EnvRef,
    IntervalDomain,
    NumberDomain,
    OneOf,
    PropertyDef,
    SpecError,
    StringDomain,
    ValueRange,
    parse_domain,
    satisfies,
)
from .rules import (
    ModificationRule,
    PropertyModificationRule,
    RuleSet,
    confidentiality_rule,
)
from .service import ServiceSpec
from .views import ViewConfiguration, ViewDef
from .xmlio import from_xml, to_xml

__all__ = [
    "ServiceSpec",
    "SpecError",
    "ParseError",
    "PropertyDef",
    "Domain",
    "BooleanDomain",
    "IntervalDomain",
    "StringDomain",
    "EnumDomain",
    "NumberDomain",
    "parse_domain",
    "ANY",
    "AnyValue",
    "EnvRef",
    "ValueRange",
    "OneOf",
    "satisfies",
    "InterfaceDef",
    "InterfaceBinding",
    "ComponentDef",
    "Condition",
    "Behaviors",
    "resolve_env_refs",
    "ViewDef",
    "ViewConfiguration",
    "ModificationRule",
    "PropertyModificationRule",
    "RuleSet",
    "confidentiality_rule",
    "parse_service",
    "to_text",
    "to_xml",
    "from_xml",
]
