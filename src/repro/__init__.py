"""repro — a reproduction of *Partitionable Services: A Framework for
Seamlessly Adapting Distributed Applications to Heterogeneous
Environments* (Ivan, Harman, Allen, Karamcheti — HPDC 2002).

The package implements the paper's three pillars plus every substrate
they rest on:

- :mod:`repro.spec` — declarative service specifications (§3.1):
  properties, interfaces, components, views, conditions, behaviors,
  property-modification rules; readable-form and XML parsers.
- :mod:`repro.smock` — the Smock run-time (§3.2): lookup service,
  generic proxy/server, node wrappers, deployment execution, dynamic
  replanning (§6).
- :mod:`repro.planner` — planning policies (§3.3): exhaustive,
  DP-chain (CANS-style) and partial-order/CSP planners over a shared
  constraint model (installability, property compatibility under
  environment modification, load vs. capacity).
- :mod:`repro.coherence` — directory-based cache coherence at view
  granularity with dynamic conflict maps and weak-consistency policies.
- :mod:`repro.network` — topology model, BRITE-style generators,
  credential translation, Remos-style monitoring.
- :mod:`repro.sim` — the deterministic discrete-event substrate
  standing in for the paper's Pentium III + Click-router testbed.
- :mod:`repro.trust` — dRBAC-style trust management (§6 extension).
- :mod:`repro.faults` — fault injection, heartbeat failure detection,
  and the self-healing failover loop built on the §6 replanner.
- :mod:`repro.services` — the mail case study (§2, §4) and a
  QoS-sensitive video service.
- :mod:`repro.experiments` — the Figure 5/6/7 and one-time-cost
  experiment harnesses.

Quick start::

    from repro.experiments import build_mail_testbed

    testbed = build_mail_testbed()
    runtime = testbed.runtime
    proxy = runtime.run(
        runtime.client_connect("sandiego-client1", {"User": "Bob"})
    )
    resp = runtime.run(proxy.request("send_mail", {
        "recipient": "Alice", "sensitivity": 2, "body": "hello",
    }))
"""

from . import coherence, faults, network, planner, sim, smock, spec, trust
from .network import Network
from .planner import DeploymentPlan, Planner, PlanningError, PlanRequest
from .sim import Simulator
from .smock import SmockRuntime
from .spec import ServiceSpec, parse_service

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "spec",
    "planner",
    "smock",
    "coherence",
    "network",
    "sim",
    "trust",
    "faults",
    "ServiceSpec",
    "parse_service",
    "Planner",
    "PlanRequest",
    "PlanningError",
    "DeploymentPlan",
    "SmockRuntime",
    "Simulator",
    "Network",
]
