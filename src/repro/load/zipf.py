"""Zipf-distributed rank sampling for hot-key / hot-user skew.

Real request populations are heavily skewed — a few celebrities receive
most of the mail, a few videos draw most of the views.  The sampler
draws ranks ``0..n-1`` with ``P(rank k) ∝ 1/(k+1)^s`` by inverse-CDF
lookup over a precomputed cumulative table: O(n) setup once, O(log n)
per sample, deterministic given the caller's RNG.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Inverse-CDF sampler over ranks ``0..n-1`` with exponent ``s``.

    ``s = 0`` degenerates to uniform; ``s ≈ 1`` is the classic web-trace
    skew.  Pass an external ``random.Random`` to :meth:`sample` to keep
    one seeded stream per driver, or give the sampler its own ``seed``.
    """

    def __init__(self, n: int, s: float = 1.1, seed: Optional[int] = None) -> None:
        if n < 1:
            raise ValueError(f"need n >= 1 ranks, got {n}")
        if s < 0:
            raise ValueError(f"exponent must be >= 0, got {s}")
        self.n = n
        self.s = float(s)
        self._rng = None if seed is None else random.Random(f"zipf:{seed}")
        cdf: List[float] = []
        total = 0.0
        for k in range(n):
            total += (k + 1) ** -self.s
            cdf.append(total)
        self._total = total
        self._cdf = cdf

    def probability(self, rank: int) -> float:
        """P(rank) under the normalized distribution."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of [0, {self.n})")
        return (rank + 1) ** -self.s / self._total

    def sample(self, rng: Optional[random.Random] = None) -> int:
        """Draw one rank (0 = hottest)."""
        r = rng if rng is not None else self._rng
        if r is None:
            raise ValueError("no RNG: pass rng= or construct with seed=")
        return bisect.bisect_left(self._cdf, r.random() * self._total)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ZipfSampler n={self.n} s={self.s}>"
