"""The simulated-user roster.

One generator for every layer that needs account names: the Figure 7
scenarios bind one proxy per roster user, while the open-loop driver
samples *requests* from a much larger roster (the paper's five named
users first, then generated names) — so a 10k-user flash crowd and a
5-user scripted run draw from the same namespace and small prefixes are
bit-identical to the historical setup.
"""

from __future__ import annotations

from typing import List

from ..services.mail.spec import DEFAULT_USERS

__all__ = ["generate_roster"]


def generate_roster(n_users: int) -> List[str]:
    """The first ``n_users`` account names: the paper's five, then
    ``User005``, ``User006``, ... (zero-padded to at least 3 digits)."""
    if n_users < 0:
        raise ValueError(f"n_users must be >= 0, got {n_users}")
    users = list(DEFAULT_USERS)[:n_users]
    users += [f"User{i:03d}" for i in range(len(users), n_users)]
    return users
