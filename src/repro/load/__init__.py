"""Seeded open-loop load generation (see ARCHITECTURE.md "load harness").

Arrival processes live in the sim kernel (:mod:`repro.sim.arrivals`);
this package turns their arrival instants into service requests: a
roster of simulated users (:func:`generate_roster`), hot-user skew
(:class:`ZipfSampler`), an :class:`OpenLoopDriver` that multiplexes
10k–100k users over a handful of bound proxies as sim processes, and a
sweep harness (:func:`run_load_cell` / :func:`run_load_sweep` /
:func:`run_flash_crowd_pair`) producing latency/goodput-vs-offered-load
curves graded by the SLO engine.
"""

from .driver import LoadConfig, LoadResult, OpenLoopDriver
from .roster import generate_roster
from .sweep import (
    FlashCrowdPair,
    LoadCellResult,
    LoadSweepResult,
    find_knee,
    run_flash_crowd_pair,
    run_load_cell,
    run_load_sweep,
)
from .zipf import ZipfSampler

__all__ = [
    "generate_roster",
    "ZipfSampler",
    "LoadConfig",
    "LoadResult",
    "OpenLoopDriver",
    "FlashCrowdPair",
    "LoadCellResult",
    "LoadSweepResult",
    "run_load_cell",
    "run_load_sweep",
    "run_flash_crowd_pair",
    "find_knee",
]
