"""The open-loop driver: arrivals → simulated users → service requests.

Each arrival instant from an :class:`~repro.sim.arrivals.ArrivalProcess`
becomes one independent sim process issuing one operation through a
bound :class:`~repro.smock.ServiceProxy` — arrivals never wait for
completions, which is what makes the load *open-loop* and lets offered
load exceed service capacity.  The issuing user is drawn Zipf-skewed
from a generated roster (10k–100k simulated users multiplexed over a
handful of proxies via the per-request ``user=`` override), and the
operation itself comes from a pluggable factory so the same driver
fronts the mail and video services.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..sim.arrivals import ArrivalProcess, ArrivalStream
from ..sim.resources import Monitor
from ..smock import ServiceProxy
from .roster import generate_roster
from .zipf import ZipfSampler

__all__ = ["LoadConfig", "LoadResult", "OpenLoopDriver"]

#: op factory signature: (rng, user, roster) -> (op, payload, size_bytes)
OpFactory = Callable[[random.Random, str, Sequence[str]], Tuple[str, Dict[str, Any], int]]


@dataclass
class LoadConfig:
    """Parameters of one open-loop run (the arrival process is separate
    so one config can be swept across Poisson/diurnal/flash shapes)."""

    duration_ms: float = 30_000.0
    #: extra simulated time after the last arrival for in-flight
    #: requests (including retry chains) to finish
    drain_ms: float = 60_000.0
    n_users: int = 10_000
    zipf_s: float = 1.1
    #: "timely" threshold: an ok response within this bound counts
    #: toward timely goodput (the default matches the mail SLO p50)
    deadline_ms: float = 2_000.0
    #: hard cap on arrivals (None = whatever the process generates)
    max_arrivals: Optional[int] = None
    seed: int = 0


@dataclass
class LoadResult:
    """Outcome counters of one open-loop run, in simulated terms.

    ``goodput_per_s`` divides by the *offered-load window* (not the
    drain), so protected and unprotected runs of the same scenario are
    directly comparable.
    """

    duration_ms: float
    deadline_ms: float
    offered: int = 0
    completed: int = 0
    ok: int = 0
    timely: int = 0
    failed: int = 0
    unfinished: int = 0
    #: failure classes -> count (timeout / shed / throttled /
    #: circuit_open / error)
    errors: Dict[str, int] = field(default_factory=dict)
    #: per-operation offered / ok counts (consumers like the chaos
    #: invariants need to know how many *sends* the load attempted)
    ops_offered: Dict[str, int] = field(default_factory=dict)
    ops_ok: Dict[str, int] = field(default_factory=dict)
    latency: Monitor = field(default_factory=lambda: Monitor("load"))

    @property
    def goodput_per_s(self) -> float:
        return self.ok / (self.duration_ms / 1e3) if self.duration_ms else 0.0

    @property
    def timely_goodput_per_s(self) -> float:
        return self.timely / (self.duration_ms / 1e3) if self.duration_ms else 0.0

    @property
    def availability(self) -> float:
        done = self.ok + self.failed
        return self.ok / done if done else 1.0

    def p(self, q: float) -> float:
        """Latency percentile (0..100) over *successful* requests."""
        return self.latency.percentile(q)


def classify_error(error: Optional[str]) -> str:
    """Map a failure response's error string to a coarse class."""
    if not error:
        return "error"
    if error.startswith("timeout"):
        return "timeout"
    if error.startswith("throttled"):
        return "throttled"
    if error.startswith("circuit open"):
        return "circuit_open"
    if "shed (accept queue full)" in error:
        return "shed"
    return "error"


class OpenLoopDriver:
    """Pump one arrival process into a pool of bound proxies."""

    def __init__(
        self,
        proxies: Sequence[ServiceProxy],
        arrival: ArrivalProcess,
        config: LoadConfig,
        ops: OpFactory,
    ) -> None:
        if not proxies:
            raise ValueError("need at least one bound proxy")
        self.proxies = list(proxies)
        self.arrival = arrival
        self.config = config
        self.ops = ops
        self.runtime = self.proxies[0].runtime
        self.roster = generate_roster(config.n_users)
        self._zipf = ZipfSampler(len(self.roster), config.zipf_s)
        self._rng = random.Random(f"load:{config.seed}")
        self.result = LoadResult(
            duration_ms=config.duration_ms, deadline_ms=config.deadline_ms
        )
        self.stream: Optional[ArrivalStream] = None
        self._inflight = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> ArrivalStream:
        """Arm the arrival pump; returns its live stream handle."""
        if self.stream is not None:
            raise RuntimeError("driver already started")
        self.stream = self.arrival.drive(
            self.runtime.sim,
            self._on_arrival,
            self.config.duration_ms,
            limit=self.config.max_arrivals,
        )
        return self.stream

    @property
    def drained(self) -> bool:
        """Every arrival has fired and every issued request finished.

        External drivers (the chaos harness) must not quiesce while
        load is still in flight: a send completing during a final
        anti-entropy sweep re-dirties a replica that was already swept.
        """
        return (
            self.stream is not None
            and self.stream.exhausted
            and self._inflight == 0
        )

    def run(self) -> LoadResult:
        """Start, advance the simulator through load + drain, snapshot."""
        sim = self.runtime.sim
        deadline = sim.now + self.config.duration_ms + self.config.drain_ms
        self.start()
        while sim.now < deadline:
            before = sim.now
            sim.run(until=deadline)
            if sim.now == before:  # heap drained early
                break
        self.result.unfinished = self._inflight
        return self.result

    # -- per-arrival machinery ----------------------------------------------
    def _on_arrival(self, _t_ms: float) -> None:
        result = self.result
        result.offered += 1
        user = self.roster[self._zipf.sample(self._rng)]
        proxy = self.proxies[result.offered % len(self.proxies)]
        op, payload, size_bytes = self.ops(self._rng, user, self.roster)
        result.ops_offered[op] = result.ops_offered.get(op, 0) + 1
        self.runtime.sim.process(
            self._issue(proxy, op, payload, size_bytes, user),
            name=f"load:{result.offered}",
        )

    def _issue(
        self,
        proxy: ServiceProxy,
        op: str,
        payload: Dict[str, Any],
        size_bytes: int,
        user: str,
    ) -> Generator[Any, Any, None]:
        sim = self.runtime.sim
        result = self.result
        self._inflight += 1
        t0 = sim.now
        try:
            resp = yield from proxy.request(op, payload, size_bytes, user=user)
        finally:
            self._inflight -= 1
        result.completed += 1
        if resp.ok:
            result.ok += 1
            result.ops_ok[op] = result.ops_ok.get(op, 0) + 1
            elapsed = sim.now - t0
            result.latency.observe(elapsed)
            if elapsed <= self.config.deadline_ms:
                result.timely += 1
        else:
            result.failed += 1
            cls = classify_error(resp.error)
            result.errors[cls] = result.errors.get(cls, 0) + 1
