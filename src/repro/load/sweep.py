"""Load cells and sweeps: goodput-vs-offered-load, graded by the SLO engine.

One *cell* builds a fresh scaled-down mail testbed on the Figure 5
topology, binds a handful of proxies at one site, pumps a seeded
arrival process through the :class:`~repro.load.driver.OpenLoopDriver`,
and reports goodput / timely goodput / latency percentiles plus an
optional SLO verdict and a run signature (the determinism pin).  A
*sweep* runs one cell per offered rate per protection mode and locates
the capacity knee; :func:`run_flash_crowd_pair` is the headline
experiment — the same flash-crowd trace with overload protection off
(goodput collapses past saturation) and on (goodput holds).

The default cell shrinks node CPU by 10x (``node_cpu=100``), which puts
the measured capacity knee near 110 req/s on the default mail mix —
saturation physics at ~1/10th the event count, keeping sweeps and CI
smoke runs fast.

Cells can also run with the autonomic loop closed (``autonomic=True``):
the runtime samples telemetry, detects sustained saturation, and scales
views out across the site's nodes mid-cell (see :mod:`repro.autonomic`);
:func:`run_flash_crowd_pair` then adds a fourth cell — protected *and*
autonomic — whose goodput exceeds the protected-only cell's because
capacity grows instead of merely shedding the excess.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import Observability, use_obs
from ..services.mail.spec import DEFAULT_USERS
from ..services.mail.workload import open_loop_mail_ops
from ..sim.arrivals import ArrivalProcess, FlashCrowdProcess, PoissonProcess
from ..smock import RetryPolicy
from .driver import LoadConfig, LoadResult, OpenLoopDriver

__all__ = [
    "LoadCellResult",
    "LoadSweepResult",
    "FlashCrowdPair",
    "find_knee",
    "run_flash_crowd_pair",
    "run_load_cell",
    "run_load_sweep",
]

#: node CPU capacity for load cells (1/10th of the Figure 5 default:
#: same topology, same chain shape, ~50 req/s Encryptor bottleneck)
LOAD_NODE_CPU = 100.0


@dataclass
class LoadCellResult:
    """Everything one cell reports (flattened for JSON artifacts)."""

    offered_rate_per_s: float
    protection: bool
    arrival: str
    seed: int
    duration_ms: float
    offered: int
    completed: int
    ok: int
    timely: int
    failed: int
    unfinished: int
    errors: Dict[str, int]
    goodput_per_s: float
    timely_goodput_per_s: float
    availability: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    sim_ms: float
    events: int
    retries: int
    timeouts: int
    throttled: int
    overload: Optional[Dict[str, Any]]
    slo_passed: Optional[bool]
    slo_report: Optional[Dict[str, Any]]
    signature: str
    #: autonomic-loop summary (``None`` when the knob is off): actuated
    #: events, raw signal count, and install/retire totals
    autonomic: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form of one cell (nested in sweep/pair artifacts)."""
        return {
            "offered_rate_per_s": self.offered_rate_per_s,
            "protection": self.protection,
            "arrival": self.arrival,
            "seed": self.seed,
            "duration_ms": self.duration_ms,
            "offered": self.offered,
            "completed": self.completed,
            "ok": self.ok,
            "timely": self.timely,
            "failed": self.failed,
            "unfinished": self.unfinished,
            "errors": dict(self.errors),
            "goodput_per_s": self.goodput_per_s,
            "timely_goodput_per_s": self.timely_goodput_per_s,
            "availability": self.availability,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "sim_ms": self.sim_ms,
            "events": self.events,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "throttled": self.throttled,
            "overload": self.overload,
            "slo_passed": self.slo_passed,
            "slo_report": self.slo_report,
            "signature": self.signature,
            "autonomic": self.autonomic,
        }


def _cell_signature(runtime: Any, result: LoadResult, proxies: Sequence[Any]) -> str:
    """Hash the externally observable outcome of one cell (determinism
    pin: same seed + same knobs => same signature)."""
    transport = runtime.transport
    overload = runtime.overload
    payload = {
        "now": runtime.sim.now,
        "events": runtime.sim._seq,
        "counts": [
            result.offered, result.completed, result.ok, result.timely,
            result.failed, result.unfinished,
        ],
        "errors": sorted(result.errors.items()),
        "latencies": list(result.latency.samples),
        "proxies": [(p.retries, p.timeouts, p.throttled) for p in proxies],
        "transport": [
            transport.messages_sent, transport.bytes_sent,
            transport.messages_dropped, transport.messages_duplicated,
            transport.messages_corrupted, transport.messages_reordered,
        ],
        "overload": overload.snapshot() if overload is not None else None,
    }
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]


def _p99_recovery_windows(
    runtime: Any, manager: Any, bound_ms: float, sustain: int = 3
) -> Optional[int]:
    """Telemetry windows from the first scale-out install until the
    ``send_mail`` windowed p99 stayed at/under ``bound_ms`` for
    ``sustain`` consecutive windows (``None`` = never recovered or
    never scaled out)."""
    start = next(
        (
            e.time_ms
            for e in manager.events
            if e.action == "scale_out" and e.installed
        ),
        None,
    )
    sampler = getattr(runtime, "sampler", None)
    if start is None or sampler is None:
        return None
    series = sampler.series("smock.request_sim_ms.p99", op="send_mail")
    interval = sampler.interval_ms or 1.0
    run = 0
    for t_ms, value in series.samples():
        if t_ms < start:
            continue
        if value <= bound_ms:
            run += 1
            if run >= sustain:
                return max(0, round((t_ms - start) / interval))
        else:
            run = 0
    return None


def _evaluate_cell_slo(slo: Any, obs: Observability, runtime: Any):
    from ..obs.slo import SLOSpec, evaluate_slo, load_slo_spec

    spec = load_slo_spec(slo) if isinstance(slo, str) else SLOSpec.from_dict(slo)
    return evaluate_slo(spec, obs.metrics, coherence_stats=runtime.coherence.stats)


def run_load_cell(
    arrival: ArrivalProcess,
    config: Optional[LoadConfig] = None,
    protection: Any = False,
    slo: Any = None,
    site: str = "sandiego",
    n_proxies: int = 5,
    node_cpu: float = LOAD_NODE_CPU,
    retry_policy: Optional[RetryPolicy] = None,
    ops: Any = None,
    label: Optional[str] = None,
    autonomic: Any = False,
    telemetry_interval_ms: Optional[float] = None,
    flight: Any = None,
) -> LoadCellResult:
    """Run one open-loop cell on a fresh testbed.

    ``protection`` passes through to the runtime's
    ``overload_protection`` knob (``False`` / ``True`` /
    :class:`~repro.smock.OverloadConfig`).  ``retry_policy`` is a
    template: each proxy gets its own copy seeded ``seed + i`` so retry
    jitter streams stay independent and reproducible.

    ``autonomic`` passes through to the runtime's autonomic knob
    (``False`` / ``True`` / :class:`~repro.autonomic.AutonomicConfig`);
    when truthy every bound proxy is registered with the autonomic
    manager so scale rounds can rebind it, and the cell result carries
    an ``autonomic`` summary of the actuated decisions.
    ``telemetry_interval_ms`` (sim ms per sample) and ``flight`` (a
    :class:`~repro.obs.flight.FlightRecorder`) pass through unchanged.
    """
    from ..experiments.mail_setup import build_mail_testbed

    config = config or LoadConfig()
    template = retry_policy or RetryPolicy(timeout_ms=2000.0, max_retries=4)
    obs = Observability(tracing=False, metrics=True)
    with use_obs(obs):
        testbed = build_mail_testbed(
            clients_per_site=max(n_proxies, 1),
            node_cpu=node_cpu,
            flush_policy="never",
            users=DEFAULT_USERS,
            overload_protection=protection,
            autonomic=autonomic,
            telemetry_interval_ms=telemetry_interval_ms,
            flight=flight,
        )
        runtime = testbed.runtime
        nodes = testbed.client_nodes(site)[:n_proxies]
        proxies = []
        for i, node in enumerate(nodes):
            user = DEFAULT_USERS[i % len(DEFAULT_USERS)]
            proxy = runtime.run(
                runtime.client_connect(node, {"User": user}), f"connect:{user}"
            )
            proxy.retry_policy = RetryPolicy(
                timeout_ms=template.timeout_ms,
                max_retries=template.max_retries,
                backoff_base_ms=template.backoff_base_ms,
                backoff_factor=template.backoff_factor,
                backoff_cap_ms=template.backoff_cap_ms,
                jitter=template.jitter,
                seed=config.seed + i,
                honor_retry_after=template.honor_retry_after,
            )
            proxies.append(proxy)
            if runtime.autonomic is not None:
                runtime.autonomic.track_access(
                    proxy, runtime.generic_server.accesses[-1]
                )

        driver = OpenLoopDriver(
            proxies, arrival, config, ops or open_loop_mail_ops()
        )
        result = driver.run()

        slo_report = None
        if slo is not None:
            slo_report = _evaluate_cell_slo(slo, obs, runtime)

        autonomic_summary = None
        manager = runtime.autonomic
        if manager is not None:
            # Converge replica state (same sweep the chaos harness runs
            # post-schedule), then grade the invariants the headline
            # claims: no acked update lost, replicas ⊆ primary, and
            # scale-in having consolidated below the peak replica count.
            # (The final count is load-determined, not forced back to the
            # bind-time baseline: the baseline was planned at the spec's
            # declared RequestRate, and if the *measured* steady rate is
            # higher, condition 3 legitimately keeps more views.)
            from ..chaos.harness import _final_sweep
            from ..chaos.invariants import check_convergence

            _final_sweep(runtime)
            directory = runtime.coherence
            autonomic_summary = {
                "events": [e.as_dict() for e in manager.events],
                "signals": len(manager.engine.signals) if manager.engine else 0,
                "suppressed": manager.suppressed,
                "installed": sum(len(e.installed) for e in manager.events),
                "retired": sum(len(e.retired) for e in manager.events),
                "views_final": manager._view_count(),
                "views_peak": manager.views_peak,
                "views_baseline": manager._baseline_views,
                "convergence_violations": check_convergence(runtime),
                "lost_updates": directory.stats.lost_updates,
                "has_lost_buffers": directory.has_lost_buffers,
                "scale_out_at_ms": next(
                    (
                        e.time_ms
                        for e in manager.events
                        if e.action == "scale_out" and e.installed
                    ),
                    None,
                ),
                "p99_windows_to_recover": _p99_recovery_windows(
                    runtime, manager, config.deadline_ms
                ),
            }

        overload = runtime.overload
        return LoadCellResult(
            offered_rate_per_s=float(
                getattr(arrival, "rate_per_s", 0.0) or arrival.peak_rate()
            ),
            protection=bool(protection),
            arrival=label or type(arrival).__name__,
            seed=config.seed,
            duration_ms=config.duration_ms,
            offered=result.offered,
            completed=result.completed,
            ok=result.ok,
            timely=result.timely,
            failed=result.failed,
            unfinished=result.unfinished,
            errors=dict(result.errors),
            goodput_per_s=result.goodput_per_s,
            timely_goodput_per_s=result.timely_goodput_per_s,
            availability=result.availability,
            p50_ms=result.p(50),
            p99_ms=result.p(99),
            p999_ms=result.p(99.9),
            sim_ms=runtime.sim.now,
            events=runtime.sim._seq,
            retries=sum(p.retries for p in proxies),
            timeouts=sum(p.timeouts for p in proxies),
            throttled=sum(p.throttled for p in proxies),
            overload=overload.snapshot() if overload is not None else None,
            slo_passed=None if slo_report is None else slo_report.passed,
            slo_report=None if slo_report is None else slo_report.to_dict(),
            signature=_cell_signature(runtime, result, proxies),
            autonomic=autonomic_summary,
        )


@dataclass
class LoadSweepResult:
    """One goodput-vs-offered-load curve per protection mode."""

    rates: List[float]
    cells: List[LoadCellResult] = field(default_factory=list)

    def curve(self, protection: bool) -> List[LoadCellResult]:
        """The cells of one protection mode, in offered-rate order."""
        return [c for c in self.cells if c.protection == protection]

    def knee(self, protection: bool) -> Optional[float]:
        """The capacity knee (req/s) of one mode's goodput curve —
        the last offered rate before goodput stops tracking load."""
        return find_knee(self.curve(protection))

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the ``load-sweep --output`` artifact)."""
        return {
            "rates": list(self.rates),
            "knee": {
                "unprotected": self.knee(False),
                "protected": self.knee(True),
            },
            "cells": [c.as_dict() for c in self.cells],
        }

    def render(self) -> str:
        """Human-readable sweep table (the ``load-sweep`` output)."""
        lines = [
            f"  {'rate/s':>8} {'prot':>5} {'offered':>8} {'ok':>8} "
            f"{'goodput/s':>10} {'timely/s':>9} {'avail':>6} "
            f"{'p50ms':>8} {'p99ms':>9} {'slo':>5}"
        ]
        for c in self.cells:
            slo = "-" if c.slo_passed is None else ("PASS" if c.slo_passed else "FAIL")
            lines.append(
                f"  {c.offered_rate_per_s:>8.4g} {'on' if c.protection else 'off':>5} "
                f"{c.offered:>8} {c.ok:>8} {c.goodput_per_s:>10.2f} "
                f"{c.timely_goodput_per_s:>9.2f} {c.availability:>6.3f} "
                f"{c.p50_ms:>8.1f} {c.p99_ms:>9.1f} {slo:>5}"
            )
        return "\n".join(lines)


def find_knee(cells: Sequence[LoadCellResult]) -> Optional[float]:
    """The capacity knee of one curve: the smallest offered rate whose
    goodput reaches 95% of the curve's best goodput."""
    if not cells:
        return None
    best = max(c.goodput_per_s for c in cells)
    if best <= 0:
        return None
    for cell in sorted(cells, key=lambda c: c.offered_rate_per_s):
        if cell.goodput_per_s >= 0.95 * best:
            return cell.offered_rate_per_s
    return None  # pragma: no cover - best itself always qualifies


def _sweep_cell_task(task: Tuple) -> LoadCellResult:
    """Top-level (picklable) worker for one sweep cell.

    The arrival process is constructed *inside* the worker from
    ``(rate, index)`` — identical to what the sequential loop builds —
    so parallel and sequential sweeps produce cell-for-cell identical
    signatures.
    """
    rate, index, protection, config, slo, cell_kwargs = task
    arrival = PoissonProcess(rate, seed=config.seed * 1000 + index)
    return run_load_cell(
        arrival,
        config=config,
        protection=protection,
        slo=slo,
        label="poisson",
        **cell_kwargs,
    )


def run_load_sweep(
    rates: Sequence[float],
    modes: Sequence[bool] = (False, True),
    config: Optional[LoadConfig] = None,
    protection: Any = True,
    slo: Any = None,
    parallel: int = 0,
    **cell_kwargs: Any,
) -> LoadSweepResult:
    """One Poisson cell per offered rate per protection mode.

    ``protection`` is what "mode on" means (``True`` or an
    :class:`~repro.smock.OverloadConfig`); mode off always runs the
    bare runtime.  Each cell gets a fresh testbed and an arrival seed
    derived from the config seed and the rate's index, so curves are
    reproducible point by point.

    ``parallel`` > 1 farms the cells out to that many worker processes
    (cells are embarrassingly parallel: each builds its own testbed and
    its arrival seed depends only on the sweep seed and rate index).
    Cell order and signatures are identical to a sequential sweep.
    """
    config = config or LoadConfig()
    sweep = LoadSweepResult(rates=list(rates))
    tasks = [
        (rate, i, protection if mode else False, config, slo, cell_kwargs)
        for mode in modes
        for i, rate in enumerate(rates)
    ]
    if parallel and parallel > 1 and len(tasks) > 1:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        with ctx.Pool(processes=min(parallel, len(tasks))) as pool:
            sweep.cells.extend(pool.map(_sweep_cell_task, tasks))
    else:
        sweep.cells.extend(_sweep_cell_task(task) for task in tasks)
    return sweep


@dataclass
class FlashCrowdPair:
    """The headline cells: one flash-crowd trace, protection off vs on,
    plus a steady pre-knee reference run establishing peak goodput."""

    reference: Optional[LoadCellResult]
    unprotected: LoadCellResult
    protected: LoadCellResult
    #: fourth cell — protection *and* the autonomic loop — present only
    #: when :func:`run_flash_crowd_pair` ran with ``autonomic`` truthy
    autonomic: Optional[LoadCellResult] = None

    @property
    def peak_goodput_per_s(self) -> Optional[float]:
        return self.reference.goodput_per_s if self.reference else None

    @property
    def protected_retention(self) -> Optional[float]:
        """Protected flash goodput as a fraction of peak goodput."""
        peak = self.peak_goodput_per_s
        return self.protected.goodput_per_s / peak if peak else None

    @property
    def unprotected_retention(self) -> Optional[float]:
        peak = self.peak_goodput_per_s
        return self.unprotected.goodput_per_s / peak if peak else None

    @property
    def autonomic_retention(self) -> Optional[float]:
        """Autonomic flash goodput as a fraction of peak goodput (can
        exceed 1.0: scale-out adds capacity beyond the single-chain
        reference)."""
        peak = self.peak_goodput_per_s
        if not peak or self.autonomic is None:
            return None
        return self.autonomic.goodput_per_s / peak

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the flash-mode ``load-sweep --output`` artifact)."""
        return {
            "peak_goodput_per_s": self.peak_goodput_per_s,
            "protected_retention": self.protected_retention,
            "unprotected_retention": self.unprotected_retention,
            "autonomic_retention": self.autonomic_retention,
            "reference": self.reference.as_dict() if self.reference else None,
            "unprotected": self.unprotected.as_dict(),
            "protected": self.protected.as_dict(),
            "autonomic": self.autonomic.as_dict() if self.autonomic else None,
        }


def run_flash_crowd_pair(
    base_rate_per_s: float = 70.0,
    peak_rate_per_s: float = 600.0,
    at_ms: float = 5_000.0,
    ramp_ms: float = 2_000.0,
    hold_ms: float = 12_000.0,
    decay_ms: float = 3_000.0,
    reference_rate_per_s: Optional[float] = 100.0,
    config: Optional[LoadConfig] = None,
    protection: Any = True,
    slo: Any = None,
    autonomic: Any = False,
    flight: Any = None,
    **cell_kwargs: Any,
) -> FlashCrowdPair:
    """Run the same seeded flash-crowd trace unprotected and protected.

    The defaults overload the scaled testbed's measured ~110 req/s knee
    by ~5x for twelve seconds inside a 30 s offered window; the
    reference cell runs steady Poisson just under the knee to define
    "peak goodput".  Unprotected, the retry-amplified backlog outlives
    the flash and goodput collapses to ~25% of peak; protected,
    admission + throttling shed the excess before it reaches a CPU and
    goodput holds near 100% of peak with bounded p99.

    With ``autonomic`` truthy a *fourth* cell runs the same trace with
    protection **and** the autonomic loop: the crowd trips the
    saturation rules, views scale out across the site, and goodput rises
    above the protected-only cell (capacity grows instead of shedding);
    after the crowd decays, scale-in retires the extra replicas.  The
    other three cells are untouched — their signatures stay comparable
    against autonomic-less baselines.

    ``flight`` (a :class:`~repro.obs.FlightRecorder`) attaches to the
    autonomic cell only, so its recording is the scale-out story rather
    than an interleaving of all four cells.
    """
    config = config or LoadConfig()

    def flash() -> FlashCrowdProcess:
        return FlashCrowdProcess(
            base_rate_per_s,
            peak_rate_per_s,
            at_ms=at_ms,
            ramp_ms=ramp_ms,
            hold_ms=hold_ms,
            decay_ms=decay_ms,
            seed=config.seed,
        )

    reference = None
    if reference_rate_per_s is not None:
        reference = run_load_cell(
            PoissonProcess(reference_rate_per_s, seed=config.seed),
            config=config,
            protection=False,
            slo=slo,
            label="reference",
            **cell_kwargs,
        )
    unprotected = run_load_cell(
        flash(), config=config, protection=False, slo=slo,
        label="flash-crowd", **cell_kwargs,
    )
    protected = run_load_cell(
        flash(), config=config, protection=protection, slo=slo,
        label="flash-crowd", **cell_kwargs,
    )
    autonomic_cell = None
    if autonomic:
        autonomic_cell = run_load_cell(
            flash(), config=config, protection=protection, slo=slo,
            label="flash-autonomic", autonomic=autonomic, flight=flight,
            **cell_kwargs,
        )
    return FlashCrowdPair(
        reference=reference, unprotected=unprotected, protected=protected,
        autonomic=autonomic_cell,
    )
