"""Deterministic chaos testing for the Smock runtime.

Seeded fault-plan generation (:mod:`~repro.chaos.plangen`), an
end-to-end harness that drives the mail case study under a generated
schedule (:mod:`~repro.chaos.harness`), and post-quiescence invariant
checks (:mod:`~repro.chaos.invariants`): durability of acked sends,
replica convergence, client re-binding, and same-seed determinism.
"""

from .harness import (
    ChaosCaseConfig,
    ChaosCaseResult,
    check_determinism,
    run_chaos_case,
    run_chaos_sweep,
)
from .invariants import (
    check_all,
    check_convergence,
    check_durability,
    check_rebinding,
)
from .plangen import generate_fault_plan

__all__ = [
    "ChaosCaseConfig",
    "ChaosCaseResult",
    "check_determinism",
    "run_chaos_case",
    "run_chaos_sweep",
    "check_all",
    "check_convergence",
    "check_durability",
    "check_rebinding",
    "generate_fault_plan",
]
