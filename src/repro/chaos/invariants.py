"""Post-quiescence invariant checks for chaos runs.

Each check returns a list of human-readable violation strings (empty =
invariant holds).  They are deliberately *end-state* checks: the harness
runs the workload under a fault schedule, waits for the system to
quiesce (all faults healed, self-healing rounds drained, one final
anti-entropy sweep), and only then asks:

- **durability** — no acknowledged send was lost: every acked send is
  stored at the primary, with at-least-once slack only for sends whose
  ack never reached the client (client-side error, server-side apply).
- **convergence** — every live replica's store is a subset of the
  primary's, no replica still holds dirty (unflushed) updates, and no
  lost buffer remains unreconciled.
- **rebinding** — every tracked client binding points at a fully
  installed chain of live instances on up nodes.
- **lookup failover** (control-plane chaos only) — every re-lookup
  probe rebound through a *surviving* lookup replica, no lookup was
  ever served by a replica whose host was inside its crash window, and
  the failover path was actually exercised.
- **directory recovery** (control-plane chaos only) — the directory
  host's death produced a journal-driven takeover whose rebuilt
  version-vector frontiers match the pre-crash directory's exactly.

Determinism (same seed ⇒ identical run signature) is checked at the
harness level by running the case twice — see
:func:`repro.chaos.harness.check_determinism`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

__all__ = [
    "check_durability",
    "check_convergence",
    "check_rebinding",
    "check_lookup_failover",
    "check_directory_recovery",
    "check_all",
]


def _store_messages(store: Any) -> Dict[str, Set[int]]:
    """user -> msg_ids held in that user's folders, minus ``sent``.

    The sent copy is sender-side bookkeeping filed only where the
    sender already has an account (``MailStore.store``), so whether a
    given store holds one is order-dependent — a replica that created
    the sender's account first legitimately holds a sent copy the
    primary lacks.  Delivery convergence is about the recipient-facing
    folders.
    """
    held: Dict[str, Set[int]] = {}
    for user in store.users():
        box = store.mailbox(user)
        held[user] = {
            msg.msg_id
            for name, folder in box.folders.items()
            if name != "sent"
            for msg in folder
        }
    return held


def check_durability(
    runtime: Any, acked_sends: int, attempted_sends: int
) -> List[str]:
    """No acked send lost; no send applied more than once."""
    violations: List[str] = []
    primary = runtime.instance_of("MailServer")
    stats = runtime.coherence.stats
    stored = primary.store.messages_stored
    if stored + stats.lost_updates < acked_sends:
        violations.append(
            f"durability: {acked_sends} sends acked but only {stored} stored "
            f"at the primary (+{stats.lost_updates} accounted lost)"
        )
    if stored > attempted_sends:
        violations.append(
            f"durability: {stored} messages stored at the primary but only "
            f"{attempted_sends} sends were ever attempted (double-apply)"
        )
    if stats.lost_updates:
        violations.append(
            f"durability: {stats.lost_updates} updates still lost after the "
            f"final anti-entropy sweep (all faults were healed)"
        )
    return violations


def check_convergence(runtime: Any) -> List[str]:
    """Replica stores ⊆ primary store; nothing dirty or lost remains."""
    violations: List[str] = []
    directory = runtime.coherence
    primary = runtime.instance_of("MailServer")
    primary_held = _store_messages(primary.store)
    for instance in runtime.instances.values():
        replica_id = getattr(instance, "replica_id", None)
        if replica_id is None or getattr(instance, "failed", False):
            continue
        store = getattr(instance, "store", None)
        if store is None:
            continue
        for user, held in _store_messages(store).items():
            missing = held - primary_held.get(user, set())
            if missing:
                violations.append(
                    f"convergence: {instance.label} holds {sorted(missing)} "
                    f"for {user} that never reached the primary"
                )
        entry = directory._replicas.get(replica_id)
        if entry is not None and entry.pending_units:
            violations.append(
                f"convergence: {instance.label} still dirty "
                f"({entry.pending_units} pending units) after quiescence"
            )
    if directory.has_lost_buffers:
        violations.append(
            "convergence: lost buffers remain unreconciled after quiescence"
        )
    return violations


def check_rebinding(runtime: Any, replanner: Any) -> List[str]:
    """Every tracked binding resolves to a live, installed chain."""
    violations: List[str] = []
    for binding in replanner.bindings:
        client = binding.request.client_node
        for placement in binding.plan.placements:
            instance = runtime.instances.get(placement.key)
            if instance is None:
                violations.append(
                    f"rebinding: {client} bound to {placement.unit}@"
                    f"{placement.node} which is not installed"
                )
                continue
            if instance.failed:
                violations.append(
                    f"rebinding: {client} bound to failed instance "
                    f"{instance.label}"
                )
            elif not instance.node.up:
                violations.append(
                    f"rebinding: {client} bound to {instance.label} on a "
                    f"down host"
                )
    return violations


def check_lookup_failover(
    runtime: Any,
    reconnects: List[Dict[str, Any]],
    outages: Dict[str, Tuple[float, float]],
) -> List[str]:
    """Clients rebound through a surviving lookup replica.

    ``reconnects`` are the harness's re-lookup probe records (one per
    site, scheduled while the lookup primary is down); ``outages`` maps
    each crashed control-plane host to its ``(crash_ms, restart_ms)``
    window from the fault plan.
    """
    violations: List[str] = []
    lookup = runtime.lookup
    log = getattr(lookup, "lookup_log", None)
    if log is None:
        return ["lookup-failover: runtime is not running a replicated lookup"]
    for rec in reconnects:
        if not rec.get("ok"):
            violations.append(
                f"lookup-failover: client on {rec['node']} never rebound "
                f"({rec.get('error', 'no attempt recorded')})"
            )
    for host in sorted(outages):
        start, end = outages[host]
        served = [
            t for t, _client, serving in log
            if serving == host and start <= t < end
        ]
        if served:
            violations.append(
                f"lookup-failover: {len(served)} lookup(s) served by {host} "
                f"inside its crash window [{start:.0f}ms, {end:.0f}ms)"
            )
    if not lookup.failovers:
        violations.append(
            "lookup-failover: the lookup primary crashed but no lookup "
            "ever failed over to a surviving replica"
        )
    return violations


def check_directory_recovery(runtime: Any, crashed_host: str) -> List[str]:
    """The directory host's death produced a consistent takeover."""
    takeovers = [
        t for t in getattr(runtime, "directory_takeovers", [])
        if t["crashed_host"] == crashed_host
    ]
    if not takeovers:
        return [
            f"directory-recovery: {crashed_host} crashed but no directory "
            f"takeover was recorded"
        ]
    violations: List[str] = []
    for takeover in takeovers:
        report = takeover["report"]
        if report.frontier_mismatches:
            violations.append(
                f"directory-recovery: takeover at "
                f"t={takeover['time_ms']:.0f}ms rebuilt divergent frontiers: "
                f"{report.frontier_mismatches}"
            )
        if takeover["new_host"] == crashed_host:
            violations.append(
                f"directory-recovery: takeover re-elected the crashed host "
                f"{crashed_host}"
            )
    if getattr(runtime.coherence, "journal", None) is None:
        violations.append(
            "directory-recovery: recovered directory has no journal (a "
            "second crash would be unrecoverable)"
        )
    return violations


def check_all(
    runtime: Any, replanner: Any, acked_sends: int, attempted_sends: int
) -> List[str]:
    return (
        check_durability(runtime, acked_sends, attempted_sends)
        + check_convergence(runtime)
        + check_rebinding(runtime, replanner)
    )
