"""Seeded random fault-plan generation.

:func:`generate_fault_plan` turns a seed into a reproducible
:class:`~repro.faults.FaultPlan` over the Figure 5 topology: gateway
crashes paired with restarts, link partitions and site splits paired
with heals, and message-fault windows (drop / delay / duplicate /
reorder / corrupt) on the inter-site links.  Every destructive action is
healed before the horizon, and actions are laid out in disjoint time
slots so no window overlaps another (``FaultPlan.validate`` holds by
construction) and every fault gets a quiet recovery tail.

The primary's host (``newyork-ms``) and the client nodes are never
crashed: the harness invariants assume a durable primary and live
workload drivers — chaos targets the *infrastructure between them*.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..experiments.topology_fig5 import Fig5Topology, SITES
from ..faults import FaultAction, FaultKind, FaultPlan

__all__ = ["generate_fault_plan", "FAULT_MENU"]

#: the kinds a generated plan draws from, with generation weights —
#: infrastructure faults (crash/partition/split) are the interesting
#: recovery cases, message faults exercise dedup/ordering.
FAULT_MENU: Tuple[Tuple[str, int], ...] = (
    (FaultKind.CRASH, 3),
    (FaultKind.PARTITION, 2),
    (FaultKind.SPLIT, 1),
    (FaultKind.DROP, 1),
    (FaultKind.DELAY, 1),
    (FaultKind.DUPLICATE, 2),
    (FaultKind.REORDER, 1),
    (FaultKind.CORRUPT, 1),
)

#: magnitude ranges: probability for drop/duplicate/corrupt, ms for
#: delay/reorder.  Drop and corrupt stay low — every lost request costs
#: a 3 s retry timeout and windows must stay shorter than the client's
#: total retry budget.
_MAGNITUDES = {
    FaultKind.DROP: (0.05, 0.3),
    FaultKind.DELAY: (10.0, 80.0),
    FaultKind.DUPLICATE: (0.1, 0.5),
    FaultKind.REORDER: (10.0, 60.0),
    FaultKind.CORRUPT: (0.05, 0.25),
}


def _site_groups(topology: Fig5Topology, cut_site: str) -> Tuple[Tuple[str, ...], ...]:
    """Split the topology into (cut site) vs (everything else)."""
    inside: List[str] = [topology.gateways[cut_site]] + list(
        topology.clients[cut_site]
    )
    outside: List[str] = []
    for site in SITES:
        if site == cut_site:
            continue
        outside.append(topology.gateways[site])
        outside.extend(topology.clients[site])
    if cut_site == "newyork":
        inside.append(topology.server_node)
    else:
        outside.append(topology.server_node)
    return (tuple(inside), tuple(outside))


def generate_fault_plan(
    seed: int,
    topology: Fig5Topology,
    t0: float = 0.0,
    horizon_ms: float = 60_000.0,
    n_faults: int = 4,
    kinds: Optional[Sequence[str]] = None,
    control_plane_hosts: Optional[Sequence[str]] = None,
) -> FaultPlan:
    """Generate a reproducible fault schedule in ``[t0, t0 + horizon)``.

    The horizon is carved into equal slots; fault *i* lives entirely
    inside slot *i* (injection plus heal/restart), so plans are
    overlap-free and each fault is followed by fault-free time in which
    detection, replanning, and anti-entropy can run.  ``kinds`` narrows
    the menu (e.g. ``["crash"]`` for a crash-only sweep).

    ``control_plane_hosts`` opts into crashing the brain: each named
    host (the lookup primary, the directory host) gets one *scripted*
    crash+restart pair in its own slot, spread evenly through the
    horizon — so a plan always exercises lookup failover and directory
    takeover exactly once per host, at a seed-independent point in the
    schedule, while the random faults keep drawing around them.  The
    scripted hosts are excluded from the random crash population: their
    crashes must not overlap their own recovery.  ``None`` (default)
    leaves the plan byte-identical to before the knob existed.
    """
    if n_faults < 1:
        raise ValueError("n_faults must be >= 1")
    rng = random.Random(("chaos-plan", seed).__repr__())
    menu = [
        (kind, weight)
        for kind, weight in FAULT_MENU
        if kinds is None or kind in kinds
    ]
    if not menu:
        raise ValueError(f"no fault kinds left from {kinds!r}")
    population = [k for k, w in menu for _ in range(w)]

    gateways = [topology.gateways[site] for site in SITES]
    inter_links = [
        tuple(sorted((topology.gateways[a], topology.gateways[b])))
        for i, a in enumerate(SITES)
        for b in SITES[i + 1:]
    ]

    cp_hosts = list(control_plane_hosts or ())
    n_slots = n_faults + len(cp_hosts)
    # Evenly interleave the scripted control-plane slots between the
    # random ones: host i takes slot (i+1)*n/(k+1).
    scripted = {
        (i + 1) * n_slots // (len(cp_hosts) + 1): host
        for i, host in enumerate(cp_hosts)
    }
    if len(scripted) != len(cp_hosts):
        raise ValueError(
            f"{len(cp_hosts)} control-plane hosts collide in "
            f"{n_slots} slots; raise n_faults"
        )
    if cp_hosts:
        gateways = [g for g in gateways if g not in set(cp_hosts)]
        if not gateways:
            population = [k for k in population if k != FaultKind.CRASH]
        if not population:
            raise ValueError(
                "control_plane_hosts covers every gateway and the menu "
                "is crash-only: nothing left to draw randomly"
            )

    plan = FaultPlan(seed=seed)
    slot = horizon_ms / n_slots
    for i in range(n_slots):
        scripted_host = scripted.get(i)
        kind = (
            FaultKind.CRASH if scripted_host is not None
            else rng.choice(population)
        )
        start = t0 + i * slot + rng.uniform(0.05, 0.25) * slot
        duration = rng.uniform(0.3, 0.6) * slot
        end = start + duration
        if scripted_host is not None:
            plan.add(FaultAction(
                kind=FaultKind.CRASH, at_ms=start, node=scripted_host,
            ))
            plan.add(FaultAction(
                kind=FaultKind.RESTART, at_ms=end, node=scripted_host,
            ))
        elif kind == FaultKind.CRASH:
            node = rng.choice(gateways)
            plan.add(FaultAction(kind=FaultKind.CRASH, at_ms=start, node=node))
            plan.add(FaultAction(kind=FaultKind.RESTART, at_ms=end, node=node))
        elif kind == FaultKind.PARTITION:
            link = rng.choice(inter_links)
            plan.add(FaultAction(kind=FaultKind.PARTITION, at_ms=start, link=link))
            plan.add(FaultAction(kind=FaultKind.HEAL, at_ms=end, link=link))
        elif kind == FaultKind.SPLIT:
            groups = _site_groups(topology, rng.choice(SITES))
            plan.add(FaultAction(
                kind=FaultKind.SPLIT, at_ms=start, until_ms=end, groups=groups,
            ))
        else:
            lo, hi = _MAGNITUDES[kind]
            plan.add(FaultAction(
                kind=kind, at_ms=start, until_ms=end,
                link=rng.choice(inter_links), magnitude=rng.uniform(lo, hi),
            ))
    return plan.validate()
