"""Deterministic end-to-end chaos harness.

:func:`run_chaos_case` runs one seeded chaos experiment: build the
Figure 5 mail testbed, enable self-healing, bind one workload client
per site, inject the seed's generated fault schedule
(:func:`~repro.chaos.plangen.generate_fault_plan`), drive the run to
quiescence, perform a final anti-entropy sweep, and evaluate the
:mod:`~repro.chaos.invariants`.  Everything stochastic derives from the
seed, so the same seed reproduces the same run exactly — pinned by the
run *signature*, a hash over every externally observable outcome.

:func:`run_chaos_sweep` maps the harness over many seeds;
:func:`check_determinism` runs one seed twice and compares signatures.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..experiments.mail_setup import build_mail_testbed
from ..experiments.topology_fig5 import SITE_TRUST, SITES
from ..faults import FaultInjector, FaultKind
from ..network import NetworkError
from ..obs import Observability, use_obs
from ..services.mail import DEFAULT_USERS, WorkloadConfig, mail_workload
from ..sim import FaultError
from ..smock import LookupError, RetryPolicy
from .invariants import check_all, check_directory_recovery, check_lookup_failover
from .plangen import generate_fault_plan

__all__ = [
    "ChaosCaseConfig",
    "ChaosCaseResult",
    "run_chaos_case",
    "run_chaos_sweep",
    "check_determinism",
]


@dataclass(frozen=True)
class ChaosCaseConfig:
    """Knobs of one chaos case (everything else derives from ``seed``)."""

    n_sends: int = 30
    n_receives: int = 5
    cluster_size: int = 10
    n_faults: int = 3
    horizon_ms: float = 60_000.0
    #: quiet time after the horizon for detection/replanning to finish
    grace_ms: float = 120_000.0
    flush_policy: str = "count:200"
    clients_per_site: int = 2
    versioned_coherence: bool = True
    kinds: Optional[Sequence[str]] = None
    retry_timeout_ms: float = 3000.0
    max_retries: int = 15
    heartbeat_interval_ms: float = 250.0
    miss_threshold: int = 3
    #: continuous-telemetry knob (None = no sampler; the sampler's tick
    #: events change the event count, so the signature is only
    #: comparable between runs with the same interval — which the
    #: sweep/determinism harness guarantees by sharing one config)
    telemetry_interval_ms: Optional[float] = None
    flight_capacity: int = 512
    #: SLO spec evaluated after the run: "default", a spec-file path,
    #: or an inline mapping (see repro.obs.slo); None skips evaluation
    slo: Optional[Any] = None
    #: load x fault composite: offered open-loop background rate
    #: (req/s) over the fault horizon, multiplexed over the scripted
    #: clients' proxies; None keeps the case byte-identical to the
    #: load-free harness
    load_rate_per_s: Optional[float] = None
    #: arrival shape of the background load ("poisson" or "flash":
    #: a flash crowd peaking at 4x the base rate mid-horizon)
    load_arrival: str = "poisson"
    #: simulated-user roster size for the background load
    load_users: int = 1_000
    #: overload-protection knob passed through to the runtime (False /
    #: True / OverloadConfig); independent of load_rate_per_s so the
    #: composite can run both protected and unprotected
    overload_protection: Any = False
    #: autonomic-loop knob passed through to the runtime (False / True /
    #: AutonomicConfig / kwargs dict).  The manager shares the harness's
    #: self-healing replanner, so scale rounds and failover rounds
    #: interleave through one machinery; pair with load_rate_per_s for a
    #: load x fault x scale composite.  False keeps cases byte-identical
    #: to the autonomic-less harness.
    autonomic: Any = False
    #: control-plane chaos: additionally crash the *brain* — the lookup
    #: primary's host and the coherence-directory host — one scripted
    #: crash+restart each, in their own fault slots (see
    #: :func:`~repro.chaos.plangen.generate_fault_plan`).  Implies two
    #: lookup replicas on the San Diego / Seattle gateways, 15 s leases
    #: (long enough that one missed heartbeat plus one fault window
    #: cannot falsely expire a live service), and the directory journal
    #: on Seattle; schedules one re-lookup probe per site while the
    #: lookup primary is down and evaluates the lookup-failover and
    #: directory-recovery invariants.  ``False`` (default) keeps every
    #: case byte-identical to the control-plane-less harness.
    crash_control_plane: bool = False
    #: control-plane runtime knobs, passed through when set explicitly;
    #: ``crash_control_plane`` raises/overrides them with its own
    #: replicated placement (it needs a surviving replica to fail over
    #: to and a journal to recover from)
    lookup_replicas: int = 1
    lookup_leases: Any = False
    directory_journal: bool = False


@dataclass
class ChaosCaseResult:
    """Outcome of one seeded chaos run."""

    seed: int
    plan: List[str]
    violations: List[str]
    signature: str
    workload_errors: List[str]
    acked_sends: int
    attempted_sends: int
    finished: bool
    stats: Dict[str, Any] = field(default_factory=dict)
    #: flight-recorder ring (recent telemetry samples + fault/violation
    #: events), populated when config.telemetry_interval_ms is set
    flight: Optional[List[Dict[str, Any]]] = None
    flight_dropped: int = 0
    #: evaluated SLO report (dict form), populated when config.slo is set
    slo_report: Optional[Dict[str, Any]] = None
    #: background-load outcome counters, populated when
    #: config.load_rate_per_s is set (load x fault composite)
    load: Optional[Dict[str, Any]] = None
    #: control-plane outcome summary (lookups, failovers, reconnect
    #: probes, directory takeovers), populated when
    #: config.crash_control_plane is set
    control_plane: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.finished and not self.violations


def _signature(
    runtime: Any,
    results: List[Any],
    violations: List[str],
    load: Optional[Dict[str, Any]] = None,
    control_plane: Optional[Dict[str, Any]] = None,
) -> str:
    """Hash every externally observable outcome of the run.

    Message ids are process-global (a fresh run in the same process
    draws different ids), so mailbox contents enter the hash by
    *identity-free* shape: per-user sorted (sender, sensitivity,
    body-length) triples.
    """
    primary = runtime.instance_of("MailServer")
    inboxes = {
        user: sorted(
            (m.sender, m.sensitivity, len(m.body))
            for folder in primary.store.mailbox(user).folders.values()
            for m in folder
        )
        for user in primary.store.users()
    }
    st = runtime.coherence.stats
    transport = runtime.transport
    payload = {
        "now": runtime.sim.now,
        "events": runtime.sim._seq,
        "latencies": [
            (r.user, list(r.send_latency.samples), list(r.receive_latency.samples))
            for r in results
        ],
        "errors": [list(r.errors) for r in results],
        "inboxes": inboxes,
        "coherence": [
            st.local_updates, st.syncs, st.messages_propagated,
            st.invalidations, st.stale_reads, st.lost_updates,
            st.duplicates_rejected, st.degraded_reads, st.degraded_writes,
            st.recovered_updates, st.reconcile_conflicts,
        ],
        "transport": [
            transport.messages_sent, transport.bytes_sent,
            transport.messages_dropped, transport.messages_duplicated,
            transport.messages_corrupted, transport.messages_reordered,
        ],
        "violations": violations,
    }
    if load is not None:
        # Only composites carry this key, so load-free signatures stay
        # comparable with historical ones.
        payload["load"] = load
    if control_plane is not None:
        # Same discipline: only crash_control_plane runs carry this key.
        payload["control_plane"] = control_plane
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _final_sweep(runtime: Any) -> None:
    """Force convergence once the schedule is over: flush every dirty
    live replica upstream, then reconcile any lost buffers.

    Replicas can chain (a view syncing into another view), so one flush
    can re-dirty an upstream replica already swept this round — iterate
    until a full pass leaves nothing dirty (chains are acyclic, so this
    terminates in chain-depth passes; the cap is a hang guard for a
    replica whose flush keeps failing)."""
    directory = runtime.coherence
    for _ in range(8):
        dirty = False
        for instance in list(runtime.instances.values()):
            if getattr(instance, "replica_id", None) is None:
                continue
            if getattr(instance, "failed", False):
                continue
            entry = directory._replicas.get(instance.replica_id)
            if entry is None or not entry.dirty:
                continue
            dirty = True
            try:
                runtime.run(
                    instance._sync(), name=f"chaos-sweep:{instance.label}"
                )
            except (NetworkError, FaultError):
                pass
        if not dirty:
            break
    if directory.versioned and directory.has_lost_buffers:
        directory.reconcile(runtime.sim.now)


def _reconnect_probe(
    runtime: Any,
    node: str,
    start_ms: float,
    deadline_ms: float,
    record: Dict[str, Any],
):
    """Re-lookup the mail service from ``node`` until it succeeds.

    Scheduled while the lookup primary's host is down: success means the
    client rebound through a surviving replica.  Each attempt races a
    2 s timeout; attempts retry every 500 ms until ``deadline_ms`` —
    a probe whose own site gateway is the crashed host stays cut off
    until the restart heals it, and must still get through before the
    deadline.
    """
    sim = runtime.sim
    if sim.now < start_ms:
        yield sim.timeout(start_ms - sim.now)
    attempts = 0
    while True:
        attempts += 1
        attempt = sim.process(
            runtime.lookup.lookup(node, name="mail"),
            name=f"cp-reconnect:{node}",
        )
        try:
            # any_of re-raises a failed child: a replica-host crash or a
            # severed path surfaces here as FaultError/NetworkError.
            yield sim.any_of([attempt, sim.timeout(2_000.0)])
        except (NetworkError, FaultError, LookupError):
            pass
        if attempt.triggered and not attempt.failed:
            record.update(ok=True, at_ms=sim.now, attempts=attempts)
            return
        if sim.now >= deadline_ms:
            error = (
                repr(attempt.value)
                if attempt.triggered and attempt.failed
                else "timed out"
            )
            record.update(
                ok=False, at_ms=sim.now, attempts=attempts, error=error
            )
            return
        yield sim.timeout(500.0)


def run_chaos_case(
    seed: int, config: Optional[ChaosCaseConfig] = None
) -> ChaosCaseResult:
    """Run one seeded chaos experiment end to end."""
    config = config or ChaosCaseConfig()
    obs = Observability(tracing=False, metrics=True)
    flight = None
    if config.telemetry_interval_ms:
        from ..obs.flight import FlightRecorder

        flight = FlightRecorder(capacity=config.flight_capacity)
    cp_mode = bool(config.crash_control_plane)
    lookup_replicas = config.lookup_replicas
    lookup_leases = config.lookup_leases
    directory_journal = config.directory_journal
    lookup_hosts = None
    directory_host = None
    if cp_mode:
        from ..smock import LeaseConfig

        # The brain moves off the mail primary's host: lookup replicas
        # on the San Diego and Seattle gateways, directory on Seattle —
        # all crashable without touching newyork-ms, which the
        # durability invariants require to stay up.
        lookup_hosts = ["sandiego-gw", "seattle-gw"]
        directory_host = "seattle-gw"
        lookup_replicas = max(2, lookup_replicas)
        directory_journal = True
        if not lookup_leases:
            lookup_leases = LeaseConfig(duration_ms=15_000.0)
    with use_obs(obs):
        testbed = build_mail_testbed(
            clients_per_site=config.clients_per_site,
            flush_policy=config.flush_policy,
            versioned_coherence=config.versioned_coherence,
            telemetry_interval_ms=config.telemetry_interval_ms,
            flight=flight,
            overload_protection=config.overload_protection,
            autonomic=config.autonomic,
            lookup_replicas=lookup_replicas,
            lookup_hosts=lookup_hosts,
            lookup_leases=lookup_leases,
            directory_journal=directory_journal,
            directory_host=directory_host,
        )
        runtime = testbed.runtime
        replanner = runtime.enable_self_healing(
            heartbeat_interval_ms=config.heartbeat_interval_ms,
            miss_threshold=config.miss_threshold,
        )

        proxies = []
        for i, site in enumerate(SITES):
            node = testbed.client_nodes(site)[0]
            user = DEFAULT_USERS[i % len(DEFAULT_USERS)]
            proxy = runtime.run(
                runtime.client_connect(node, {"User": user}), f"connect:{user}"
            )
            proxy.retry_policy = RetryPolicy(
                timeout_ms=config.retry_timeout_ms,
                max_retries=config.max_retries,
                seed=seed,
            )
            replanner.track_access(proxy, runtime.generic_server.accesses[-1])
            proxies.append((site, user, proxy))

        t0 = runtime.sim.now
        plan = generate_fault_plan(
            seed,
            testbed.topology,
            t0=t0,
            horizon_ms=config.horizon_ms,
            n_faults=config.n_faults,
            kinds=config.kinds,
            control_plane_hosts=(
                [lookup_hosts[0], directory_host] if cp_mode else None
            ),
        )
        FaultInjector(runtime, plan).schedule()
        if flight is not None:
            for line in plan.describe():
                flight.event("fault_scheduled", t0, spec=line)

        # Control-plane chaos: record each scripted crash window and
        # launch one re-lookup probe per site shortly after the lookup
        # primary dies — proving clients rebind through the survivor.
        cp_reconnects: List[Dict[str, Any]] = []
        cp_outages: Dict[str, Any] = {}
        cp_probes: List[Any] = []
        if cp_mode:
            for host in (lookup_hosts[0], directory_host):
                crash = next(
                    a for a in plan.sorted_actions()
                    if a.kind == FaultKind.CRASH and a.node == host
                )
                restart = next(
                    a for a in plan.sorted_actions()
                    if a.kind == FaultKind.RESTART and a.node == host
                )
                cp_outages[host] = (crash.at_ms, restart.at_ms)
            probe_at = cp_outages[lookup_hosts[0]][0] + 1_500.0
            probe_deadline = probe_at + 30_000.0
            for site in SITES:
                node = testbed.client_nodes(site)[0]
                record: Dict[str, Any] = {"site": site, "node": node}
                cp_reconnects.append(record)
                cp_probes.append(runtime.sim.process(
                    _reconnect_probe(
                        runtime, node, probe_at, probe_deadline, record
                    ),
                    name=f"cp-probe:{site}",
                ))

        users = [user for _s, user, _p in proxies]
        procs = []
        for site, user, proxy in proxies:
            cfg = WorkloadConfig(
                user=user,
                peers=[u for u in users if u != user],
                n_sends=config.n_sends,
                n_receives=config.n_receives,
                cluster_size=config.cluster_size,
                max_sensitivity=SITE_TRUST[site],
                seed=seed,
            )
            procs.append(runtime.sim.process(
                mail_workload(proxy, cfg), name=f"chaos-wl:{user}"
            ))

        # Load x fault composite: pump seeded open-loop background load
        # over the same proxies for the whole fault horizon.  Off by
        # default (None), so plain chaos cases stay byte-identical.
        load_driver = None
        if config.load_rate_per_s is not None:
            from ..load import LoadConfig, OpenLoopDriver
            from ..services.mail.workload import open_loop_mail_ops
            from ..sim.arrivals import FlashCrowdProcess, PoissonProcess

            rate = config.load_rate_per_s
            if config.load_arrival == "flash":
                arrival = FlashCrowdProcess(
                    rate, 4.0 * rate,
                    at_ms=t0 + config.horizon_ms / 3.0,
                    ramp_ms=2_000.0,
                    hold_ms=config.horizon_ms / 6.0,
                    decay_ms=3_000.0,
                    seed=seed,
                )
            elif config.load_arrival == "poisson":
                arrival = PoissonProcess(rate, seed=seed)
            else:
                raise ValueError(
                    f"unknown load_arrival {config.load_arrival!r}"
                )
            load_driver = OpenLoopDriver(
                [proxy for _s, _u, proxy in proxies],
                arrival,
                LoadConfig(
                    duration_ms=config.horizon_ms,
                    drain_ms=config.grace_ms,
                    n_users=config.load_users,
                    seed=seed,
                ),
                open_loop_mail_ops(),
            )
            load_driver.start()

        # The detector/monitor loops never drain the event list: run in
        # slices.  Always advance past the whole fault horizon plus a
        # settle period (every heal/restart fires, detection and the
        # recovery replans run), then keep going up to the grace
        # deadline if a workload is still retrying its way out.
        quiesce_at = t0 + config.horizon_ms + 30_000.0
        deadline = t0 + config.horizon_ms + config.grace_ms
        while runtime.sim.now < deadline:
            if runtime.sim.now >= quiesce_at and all(
                p.triggered for p in procs
            ) and all(
                p.triggered for p in cp_probes
            ) and (load_driver is None or load_driver.drained):
                break
            runtime.sim.run(until=min(runtime.sim.now + 5_000.0, deadline))
        runtime.failure_detector.stop()
        runtime.monitor.stop()
        if hasattr(runtime.lookup, "stop"):
            # The lease-renewal loop is perpetual; stop it so the final
            # sweep's bounded runs see a quiescing event list.
            runtime.lookup.stop()
        _final_sweep(runtime)

        finished = all(p.triggered and not p.failed for p in procs)
        results = [p.value for p in procs if p.triggered and not p.failed]
        errors = [e for r in results for e in r.errors]
        attempted = config.n_sends * len(procs)
        acked = attempted - sum(
            1 for e in errors if e.startswith("send[")
        ) - config.n_sends * (len(procs) - len(results))

        # Background-load sends also land in the primary store: widen
        # the durability bounds by what the load offered (upper) and
        # what it got acked (lower).
        if load_driver is not None:
            lr = load_driver.result
            attempted += lr.ops_offered.get("send_mail", 0)
            acked += lr.ops_ok.get("send_mail", 0)

        violations = [] if not finished else check_all(
            runtime, replanner, acked, attempted
        )
        if finished and cp_mode:
            violations += check_lookup_failover(
                runtime, cp_reconnects, cp_outages
            )
            violations += check_directory_recovery(runtime, directory_host)
        if not finished:
            for p in procs:
                if not p.triggered:
                    violations.append(f"workload {p.name} never finished")
                elif p.failed:
                    violations.append(f"workload {p.name} crashed: {p.value!r}")

        if flight is not None:
            for violation in violations:
                flight.event("violation", runtime.sim.now, detail=violation)

        slo_report = None
        if config.slo is not None:
            from ..obs.slo import SLOSpec, evaluate_slo, load_slo_spec

            spec = (
                load_slo_spec(config.slo)
                if isinstance(config.slo, str)
                else SLOSpec.from_dict(config.slo)
            )
            slo_report = evaluate_slo(
                spec, obs.metrics, coherence_stats=runtime.coherence.stats
            ).to_dict()

        cp_summary = None
        if cp_mode:
            journal = runtime.coherence.journal
            cp_summary = {
                "lookups": runtime.lookup.lookups,
                "failovers": runtime.lookup.failovers,
                "reregistrations": runtime.lookup.reregistrations,
                "reconnects": [
                    [
                        r["site"], r["node"], bool(r.get("ok")),
                        r.get("at_ms"), r.get("attempts"),
                    ]
                    for r in cp_reconnects
                ],
                "takeovers": [
                    [
                        t["time_ms"], t["crashed_host"], t["new_host"],
                        t["report"].frontiers_rebuilt,
                        len(t["report"].frontier_mismatches),
                    ]
                    for t in runtime.directory_takeovers
                ],
                "journal_records": len(journal) if journal is not None else 0,
                "journal_recoveries": (
                    journal.recoveries if journal is not None else 0
                ),
            }

        st = runtime.coherence.stats
        load_summary = None
        if load_driver is not None:
            lr = load_driver.result
            load_summary = {
                "offered": lr.offered,
                "completed": lr.completed,
                "ok": lr.ok,
                "timely": lr.timely,
                "failed": lr.failed,
                "unfinished": load_driver._inflight,
                "errors": dict(sorted(lr.errors.items())),
                "goodput_per_s": lr.goodput_per_s,
                "availability": lr.availability,
            }
        return ChaosCaseResult(
            seed=seed,
            plan=plan.describe(),
            violations=violations,
            signature=_signature(
                runtime, results, violations,
                load=load_summary, control_plane=cp_summary,
            ),
            workload_errors=errors,
            acked_sends=acked,
            attempted_sends=attempted,
            finished=finished,
            stats={
                "syncs": st.syncs,
                "lost_updates": st.lost_updates,
                "recovered_updates": st.recovered_updates,
                "duplicates_rejected": st.duplicates_rejected,
                "degraded_reads": st.degraded_reads,
                "degraded_writes": st.degraded_writes,
                "reconcile_conflicts": st.reconcile_conflicts,
                "retries": sum(p.retries for _s, _u, p in proxies),
                **(
                    {
                        "autonomic_actions": len(runtime.autonomic.events),
                        "autonomic_installed": sum(
                            len(e.installed) for e in runtime.autonomic.events
                        ),
                        "autonomic_retired": sum(
                            len(e.retired) for e in runtime.autonomic.events
                        ),
                    }
                    if runtime.autonomic is not None
                    else {}
                ),
            },
            flight=flight.records() if flight is not None else None,
            flight_dropped=flight.dropped if flight is not None else 0,
            slo_report=slo_report,
            load=load_summary,
            control_plane=cp_summary,
        )


def run_chaos_sweep(
    seeds: Sequence[int], config: Optional[ChaosCaseConfig] = None
) -> List[ChaosCaseResult]:
    """Run one chaos case per seed (the CLI ``chaos-sweep`` backend)."""
    return [run_chaos_case(seed, config) for seed in seeds]


def check_determinism(
    seed: int, config: Optional[ChaosCaseConfig] = None
) -> bool:
    """Same seed ⇒ byte-identical run signature (two fresh runs)."""
    first = run_chaos_case(seed, config)
    second = run_chaos_case(seed, config)
    return first.signature == second.signature
