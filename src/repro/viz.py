"""ASCII rendering of topologies and deployments (Figures 5 and 6).

Pure-text, dependency-free renderers used by the CLI and examples:

- :func:`render_topology` — nodes grouped by a credential (site), links
  with their latency/bandwidth/security annotations;
- :func:`render_deployment` — a plan overlaid on the topology, the text
  analogue of Figure 6's component boxes;
- :func:`render_chain` — one plan as an arrow chain with per-linkage
  path annotations.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional

from .network import Network
from .planner import DeploymentPlan

__all__ = ["render_topology", "render_deployment", "render_chain"]


def _group_nodes(network: Network, group_by: str) -> Dict[str, List[str]]:
    groups: Dict[str, List[str]] = defaultdict(list)
    for node in network.nodes():
        groups[str(node.credentials.get(group_by, "?"))].append(node.name)
    return dict(sorted(groups.items()))


def render_topology(network: Network, group_by: str = "site") -> str:
    """Sites with their nodes, then every link with its annotations."""
    lines: List[str] = []
    groups = _group_nodes(network, group_by)
    for group, nodes in groups.items():
        trust = {
            network.node(n).credentials.get("trust_level") for n in nodes
        } - {None}
        suffix = f"  (trust {sorted(trust)[0]})" if len(trust) == 1 else ""
        lines.append(f"[{group}]{suffix}")
        for name in sorted(nodes):
            node = network.node(name)
            lines.append(f"  o {name}  cpu={node.cpu_capacity:g}")
    lines.append("")
    lines.append("links:")
    for link in sorted(network.links(), key=lambda l: l.name):
        marker = "=====" if link.secure else "~ ~ ~"
        lines.append(
            f"  {link.a:>18s} {marker} {link.b:<18s} "
            f"{link.latency_ms:g} ms / {link.bandwidth_mbps:g} Mb/s"
            + ("" if link.secure else "  [insecure]")
        )
    return "\n".join(lines)


_ABBREV = {
    "MailClient": "MC",
    "ViewMailClient": "VMC",
    "MailServer": "MS",
    "ViewMailServer": "VMS",
    "Encryptor": "E",
    "Decryptor": "D",
}


def _label(placement, abbrev: bool) -> str:
    name = _ABBREV.get(placement.unit, placement.unit) if abbrev else placement.unit
    factors = ",".join(f"{v}" for _k, v in placement.factor_values)
    return f"{name}[{factors}]" if factors else name


def render_deployment(
    network: Network,
    plans: Iterable[DeploymentPlan],
    group_by: str = "site",
    abbrev: bool = True,
) -> str:
    """Plans overlaid on the grouped topology — the Figure 6 picture.

    Components from every plan are attached to their hosting nodes;
    reused placements are marked with ``*``.
    """
    by_node: Dict[str, List[str]] = defaultdict(list)
    for plan in plans:
        for placement in plan.placements:
            tag = _label(placement, abbrev) + ("*" if placement.reused else "")
            if tag not in by_node[placement.node]:
                by_node[placement.node].append(tag)

    lines: List[str] = []
    for group, nodes in _group_nodes(network, group_by).items():
        lines.append(f"[{group}]")
        for name in sorted(nodes):
            deployed = by_node.get(name, [])
            suffix = "  <- " + ", ".join(deployed) if deployed else ""
            lines.append(f"  o {name}{suffix}")
    legend = sorted(
        {f"{abbr}={full}" for full, abbr in _ABBREV.items()}
    ) if abbrev else []
    if legend:
        lines.append("")
        lines.append("legend: " + ", ".join(legend) + ", *=reused")
    return "\n".join(lines)


def render_chain(network: Network, plan: DeploymentPlan, abbrev: bool = False) -> str:
    """One plan as an annotated arrow chain, root first."""
    order = plan.chain_from_root()
    parts: List[str] = []
    for i, placement in enumerate(order):
        parts.append(f"{_label(placement, abbrev)}@{placement.node}")
        if i + 1 < len(order):
            path = network.path(placement.node, order[i + 1].node)
            if path.is_local:
                note = "local"
            else:
                sec = "secure" if path.secure else "INSECURE"
                note = f"{path.latency_ms:g}ms/{path.bandwidth_mbps:g}Mbps {sec}"
            parts.append(f" --[{note}]--> ")
    return "".join(parts)
