"""Dynamic-programming planner for chain-shaped component graphs.

"For the case where all component graphs are chains, an efficient
dynamic programming algorithm is described and evaluated in [13]"
(CANS).  This module reimplements that idea: for each valid linkage
*chain* (from :mod:`repro.planner.linkage`), a DP over
``(chain position, node)`` states finds the minimum-cost placement in
``O(len(chain) * |nodes|^2)`` instead of the exhaustive planner's
exponential search.

Scope and honesty notes:

- Edge validity (conditions 1 and 2) is checked exactly, per pair, like
  the exhaustive planner.
- Traversal probabilities use *unit-level* first-occurrence RRF over the
  chain prefix (node-independent, so states stay memoizable).  When a
  chain repeats a factored view with different configurations the exact
  coverage semantics differ slightly; the returned plan is re-scored
  with the exact objective, so reported scores are always comparable.
- Condition 3 (load) is validated on the completed plan; a chain whose
  optimum violates capacity is discarded rather than re-searched.  The
  exhaustive planner remains the complete reference.
- An installed placement implementing the interface required at any
  position may terminate the chain early (deployment reuse), mirroring
  the exhaustive planner's case (b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..spec import ComponentDef
from .compat import PlanningContext
from .exhaustive import _instantiate, _required_props
from .linkage import LinkageGraph, enumerate_linkage_graphs
from .load import check_loads
from .objectives import ExpectedLatency, Objective
from .plan import (
    DeploymentPlan,
    DeploymentState,
    Placement,
    PlannedLinkage,
    PlanRequest,
)

__all__ = ["plan_dp_chain", "DPStats"]


@dataclass
class DPStats:
    """Instrumentation for the planner-scaling benchmarks."""

    chains_considered: int = 0
    states_evaluated: int = 0
    plans_scored: int = 0


def _chain_probs(ctx: PlanningContext, units: List[str]) -> List[float]:
    """Traversal probability of the edge leaving each chain position."""
    probs: List[float] = []
    p = 1.0
    seen: set = set()
    for name in units:
        unit = ctx.spec.unit(name)
        if name not in seen:
            p *= unit.behaviors.rrf
            seen.add(name)
        probs.append(p)
    return probs


def _finish_plan(
    ctx: PlanningContext,
    request: PlanRequest,
    rate: float,
    objective: Objective,
    placements: List[Placement],
    linkages: List[PlannedLinkage],
) -> Optional[DeploymentPlan]:
    plan = DeploymentPlan(
        placements=placements,
        linkages=linkages,
        root=0,
        client_node=request.client_node,
    )
    report = check_loads(ctx, plan, rate)
    if not report.ok:
        return None
    plan.score = objective.score(ctx, plan, rate, report)
    return plan


def plan_dp_chain(
    ctx: PlanningContext,
    request: PlanRequest,
    state: Optional[DeploymentState] = None,
    objective: Optional[Objective] = None,
    stats: Optional[DPStats] = None,
    max_units: Optional[int] = None,
    max_repeat: int = 2,
) -> Optional[DeploymentPlan]:
    """Best chain-shaped deployment found by per-chain DP."""
    objective = objective or ExpectedLatency()
    state = state or DeploymentState()
    stats = stats if stats is not None else DPStats()
    spec = ctx.spec
    limit = max_units or request.max_units

    rate = request.request_rate
    if rate <= 0:
        roots = spec.implementers_of(request.interface)
        rate = max((u.behaviors.request_rate for u in roots), default=1.0) or 1.0

    def root_acceptable(placement: Placement) -> bool:
        """Client QoS expectations on the requested interface."""
        if not request.required_properties:
            return True
        impl = placement.implemented_props(request.interface)
        if impl is None:
            return False
        if not ctx.reachable(request.client_node, placement.node):
            return False
        env = ctx.path_env(request.client_node, placement.node)
        return ctx.properties_compatible(request.required_properties, impl, env)

    best: Optional[DeploymentPlan] = None
    chains = [
        g
        for g in enumerate_linkage_graphs(
            spec, request.interface, limit, max_repeat, obs=ctx.obs
        )
        if g.is_chain
    ]
    root_nodes = (
        [request.client_node]
        if request.root_on_client
        else [n.name for n in ctx.network.nodes()]
    )
    all_nodes = [n.name for n in ctx.network.nodes()]

    for graph in chains:
        stats.chains_considered += 1
        units = graph.chain_units()
        ifaces = [iface for _c, _s, iface in sorted(graph.edges, key=lambda e: e[0])]
        probs = _chain_probs(ctx, units)
        root_unit = spec.unit(units[0])
        root_extra = objective.root_view_penalty if root_unit.is_view else 0.0

        # DP cells: per position, {placement: (cost, parent_placement)}.
        # A cell's cost is a lower-bound primary (edge + placement costs).
        cells: List[Dict[Placement, Tuple[float, Optional[Placement]]]] = []

        cell0: Dict[Placement, Tuple[float, Optional[Placement]]] = {}
        for node in root_nodes:
            p = _instantiate(ctx, root_unit, node, request.context)
            if p is None or p.implemented_props(request.interface) is None:
                continue
            if not root_acceptable(p):
                continue
            cost = root_extra + objective.placement_cost(ctx, root_unit, node, False)
            cell0[p] = (cost, None)
        for installed in state.implementers_of(request.interface):
            if installed.node in root_nodes and root_acceptable(installed):
                cell0[installed] = (root_extra, None)
        if not cell0:
            continue
        cells.append(cell0)

        completions: List[Tuple[float, List[Placement]]] = []

        def backtrace(cell_idx: int, placement: Placement) -> List[Placement]:
            chain: List[Placement] = [placement]
            i = cell_idx
            cur = placement
            while i > 0:
                cur = cells[i][cur][1]  # type: ignore[index]
                assert cur is not None
                chain.append(cur)
                i -= 1
            chain.reverse()
            return chain

        # Reused roots complete immediately (already wired upstream).
        for placement, (cost, _parent) in cell0.items():
            if placement.reused:
                completions.append((cost, [placement]))

        for i in range(1, len(units)):
            unit = spec.unit(units[i])
            iface = ifaces[i - 1]
            prob = probs[i - 1]
            cell: Dict[Placement, Tuple[float, Optional[Placement]]] = {}

            # Fresh candidates for this position.
            candidates: List[Placement] = []
            for node in all_nodes:
                p = _instantiate(ctx, unit, node, request.context)
                if p is not None and p.implemented_props(iface) is not None:
                    candidates.append(p)
            # Installed candidates (any unit) terminate the chain here.
            installed_candidates = state.implementers_of(iface)

            for prev_place, (prev_cost, _) in cells[i - 1].items():
                if prev_place.reused:
                    continue  # reused placements are already complete
                prev_unit = spec.unit(prev_place.unit)
                required = _required_props(ctx, prev_unit, prev_place.node, iface)
                if required is None:
                    continue

                def compatible(target: Placement) -> bool:
                    impl = target.implemented_props(iface)
                    if impl is None:
                        return False
                    if not ctx.reachable(prev_place.node, target.node):
                        return False
                    env = ctx.path_env(prev_place.node, target.node)
                    return ctx.properties_compatible(required, impl, env)

                for cand in candidates:
                    stats.states_evaluated += 1
                    if cand.key == prev_place.key or not compatible(cand):
                        continue
                    cost = (
                        prev_cost
                        + objective.edge_cost(
                            ctx, prev_unit, prev_place.node, cand.node, prob
                        )
                        + objective.placement_cost(ctx, unit, cand.node, False)
                    )
                    old = cell.get(cand)
                    if old is None or cost < old[0]:
                        cell[cand] = (cost, prev_place)

                for cand in installed_candidates:
                    stats.states_evaluated += 1
                    if not compatible(cand):
                        continue
                    cost = prev_cost + objective.edge_cost(
                        ctx, prev_unit, prev_place.node, cand.node, prob
                    )
                    completions.append(
                        (cost, backtrace(i - 1, prev_place) + [cand])
                    )

            cells.append(cell)
            if not cell:
                break

        # Fresh terminal completions: the chain's last unit requires nothing.
        if len(cells) == len(units):
            for placement, (cost, _) in cells[-1].items():
                if not placement.reused:
                    completions.append((cost, backtrace(len(units) - 1, placement)))

        # Score the cheapest few completions exactly (DP cost is a proxy).
        completions.sort(key=lambda c: c[0])
        for _cost, chain_places in completions[:5]:
            stats.plans_scored += 1
            linkages = [
                PlannedLinkage(j, j + 1, ifaces[j]) for j in range(len(chain_places) - 1)
            ]
            plan = _finish_plan(ctx, request, rate, objective, chain_places, linkages)
            if plan is not None and (best is None or plan.score < best.score):
                best = plan

    return best
