"""Plan data structures shared by every planning algorithm.

A :class:`DeploymentPlan` is the planner's output: a set of component
*placements* (unit -> node, with bound view factors) wired together by
*linkages* (client placement -> server placement over a network path),
rooted at the placement that serves the requesting client.

:class:`DeploymentState` carries already-installed placements between
planning rounds, so later client requests can *reuse* components that
earlier deployments installed (the Figure 6 Seattle deployment links to
the ViewMailServer that the San Diego deployment created).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..network import Network, PathInfo
from ..spec import ComponentDef, SpecError, ViewDef

__all__ = ["Placement", "PlannedLinkage", "DeploymentPlan", "DeploymentState", "PlanRequest"]


@dataclass(frozen=True)
class Placement:
    """One unit instantiated on one node.

    ``factor_values`` is non-empty only for views with ``Factors``
    (e.g. ``ViewMailServer`` bound to ``TrustLevel = 3``).
    ``implemented`` records the fully resolved properties per implemented
    interface, as generated *at this node* (EnvRefs substituted).
    ``reused`` marks placements that already existed before this plan.
    """

    unit: str
    node: str
    factor_values: Tuple[Tuple[str, Any], ...] = ()
    implemented: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()
    reused: bool = False

    @property
    def key(self) -> Tuple[str, str, Tuple[Tuple[str, Any], ...]]:
        """Identity used for reuse matching: unit + node + factors."""
        return (self.unit, self.node, self.factor_values)

    def factors_dict(self) -> Dict[str, Any]:
        return dict(self.factor_values)

    def implemented_props(self, interface: str) -> Optional[Dict[str, Any]]:
        for iface, props in self.implemented:
            if iface == interface:
                return dict(props)
        return None

    def label(self) -> str:
        factors = ",".join(f"{k}={v}" for k, v in self.factor_values)
        suffix = f"[{factors}]" if factors else ""
        return f"{self.unit}{suffix}@{self.node}"

    def __repr__(self) -> str:
        return f"<Placement {self.label()}{' (reused)' if self.reused else ''}>"


def freeze_props(props: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Stable, hashable form of a property bag."""
    return tuple(sorted(props.items()))


def freeze_implemented(
    implemented: Mapping[str, Mapping[str, Any]]
) -> Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]:
    return tuple(sorted((i, freeze_props(p)) for i, p in implemented.items()))


@dataclass(frozen=True)
class PlannedLinkage:
    """A client placement consuming an interface of a server placement."""

    client: int  #: index into DeploymentPlan.placements
    server: int
    interface: str

    def __repr__(self) -> str:
        return f"<Linkage #{self.client} --{self.interface}--> #{self.server}>"


@dataclass
class DeploymentPlan:
    """A complete, validated mapping of a linkage graph onto the network."""

    placements: List[Placement]
    linkages: List[PlannedLinkage]
    root: int  #: placement index serving the client's requested interface
    client_node: str
    score: Tuple[float, ...] = ()
    #: objective diagnostics (expected latency, loads...), for reporting
    metrics: Dict[str, float] = field(default_factory=dict)

    def new_placements(self) -> List[Placement]:
        return [p for p in self.placements if not p.reused]

    def placement_of(self, unit: str) -> List[Placement]:
        return [p for p in self.placements if p.unit == unit]

    def servers_of(self, idx: int) -> List[Tuple[str, int]]:
        """(interface, server placement index) pairs consumed by ``idx``."""
        return [(l.interface, l.server) for l in self.linkages if l.client == idx]

    def clients_of(self, idx: int) -> List[int]:
        return [l.client for l in self.linkages if l.server == idx]

    def chain_from_root(self) -> List[Placement]:
        """Placements in BFS order from the root (stable for display)."""
        order: List[int] = [self.root]
        seen = {self.root}
        i = 0
        while i < len(order):
            for _iface, srv in self.servers_of(order[i]):
                if srv not in seen:
                    seen.add(srv)
                    order.append(srv)
            i += 1
        return [self.placements[i] for i in order]

    def describe(self) -> str:
        """Human-readable multi-line rendering of the plan."""
        lines = [f"plan for client at {self.client_node} (score={self.score}):"]
        for idx, p in enumerate(self.placements):
            marker = " (reused)" if p.reused else ""
            rootmark = " <- root" if idx == self.root else ""
            lines.append(f"  [{idx}] {p.label()}{marker}{rootmark}")
        for l in self.linkages:
            lines.append(
                f"  {self.placements[l.client].label()} --{l.interface}--> "
                f"{self.placements[l.server].label()}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<DeploymentPlan root={self.placements[self.root].label()} "
            f"units={len(self.placements)} score={self.score}>"
        )


class DeploymentState:
    """Installed placements persisting across planning rounds."""

    def __init__(self) -> None:
        self._placements: Dict[Tuple[str, str, Tuple[Tuple[str, Any], ...]], Placement] = {}
        #: steady-state inbound request rate committed per placement key
        self.committed_rates: Dict[Tuple[str, str, Tuple[Tuple[str, Any], ...]], float] = {}

    def add(self, placement: Placement, inbound_rate: float = 0.0) -> Placement:
        """Record a placement as installed; idempotent on identical keys."""
        existing = self._placements.get(placement.key)
        if existing is None:
            stored = replace(placement, reused=True)
            self._placements[placement.key] = stored
            self.committed_rates[placement.key] = inbound_rate
            return stored
        self.committed_rates[placement.key] += inbound_rate
        return existing

    def absorb(self, plan: DeploymentPlan, rates: Optional[Mapping[int, float]] = None) -> None:
        """Install every placement of an accepted plan."""
        for idx, p in enumerate(plan.placements):
            rate = rates.get(idx, 0.0) if rates else 0.0
            self.add(p, rate)

    def clone(self) -> "DeploymentState":
        """Independent copy (placements are frozen and shared).

        Used by incremental replanning to seed a hypothetical state with
        the survivors of a previous plan without touching live state.
        """
        other = DeploymentState()
        other._placements = dict(self._placements)
        other.committed_rates = dict(self.committed_rates)
        return other

    def placements(self) -> List[Placement]:
        return list(self._placements.values())

    def implementers_of(self, interface: str) -> List[Placement]:
        return [
            p
            for p in self._placements.values()
            if p.implemented_props(interface) is not None
        ]

    def __len__(self) -> int:
        return len(self._placements)

    def __contains__(self, key: Tuple[str, str, Tuple[Tuple[str, Any], ...]]) -> bool:
        return key in self._placements

    def __repr__(self) -> str:
        return f"<DeploymentState installed={len(self._placements)}>"


@dataclass
class PlanRequest:
    """A client's request for service access.

    ``context`` carries request-scope properties (the paper's ``User``
    credential that the MailClient ACL checks).  ``request_rate`` is the
    aggregate request rate the deployment must sustain, in requests/sec;
    if zero, the root unit's declared ``RequestRate`` behavior is used.
    """

    interface: str
    client_node: str
    context: Dict[str, Any] = field(default_factory=dict)
    #: client QoS/security expectations on the requested interface: the
    #: root placement's implemented properties (as delivered at the
    #: client's node) must satisfy these, e.g. ``{"Confidentiality": True}``
    required_properties: Dict[str, Any] = field(default_factory=dict)
    request_rate: float = 0.0
    #: search bound: max placements per plan.  6 covers every case-study
    #: chain (client + cache + relay pair + reused upstream) with slack;
    #: raising it grows the exhaustive planner's search exponentially.
    max_units: int = 6
    #: pin the root component onto the client's node (paper's deployments
    #: always run the client component at the client's site)
    root_on_client: bool = True

    def __post_init__(self) -> None:
        if not self.interface:
            raise SpecError("request needs an interface name")
        if self.max_units < 1:
            raise SpecError("max_units must be >= 1")
        if self.request_rate < 0:
            raise SpecError("negative request_rate")
