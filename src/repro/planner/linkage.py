"""Step 1 of planning: enumerating valid component linkage graphs.

"The planner starts off with the interface(s) requested by the client,
and finds components that implement these interface(s).  It then
recurses on each of these components by looking at their required
interfaces, stopping when it encounters a component without any
required interfaces." (§3.3)

Matching here is at the *interface-name* level (the paper's simple
string matching); property compatibility is step 2's business because it
depends on where components land.  Graphs are trees (every required
interface of every unit gets its own provider); component *sharing*
happens at mapping time through placement reuse.

Because views such as ``ViewMailServer`` both implement and require the
same interface, the space is infinite; enumeration is bounded by
``max_units`` per graph and ``max_repeat`` occurrences of one unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..obs import Observability, resolve_obs
from ..spec import ComponentDef, ServiceSpec

__all__ = ["LinkageGraph", "enumerate_linkage_graphs", "valid_chains"]


@dataclass(frozen=True)
class LinkageGraph:
    """One valid linkage tree: unit names plus (client, server, iface) edges.

    Index 0 is always the root (the unit that implements the client's
    requested interface).
    """

    units: Tuple[str, ...]
    edges: Tuple[Tuple[int, int, str], ...]

    @property
    def is_chain(self) -> bool:
        """True when the graph is a simple path rooted at index 0."""
        out_degree: Dict[int, int] = {}
        for client, _server, _iface in self.edges:
            out_degree[client] = out_degree.get(client, 0) + 1
            if out_degree[client] > 1:
                return False
        return True

    def chain_units(self) -> List[str]:
        """Units in root-to-leaf order (chains only)."""
        if not self.is_chain:
            raise ValueError("not a chain")
        nxt = {client: server for client, server, _ in self.edges}
        order = [0]
        while order[-1] in nxt:
            order.append(nxt[order[-1]])
        return [self.units[i] for i in order]

    def __repr__(self) -> str:
        if self.is_chain:
            return "<LinkageGraph " + " -> ".join(self.chain_units()) + ">"
        return f"<LinkageGraph units={list(self.units)} edges={list(self.edges)}>"


def enumerate_linkage_graphs(
    spec: ServiceSpec,
    interface: str,
    max_units: int = 8,
    max_repeat: int = 2,
    obs: Optional[Observability] = None,
) -> List[LinkageGraph]:
    """All bounded linkage trees able to satisfy ``interface``.

    Deterministic order: graphs are produced smallest-first by unit
    count, then by the spec's declaration order.  Enumeration is traced
    as a ``planner.linkage.enumerate`` span and counted under
    ``planner.linkage_graphs_enumerated`` (the cost the paper's §4.1
    measures against ``max_units``).
    """
    obs = resolve_obs(obs)
    with obs.tracer.span(
        "planner.linkage.enumerate", interface=interface, max_units=max_units
    ) as span:
        results = _enumerate(spec, interface, max_units, max_repeat)
        span.set(graphs=len(results))
    obs.metrics.inc("planner.linkage_graphs_enumerated", len(results))
    return results


def _enumerate(
    spec: ServiceSpec, interface: str, max_units: int, max_repeat: int
) -> List[LinkageGraph]:
    results: List[LinkageGraph] = []
    roots = spec.implementers_of(interface)

    def expand(
        units: List[str],
        edges: List[Tuple[int, int, str]],
        frontier: List[Tuple[int, str]],
    ) -> None:
        if not frontier:
            results.append(LinkageGraph(tuple(units), tuple(edges)))
            return
        if len(units) >= max_units and frontier:
            return
        client_idx, iface = frontier[0]
        rest = frontier[1:]
        for provider in spec.implementers_of(iface):
            if units.count(provider.name) >= max_repeat:
                continue
            if len(units) + 1 > max_units:
                continue
            new_idx = len(units)
            units.append(provider.name)
            edges.append((client_idx, new_idx, iface))
            new_frontier = rest + [
                (new_idx, b.interface) for b in provider.requires
            ]
            expand(units, edges, new_frontier)
            units.pop()
            edges.pop()

    for root in roots:
        units = [root.name]
        frontier = [(0, b.interface) for b in root.requires]
        expand(units, [], frontier)

    results.sort(key=lambda g: (len(g.units), g.units))
    return results


def valid_chains(
    spec: ServiceSpec, interface: str, max_units: int = 8, max_repeat: int = 2
) -> List[List[str]]:
    """The chain-shaped subset as unit-name lists (Figure 3's content)."""
    return [
        g.chain_units()
        for g in enumerate_linkage_graphs(spec, interface, max_units, max_repeat)
        if g.is_chain
    ]
