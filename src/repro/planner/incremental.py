"""Incremental replanning: patch a deployment instead of re-deriving it.

After a fault, the previous deployment is mostly still valid — only the
subtree rooted at the failed/overloaded host needs re-solving.  Dearle
et al.'s autonomic-deployment work restarts constraint solving from the
*previous* configuration on failure rather than from zero; this module
does the same for the paper's planner.

:func:`surviving_placements` re-validates the previous plan bottom-up
under the **current** network: a placement survives iff it is still
installable on its (live) node — condition 1 — and every linkage it
makes downstream still reaches a surviving provider whose properties
remain compatible under the current path environment — condition 2.
Re-validating condition 2 matters: a dead *router* reroutes traffic, and
the new path may lose (or gain) Confidentiality, silently invalidating a
linkage between two perfectly healthy endpoints.

:func:`plan_incremental` seeds the search's
:class:`~repro.planner.plan.DeploymentState` with those survivors and
runs the normal algorithm.  Seeding only *adds* reuse candidates (every
search treats installed placements as already-wired providers), so the
seeded search explores a superset of the unseeded one — and with a
branch-and-bound objective the surviving chain yields an early incumbent
that prunes most of the space.  If the seeded search finds nothing, the
plain full search runs as a fallback.

The :class:`~repro.smock.replanner.ReplanManager` applies this only to
*liveness*-triggered rounds (node/link up/down).  Attribute changes
(e.g. a link turning secure, which should retire a crypto pair) replan
from scratch: there the previous structure is exactly what must be
reconsidered, and an early reuse incumbent would be a bias, not a
shortcut.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .compat import PlanningContext
from .exhaustive import _required_props, plan_exhaustive
from .objectives import Objective
from .plan import (
    DeploymentPlan,
    DeploymentState,
    Placement,
    PlannedLinkage,
    PlanRequest,
)

__all__ = ["surviving_placements", "plan_incremental", "graft_survivor_subtrees"]


def surviving_placements(
    ctx: PlanningContext,
    previous: DeploymentPlan,
    context: Optional[Dict[str, Any]] = None,
) -> List[Placement]:
    """Placements of ``previous`` whose whole downstream subtree is
    still valid under the current network.

    Only such placements may seed a new search: the search algorithms
    treat installed placements as *already wired* (their requirements
    are not re-opened), so a survivor must vouch for everything beneath
    it.  Checks per placement:

    - condition 1: the unit still satisfies its installation conditions
      on its node (a dead node fails this immediately);
    - per downstream linkage: the server placement survives, is
      reachable, and its recorded implemented properties still satisfy
      the client's requirements under the *current* path environment
      (condition 2 — rerouting around failures can change it).
    """
    spec = ctx.spec
    verdicts: Dict[int, bool] = {}

    def survives(idx: int) -> bool:
        known = verdicts.get(idx)
        if known is not None:
            return known
        verdicts[idx] = False  # cycle guard (plans are DAGs, but be safe)
        placement = previous.placements[idx]
        unit = spec.unit(placement.unit)
        if not ctx.installable(unit, placement.node, context):
            return False
        for iface, srv_idx in previous.servers_of(idx):
            if not survives(srv_idx):
                return False
            server = previous.placements[srv_idx]
            impl = server.implemented_props(iface)
            if impl is None:
                return False
            if not ctx.reachable(placement.node, server.node):
                return False
            required = _required_props(ctx, unit, placement.node, iface)
            if required is None:
                return False
            env = ctx.path_env(placement.node, server.node)
            if not ctx.properties_compatible(required, impl, env):
                return False
        verdicts[idx] = True
        return True

    return [
        previous.placements[idx]
        for idx in range(len(previous.placements))
        if survives(idx)
    ]


def graft_survivor_subtrees(
    previous: DeploymentPlan,
    plan: DeploymentPlan,
    seeded_keys: Set[Tuple],
) -> DeploymentPlan:
    """Re-attach the downstream wiring of seeded placements a plan reused.

    Every search treats installed placements as *already wired*: when it
    links to one (or roots the plan at one), it records the placement
    alone, not the chain beneath it.  That is correct for permanent
    primaries, but a placement seeded from a previous plan vouches for a
    whole surviving subtree — and a plan that omits it would make the
    replanner retire live, still-needed components.  This walks the
    previous plan's linkages from every seeded placement the new plan
    contains and appends the missing placements (marked ``reused``) and
    linkages in place, so the plan again describes its full wiring.

    Mutates and returns ``plan``.  The plan's ``score`` is left as the
    search computed it (scores are only compared within one search).
    """
    if not seeded_keys:
        return plan
    prev_idx = {p.key: i for i, p in enumerate(previous.placements)}
    new_idx = {p.key: i for i, p in enumerate(plan.placements)}
    existing_links = {
        (plan.placements[l.client].key, plan.placements[l.server].key, l.interface)
        for l in plan.linkages
    }
    queue = [p.key for p in plan.placements if p.key in seeded_keys]
    visited: Set[Tuple] = set()
    while queue:
        key = queue.pop()
        if key in visited:
            continue
        visited.add(key)
        at_prev = prev_idx.get(key)
        if at_prev is None:
            continue
        for iface, srv_prev in previous.servers_of(at_prev):
            server = previous.placements[srv_prev]
            at_new = new_idx.get(server.key)
            if at_new is None:
                at_new = len(plan.placements)
                plan.placements.append(replace(server, reused=True))
                new_idx[server.key] = at_new
            link = (key, server.key, iface)
            if link not in existing_links:
                plan.linkages.append(PlannedLinkage(new_idx[key], at_new, iface))
                existing_links.add(link)
            queue.append(server.key)
    return plan


def plan_incremental(
    ctx: PlanningContext,
    request: PlanRequest,
    state: DeploymentState,
    previous: DeploymentPlan,
    algorithm: Callable[..., Optional[DeploymentPlan]] = plan_exhaustive,
    objective: Optional[Objective] = None,
    installed_keys: Optional[Set[Tuple]] = None,
) -> Tuple[Optional[DeploymentPlan], int]:
    """Re-plan ``request`` seeded from the survivors of ``previous``.

    ``installed_keys``, when given, restricts seeding to placements that
    are actually installed in the runtime right now (a survivor whose
    instance was purged by failover reconciliation must not be offered
    for reuse).  Returns ``(plan_or_None, seeded_count)``; a seeded
    search that comes up empty falls back to the plain full search, so
    the result is never worse than non-incremental replanning.  Plans
    from the seeded search are post-processed by
    :func:`graft_survivor_subtrees` so they describe their full wiring.
    """
    survivors = surviving_placements(ctx, previous, request.context)
    if installed_keys is not None:
        survivors = [p for p in survivors if p.key in installed_keys]
    fresh = [p for p in survivors if p.key not in state]
    if not fresh:
        return algorithm(ctx, request, state, objective), 0
    seeded = state.clone()
    for placement in fresh:
        seeded.add(placement)
    plan = algorithm(ctx, request, seeded, objective)
    if plan is None:
        return algorithm(ctx, request, state, objective), 0
    return graft_survivor_subtrees(previous, plan, {p.key for p in fresh}), len(fresh)
