"""Pairwise linkage validity: the planner's three conditions (§3.3).

For each pair of linked components the planner checks:

1. each component can be *instantiated* in its node environment
   (installation ``Conditions``);
2. the properties of the interface implemented by the 'server' are
   *compatible* with those required by the 'client', after the
   environment's property-modification rules transform them;
3. the expected request traffic does not exceed node/link capacity
   (delegated to :mod:`repro.planner.load`).

:class:`PlanningContext` bundles the spec, network, credential
translator and rule set, and caches node/path environments — the hot
lookups of every search algorithm.

It also *memoizes* the two hot validity checks themselves (the planner
fast path, shared by all three search algorithms):

- condition 2 — :meth:`PlanningContext.properties_compatible`, keyed by
  the frozen (required, implemented, path-environment) property bags;
- condition 1 — :meth:`PlanningContext.installable`, keyed by
  (component, node, request context), i.e. the node's credentials after
  translation.

Both memos (like the environment caches) are invalidated wholesale when
``Network.version`` moves — every topology, liveness, credential or
capacity-reservation change bumps it — so a memoized verdict can never
outlive the network state it was computed against.  Hit/miss counts land
in :class:`ContextCacheStats`, which the :class:`~repro.planner.planner.
Planner` facade exports through the metrics registry.  Pass
``memoize=False`` to evaluate every check directly (the results are
identical either way; the memo is a pure cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..network import CredentialTranslator, Environment, Network, PathInfo
from ..obs import Observability, resolve_obs
from ..spec import (
    ANY,
    ComponentDef,
    InterfaceBinding,
    ServiceSpec,
    ViewDef,
    resolve_env_refs,
    satisfies,
)

__all__ = ["PlanningContext", "CompatError", "ContextCacheStats"]


class CompatError(ValueError):
    """A linkage pair violates one of the validity conditions."""


@dataclass
class ContextCacheStats:
    """Hit/miss accounting for the memoized validity checks.

    ``uncacheable`` counts evaluations whose property values were not
    hashable (the memo silently steps aside for those);
    ``invalidations`` counts wholesale flushes caused by a network
    version change.
    """

    compat_hits: int = 0
    compat_misses: int = 0
    install_hits: int = 0
    install_misses: int = 0
    uncacheable: int = 0
    invalidations: int = 0


def _freeze_bag(props: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Hashable form of a property bag (raises TypeError if values aren't)."""
    frozen = tuple(sorted(props.items()))
    hash(frozen)
    return frozen


@dataclass
class PlanningContext:
    """Everything a planning algorithm needs to evaluate mappings."""

    spec: ServiceSpec
    network: Network
    translator: CredentialTranslator
    #: observability bundle shared by every algorithm using this context
    obs: Optional[Observability] = None
    #: memoize the condition-1/condition-2 checks (pure cache: results
    #: are identical with it off, every search just re-evaluates)
    memoize: bool = True

    def __post_init__(self) -> None:
        self.obs = resolve_obs(self.obs)
        self._node_env_cache: Dict[str, Dict[str, Any]] = {}
        self._path_env_cache: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self._implements_cache: Dict[Tuple[str, str], Dict[str, Dict[str, Any]]] = {}
        self._requires_cache: Dict[Tuple[str, str], List[Tuple[str, Dict[str, Any]]]] = {}
        self._compat_cache: Dict[Tuple, bool] = {}
        self._install_cache: Dict[Tuple, bool] = {}
        self.cache_stats = ContextCacheStats()
        self._net_version = self.network.version

    # -- environments -------------------------------------------------------
    def _check_version(self) -> None:
        if self.network.version != self._net_version:
            self._node_env_cache.clear()
            self._path_env_cache.clear()
            self._implements_cache.clear()
            self._requires_cache.clear()
            self._compat_cache.clear()
            self._install_cache.clear()
            self.cache_stats.invalidations += 1
            self._net_version = self.network.version

    def node_env(self, node: str, context: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Service properties of a node (credential-translated), merged
        with request-scope context if given."""
        self._check_version()
        base = self._node_env_cache.get(node)
        if base is None:
            base = dict(self.translator.node_environment(self.network.node(node)).values)
            self._node_env_cache[node] = base
        if not context:
            return base
        merged = dict(base)
        merged.update(context)
        return merged

    def path_env(self, src: str, dst: str) -> Dict[str, Any]:
        """Service properties of the path between two nodes."""
        self._check_version()
        key = (src, dst)
        env = self._path_env_cache.get(key)
        if env is None:
            path = self.network.path(src, dst)
            env = dict(self.translator.path_environment(path).values)
            self._path_env_cache[key] = env
            self._path_env_cache[(dst, src)] = env
        return env

    def path(self, src: str, dst: str) -> PathInfo:
        return self.network.path(src, dst)

    def reachable(self, src: str, dst: str) -> bool:
        """Is there any route between the nodes?  Planners must skip
        candidate pairs that a partition separates."""
        return self.network.connected(src, dst)

    # -- condition 1: installability -------------------------------------------
    def installable(
        self,
        unit: ComponentDef,
        node: str,
        context: Optional[Mapping[str, Any]] = None,
    ) -> bool:
        """Can ``unit`` be instantiated on ``node`` (install conditions)?

        A node the failure detector has declared dead hosts nothing —
        this is the single gate through which every search algorithm's
        candidate enumeration excludes failed hosts during failover
        replanning.

        Memoized per (component, node, request context); the memo is
        flushed whenever the network version moves (liveness flips bump
        it, so a dead node can never serve a stale ``True``).
        """
        if not self.memoize:
            return self._installable_eval(unit, node, context)
        self._check_version()
        stats = self.cache_stats
        try:
            key = (unit.name, node, _freeze_bag(context) if context else None)
        except TypeError:
            stats.uncacheable += 1
            return self._installable_eval(unit, node, context)
        verdict = self._install_cache.get(key)
        if verdict is not None:
            stats.install_hits += 1
            return verdict
        stats.install_misses += 1
        verdict = self._installable_eval(unit, node, context)
        self._install_cache[key] = verdict
        return verdict

    def _installable_eval(
        self,
        unit: ComponentDef,
        node: str,
        context: Optional[Mapping[str, Any]] = None,
    ) -> bool:
        if not self.network.node(node).up:
            return False
        env = self.node_env(node, context)
        return unit.installable_in(env)

    def resolve_factors(self, unit: ComponentDef, node: str) -> Dict[str, Any]:
        """Bind a view's Factors against the node environment (empty for
        plain components)."""
        if isinstance(unit, ViewDef) and unit.factors:
            return resolve_env_refs(unit.factors, self.node_env(node))
        return {}

    def resolved_implements(
        self, unit: ComponentDef, node: str
    ) -> Dict[str, Dict[str, Any]]:
        """Implemented-interface properties as generated on ``node``.

        ``Node.X`` references resolve against the node environment,
        overridden by the view's bound factor values (a configured
        ``ViewMailServer`` exposes its *factor* trust level).
        Cached per (unit, node) — these are hot lookups in every search.
        """
        self._check_version()
        key = (unit.name, node)
        cached = self._implements_cache.get(key)
        if cached is not None:
            return cached
        env = dict(self.node_env(node))
        env.update({k: v for k, v in self.resolve_factors(unit, node).items() if v is not None})
        resolved = {
            b.interface: resolve_env_refs(b.properties, env) for b in unit.implements
        }
        self._implements_cache[key] = resolved
        return resolved

    def resolved_requires(
        self, unit: ComponentDef, node: str
    ) -> List[Tuple[str, Dict[str, Any]]]:
        """Required-interface properties as demanded from ``node``."""
        self._check_version()
        key = (unit.name, node)
        cached = self._requires_cache.get(key)
        if cached is not None:
            return cached
        env = dict(self.node_env(node))
        env.update({k: v for k, v in self.resolve_factors(unit, node).items() if v is not None})
        resolved = [
            (b.interface, resolve_env_refs(b.properties, env)) for b in unit.requires
        ]
        self._requires_cache[key] = resolved
        return resolved

    # -- condition 2: property compatibility ----------------------------------
    def match_mode(self, prop: str) -> str:
        pdef = self.spec.properties.get(prop)
        return pdef.match_mode if pdef is not None else "exact"

    def transform_through_env(
        self, implemented: Mapping[str, Any], env: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """Apply the service's property-modification rules for a path env."""
        return self.spec.rules.transform(implemented, env)

    def properties_compatible(
        self,
        required: Mapping[str, Any],
        implemented: Mapping[str, Any],
        env: Mapping[str, Any],
    ) -> bool:
        """Does ``implemented`` (transformed by ``env``) satisfy ``required``?

        The implemented property set must be a *superset*: every required
        property must be present (or implemented as ANY) and its
        environment-transformed value must satisfy the requirement under
        the property's match mode.

        Memoized by the frozen (required, implemented, env) bags — the
        same triple recurs constantly across search branches because the
        planner revisits identical (interface properties, path
        environment) pairs from different partial deployments.  The memo
        is flushed with the environment caches on any network change.
        """
        if not self.memoize:
            return self._compatible_eval(required, implemented, env)
        self._check_version()
        stats = self.cache_stats
        try:
            key = (_freeze_bag(required), _freeze_bag(implemented), _freeze_bag(env))
        except TypeError:
            stats.uncacheable += 1
            return self._compatible_eval(required, implemented, env)
        verdict = self._compat_cache.get(key)
        if verdict is not None:
            stats.compat_hits += 1
            return verdict
        stats.compat_misses += 1
        verdict = self._compatible_eval(required, implemented, env)
        self._compat_cache[key] = verdict
        return verdict

    def _compatible_eval(
        self,
        required: Mapping[str, Any],
        implemented: Mapping[str, Any],
        env: Mapping[str, Any],
    ) -> bool:
        if not required:
            return True
        delivered = self.transform_through_env(implemented, env)
        for prop, req_value in required.items():
            actual = delivered.get(prop)
            if prop not in implemented:
                # Missing from the implementation: not vouched for.
                actual = None
            if not satisfies(req_value, actual, self.match_mode(prop)):
                return False
        return True

    def linkage_compatible(
        self,
        client_unit: ComponentDef,
        client_node: str,
        server_unit: ComponentDef,
        server_node: str,
        interface: str,
    ) -> bool:
        """Full condition-2 check for one candidate linkage."""
        server_impl = self.resolved_implements(server_unit, server_node).get(interface)
        if server_impl is None:
            return False
        for req_iface, req_props in self.resolved_requires(client_unit, client_node):
            if req_iface != interface:
                continue
            env = self.path_env(client_node, server_node)
            if self.properties_compatible(req_props, server_impl, env):
                return True
        return False
