"""Global objectives steering plan selection (§3.3).

"Of the ones that remain, the planner picks the one that optimizes a
global objective (maximum capacity, minimum deployment cost, etc.)."

Scores are tuples compared lexicographically, **lower is better**.
Every objective appends the same deterministic tie-breakers after its
primary terms: number of view units (prefer full-featured components
when otherwise equal), number of *new* placements (prefer reuse), total
placements, and a stable textual key — so planning is reproducible
across runs and algorithms.

Objectives with ``supports_pruning`` expose per-edge / per-placement
additive, non-negative partial costs that branch-and-bound search uses
as a lower bound.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..spec import ComponentDef
from .compat import PlanningContext
from .load import LoadReport, compute_loads
from .plan import DeploymentPlan

__all__ = [
    "Objective",
    "ExpectedLatency",
    "DeploymentCost",
    "MaxCapacity",
    "tie_breakers",
]


def tie_breakers(ctx: PlanningContext, plan: DeploymentPlan) -> Tuple[float, ...]:
    """Deterministic secondary terms shared by all objectives."""
    n_views = sum(1 for p in plan.placements if ctx.spec.unit(p.unit).is_view)
    n_new = len(plan.new_placements())
    return (float(n_views), float(n_new), float(len(plan.placements)))


def _stable_key(plan: DeploymentPlan) -> float:
    """A tiny deterministic perturbation from the placement labels.

    Uses crc32, not ``hash()``: string hashing is randomized per process
    and would make tie-broken plans differ across runs.
    """
    text = "|".join(sorted(p.label() for p in plan.placements))
    return (zlib.crc32(text.encode()) % 997) * 1e-12


class Objective:
    """Base objective; subclasses implement :meth:`score`."""

    name = "abstract"
    supports_pruning = False
    #: penalty (in primary-score units) for serving the client through a
    #: *view* root: an object view restricts functionality, so a plan
    #: rooted at one is only chosen when no full-featured component can
    #: install at the client's site (Figure 6: Seattle gets
    #: ViewMailClient only because MailClient's conditions fail there).
    root_view_penalty = 1e6

    @property
    def cache_key(self) -> Tuple:
        """Hashable identity used by :class:`~repro.planner.cache.
        PlanCache` keys.  Subclasses with constructor parameters that
        change scoring must extend this tuple."""
        return (self.name,)

    def root_penalty(self, ctx: PlanningContext, plan: DeploymentPlan) -> float:
        root_unit = ctx.spec.unit(plan.placements[plan.root].unit)
        return self.root_view_penalty if root_unit.is_view else 0.0

    def score(
        self,
        ctx: PlanningContext,
        plan: DeploymentPlan,
        request_rate: float,
        report: Optional[LoadReport] = None,
    ) -> Tuple[float, ...]:
        raise NotImplementedError

    # -- optional incremental costs for branch-and-bound -------------------
    def edge_cost(
        self,
        ctx: PlanningContext,
        client_unit: ComponentDef,
        client_node: str,
        server_node: str,
        traversal_prob: float,
    ) -> float:
        """Additive lower-bound contribution of one linkage (>= 0)."""
        return 0.0

    def placement_cost(
        self, ctx: PlanningContext, unit: ComponentDef, node: str, reused: bool
    ) -> float:
        """Additive lower-bound contribution of one placement (>= 0)."""
        return 0.0


def round_trip_ms(
    ctx: PlanningContext, client_unit: ComponentDef, client_node: str, server_node: str
) -> float:
    """Analytic request/response round trip for one linkage."""
    path = ctx.path(client_node, server_node)
    b = client_unit.behaviors
    return (
        path.transfer_time_ms(b.bytes_per_request)
        + path.transfer_time_ms(b.bytes_per_response)
    )


class ExpectedLatency(Objective):
    """Expected client-perceived per-request latency, in ms.

    Each linkage contributes ``traversal_probability x round_trip``,
    where the traversal probability is the product of the RRFs of the
    components above it (a cache with RRF 0.2 shields 80% of requests
    from its upstream links) — plus per-request CPU service time at the
    serving node.
    """

    name = "expected_latency"
    supports_pruning = True

    def edge_cost(
        self,
        ctx: PlanningContext,
        client_unit: ComponentDef,
        client_node: str,
        server_node: str,
        traversal_prob: float,
    ) -> float:
        return traversal_prob * round_trip_ms(ctx, client_unit, client_node, server_node)

    def placement_cost(
        self, ctx: PlanningContext, unit: ComponentDef, node: str, reused: bool
    ) -> float:
        node_info = ctx.network.node(node)
        return unit.behaviors.cpu_per_request / node_info.cpu_capacity * 1e3

    def score(
        self,
        ctx: PlanningContext,
        plan: DeploymentPlan,
        request_rate: float,
        report: Optional[LoadReport] = None,
    ) -> Tuple[float, ...]:
        if report is None:
            report = compute_loads(ctx, plan, max(request_rate, 1.0))
        base_rate = max(report.inbound.get(plan.root, 0.0), 1e-12)
        total = 0.0
        # Linkage latencies weighted by traversal probability.
        for (client, server, _iface), rate in report.linkage_rates.items():
            prob = rate / base_rate
            client_unit = ctx.spec.unit(plan.placements[client].unit)
            total += prob * round_trip_ms(
                ctx, client_unit, plan.placements[client].node, plan.placements[server].node
            )
        # CPU service time at each placement, weighted by visit probability.
        for idx, placement in enumerate(plan.placements):
            prob = report.inbound.get(idx, 0.0) / base_rate
            unit = ctx.spec.unit(placement.unit)
            node = ctx.network.node(placement.node)
            total += prob * unit.behaviors.cpu_per_request / node.cpu_capacity * 1e3
        plan.metrics["expected_latency_ms"] = total
        total += self.root_penalty(ctx, plan)
        return (total, *tie_breakers(ctx, plan), _stable_key(plan))


class DeploymentCost(Objective):
    """Primary: time to ship code bundles for *new* placements, in ms.

    Models the one-time cost of remote installation: each new placement
    transfers its code bundle from the service's home node (where the
    generic server holds the component code base) to the target node.
    Expected latency is appended as a secondary criterion so ties choose
    the best-performing of the cheapest deployments.
    """

    name = "deployment_cost"
    supports_pruning = True

    def __init__(self, home_node: str, latency: Optional[ExpectedLatency] = None) -> None:
        self.home_node = home_node
        self._latency = latency or ExpectedLatency()

    @property
    def cache_key(self) -> Tuple:
        return (self.name, self.home_node)

    def placement_cost(
        self, ctx: PlanningContext, unit: ComponentDef, node: str, reused: bool
    ) -> float:
        if reused:
            return 0.0
        if node == self.home_node:
            return 0.0
        path = ctx.path(self.home_node, node)
        return path.transfer_time_ms(unit.behaviors.code_size_bytes)

    def score(
        self,
        ctx: PlanningContext,
        plan: DeploymentPlan,
        request_rate: float,
        report: Optional[LoadReport] = None,
    ) -> Tuple[float, ...]:
        cost = sum(
            self.placement_cost(ctx, ctx.spec.unit(p.unit), p.node, p.reused)
            for p in plan.placements
        )
        plan.metrics["deployment_cost_ms"] = cost
        cost += self.root_penalty(ctx, plan)
        latency_score = self._latency.score(ctx, plan, request_rate, report)
        return (cost, latency_score[0], *tie_breakers(ctx, plan), _stable_key(plan))


class MaxCapacity(Objective):
    """Primary: maximize sustainable request rate (scored as negative).

    The bottleneck is the smallest ratio of remaining capacity to
    per-unit-load across components, nodes and links; higher headroom is
    better, so the score term is its negation.  Not prunable (headroom
    is a min, not an additive sum).
    """

    name = "max_capacity"
    supports_pruning = False

    def score(
        self,
        ctx: PlanningContext,
        plan: DeploymentPlan,
        request_rate: float,
        report: Optional[LoadReport] = None,
    ) -> Tuple[float, ...]:
        probe = max(request_rate, 1.0)
        if report is None or not report.inbound:
            report = compute_loads(ctx, plan, probe)
        headroom = float("inf")
        for idx, placement in enumerate(plan.placements):
            unit = ctx.spec.unit(placement.unit)
            per_req = report.inbound.get(idx, 0.0) / probe
            if per_req > 0 and unit.behaviors.capacity != float("inf"):
                headroom = min(headroom, unit.behaviors.capacity / per_req)
        for node_name, demand in report.node_cpu.items():
            per_req = demand / probe
            if per_req > 0:
                headroom = min(headroom, ctx.network.node(node_name).free_cpu / per_req)
        by_name = {l.name: l for l in ctx.network.links()}
        for link_name, mbps in report.link_mbps.items():
            per_req = mbps / probe
            if per_req > 0:
                headroom = min(headroom, by_name[link_name].free_mbps / per_req)
        if headroom == float("inf"):
            headroom = 1e18
        plan.metrics["capacity_req_s"] = headroom
        return (
            -headroom + self.root_penalty(ctx, plan),
            *tie_breakers(ctx, plan),
            _stable_key(plan),
        )
