"""The planner's load model (condition 3, §3.3).

"Condition 3 computes the expected load on the involved node(s) and link
by scaling the input request rate with the work performed by the
component on behalf of each request (for the node load), and the
component's RRF (for the link load)."

Given a plan and the client request rate, :func:`compute_loads` derives:

- per-placement inbound request rates (the root sees the client rate;
  each linkage below a component carries ``inbound * RRF``);
- per-node CPU demand (work-units/sec);
- per-link bit rates (requests + responses, each hop of each path).

:func:`check_loads` compares those against node capacity, component
capacity, and link bandwidth, returning the violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .compat import PlanningContext
from .plan import DeploymentPlan

__all__ = ["LoadReport", "compute_loads", "check_loads", "config_of", "config_covered"]


def config_of(plan: DeploymentPlan, idx: int):
    """The content identity of a placement: unit name + bound factors.

    Two replicas with the same configuration hold the same (subset of)
    state, so a request that already passed through one cannot be
    absorbed by another — RRF applies only at the *first* occurrence of
    a configuration along the path from the root.
    """
    p = plan.placements[idx]
    return (p.unit, p.factor_values)


def config_covered(ctx: PlanningContext, seen: frozenset, cfg) -> bool:
    """Is ``cfg``'s content already covered by a traversed configuration?

    A view configuration covers another of the *same unit* when every
    factor dominates under the factor property's match ordering: with
    ``TrustLevel`` declared AtLeast, a ``ViewMailServer[TrustLevel=3]``
    (storing sensitivity <= 3) covers ``ViewMailServer[TrustLevel=2]``.
    A request stream that already traversed the superset view finds
    nothing extra in the subset replica, so its RRF does not apply —
    this is the paper's remark that "in practice we expect [RRF's] value
    to depend on the service properties" made concrete.
    """
    if cfg in seen:
        return True
    unit, factors = cfg
    for seen_unit, seen_factors in seen:
        if seen_unit != unit or len(seen_factors) != len(factors):
            continue
        seen_map = dict(seen_factors)
        dominated = True
        for prop, value in factors:
            seen_value = seen_map.get(prop)
            if seen_value is None:
                dominated = False
                break
            mode = ctx.match_mode(prop)
            if mode == "at_least":
                ok = seen_value >= value
            elif mode == "at_most":
                ok = seen_value <= value
            else:
                ok = seen_value == value
            if not ok:
                dominated = False
                break
        if dominated:
            return True
    return False


@dataclass
class LoadReport:
    """Computed steady-state loads of a deployment plan."""

    #: inbound requests/sec per placement index
    inbound: Dict[int, float] = field(default_factory=dict)
    #: requests/sec carried per linkage (client, server, interface)
    linkage_rates: Dict[Tuple[int, int, str], float] = field(default_factory=dict)
    #: CPU work-units/sec demanded per node
    node_cpu: Dict[str, float] = field(default_factory=dict)
    #: megabits/sec carried per physical link name
    link_mbps: Dict[str, float] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def compute_loads(
    ctx: PlanningContext, plan: DeploymentPlan, request_rate: float
) -> LoadReport:
    """Propagate the client request rate through the plan's linkages."""
    report = LoadReport()
    inbound: Dict[int, float] = {i: 0.0 for i in range(len(plan.placements))}
    inbound[plan.root] = request_rate

    # DFS from the root, carrying the set of view configurations already
    # traversed: a component's RRF reduces flow only the first time its
    # configuration appears on the path (see config_of).  Plans are
    # acyclic by construction, so recursion terminates.
    out_edges: Dict[int, List] = {}
    for link in plan.linkages:
        out_edges.setdefault(link.client, []).append(link)

    def propagate(idx: int, rate: float, seen: frozenset) -> None:
        inbound[idx] = inbound.get(idx, 0.0) + rate
        cfg = config_of(plan, idx)
        if config_covered(ctx, seen, cfg):
            out_rate = rate  # a covered replica absorbs nothing more
            seen = seen | {cfg}
        else:
            out_rate = rate * ctx.spec.unit(plan.placements[idx].unit).behaviors.rrf
            seen = seen | {cfg}
        for link in out_edges.get(idx, ()):
            key = (link.client, link.server, link.interface)
            report.linkage_rates[key] = report.linkage_rates.get(key, 0.0) + out_rate
            propagate(link.server, out_rate, seen)

    inbound[plan.root] = 0.0
    propagate(plan.root, request_rate, frozenset())

    report.inbound = inbound

    # Node CPU demand.
    for idx, placement in enumerate(plan.placements):
        unit = ctx.spec.unit(placement.unit)
        demand = inbound[idx] * unit.behaviors.cpu_per_request
        report.node_cpu[placement.node] = report.node_cpu.get(placement.node, 0.0) + demand

    # Link traffic: every hop of every linkage path carries the messages.
    for (client, server, _iface), rate in report.linkage_rates.items():
        client_unit = ctx.spec.unit(plan.placements[client].unit)
        bytes_round = (
            client_unit.behaviors.bytes_per_request
            + client_unit.behaviors.bytes_per_response
        )
        mbps = rate * bytes_round * 8 / 1e6
        path = ctx.path(plan.placements[client].node, plan.placements[server].node)
        for hop in path.hops:
            report.link_mbps[hop.name] = report.link_mbps.get(hop.name, 0.0) + mbps

    return report


def check_loads(
    ctx: PlanningContext, plan: DeploymentPlan, request_rate: float
) -> LoadReport:
    """Compute loads and record capacity violations (condition 3)."""
    report = compute_loads(ctx, plan, request_rate)

    # Component capacity.
    for idx, placement in enumerate(plan.placements):
        unit = ctx.spec.unit(placement.unit)
        rate = report.inbound.get(idx, 0.0)
        if rate > unit.behaviors.capacity:
            report.violations.append(
                f"component {placement.label()} over capacity: "
                f"{rate:.1f} > {unit.behaviors.capacity:.1f} req/s"
            )

    # Node CPU.
    for node_name, demand in report.node_cpu.items():
        node = ctx.network.node(node_name)
        if demand > node.free_cpu:
            report.violations.append(
                f"node {node_name} over CPU: {demand:.1f} > {node.free_cpu:.1f} units/s"
            )

    # Link bandwidth.
    by_name = {l.name: l for l in ctx.network.links()}
    for link_name, mbps in report.link_mbps.items():
        link = by_name[link_name]
        if mbps > link.free_mbps:
            report.violations.append(
                f"link {link_name} over bandwidth: {mbps:.2f} > {link.free_mbps:.2f} Mb/s"
            )

    return report
