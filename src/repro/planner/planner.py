"""High-level planning facade used by the Smock runtime.

Owns the :class:`PlanningContext`, the persistent
:class:`DeploymentState`, and capacity reservations: when a plan is
*committed*, its steady-state CPU and bandwidth demands are reserved on
the network model so later plans see reduced free capacity (condition 3
across successive client requests).

The facade also owns the planner **fast path**: a
:class:`~repro.planner.cache.PlanCache` consulted by
:meth:`Planner.run_search` before any algorithm runs (a repeated client
bind against an unchanged world returns the stored plan in O(1)), and
the memoized validity checks inside :class:`PlanningContext`.  Both are
pure caches — disable them (``plan_cache=False``, ``memoize=False``)
and every produced plan is byte-identical, just slower.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..network import CredentialTranslator, Network
from ..obs import Observability, resolve_obs
from ..spec import ComponentDef, ServiceSpec
from .cache import PlanCache
from .compat import PlanningContext
from .dp_chain import DPStats, plan_dp_chain
from .exhaustive import SearchStats, _instantiate, plan_exhaustive
from .load import LoadReport, check_loads, compute_loads
from .objectives import ExpectedLatency, Objective
from .partial_order import CSPStats, plan_partial_order
from .plan import DeploymentPlan, DeploymentState, Placement, PlanRequest

__all__ = ["Planner", "PlanningError", "ALGORITHMS"]


class PlanningError(RuntimeError):
    """No deployment satisfying all constraints exists."""


ALGORITHMS: Dict[str, Callable[..., Optional[DeploymentPlan]]] = {
    "exhaustive": plan_exhaustive,
    "dp_chain": plan_dp_chain,
    "partial_order": plan_partial_order,
}

#: per-algorithm instrumentation record types (externally registered
#: algorithms simply run without a stats object)
STATS_FACTORIES: Dict[str, Callable[[], Any]] = {
    "exhaustive": SearchStats,
    "dp_chain": DPStats,
    "partial_order": CSPStats,
}


class Planner:
    """The framework's planning module (paper §3.3).

    The facade every caller (Smock runtime, replanner, CLI, benchmarks)
    goes through.  It holds:

    - :attr:`ctx` — the :class:`PlanningContext` (spec + network +
      credential translator + memoized validity checks) shared by all
      algorithms;
    - :attr:`state` — the :class:`DeploymentState` of already-installed
      placements that later plans may reuse;
    - :attr:`plan_cache` — the :class:`~repro.planner.cache.PlanCache`
      consulted before any search runs.

    Parameters
    ----------
    objective:
        Global objective steering plan selection; defaults to
        :class:`~repro.planner.objectives.ExpectedLatency`.
    algorithm:
        Default search algorithm, one of :data:`ALGORITHMS`
        (``"exhaustive"``, ``"dp_chain"``, ``"partial_order"``).
    plan_cache:
        ``None`` (default) creates a private :class:`PlanCache`;
        ``False`` disables plan caching; an explicit :class:`PlanCache`
        instance may be shared across planners over the same network.
    memoize:
        Toggles the :class:`PlanningContext` validity-check memos.
    """

    def __init__(
        self,
        spec: ServiceSpec,
        network: Network,
        translator: CredentialTranslator,
        objective: Optional[Objective] = None,
        algorithm: str = "exhaustive",
        obs: Optional[Observability] = None,
        plan_cache: Union[PlanCache, None, bool] = None,
        memoize: bool = True,
    ) -> None:
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of {sorted(ALGORITHMS)}"
            )
        self.obs = resolve_obs(obs)
        self.ctx = PlanningContext(
            spec, network, translator, obs=self.obs, memoize=memoize
        )
        self.state = DeploymentState()
        self.objective = objective or ExpectedLatency()
        self.algorithm = algorithm
        if plan_cache is None or plan_cache is True:
            plan_cache = PlanCache()
        elif plan_cache is False:
            plan_cache = None
        self.plan_cache: Optional[PlanCache] = plan_cache
        #: instrumentation record of the most recent :meth:`plan` call
        #: (``None`` when the plan cache answered without a search)
        self.last_stats: Optional[Any] = None
        self._flushed_cache_stats: Dict[str, Dict[str, int]] = {}

    @property
    def spec(self) -> ServiceSpec:
        return self.ctx.spec

    @property
    def network(self) -> Network:
        return self.ctx.network

    # -- bootstrap -----------------------------------------------------------
    def preinstall(self, unit_name: str, node: str) -> Placement:
        """Register an already-running component (e.g. the primary
        MailServer the service operator stood up in New York)."""
        unit = self.spec.unit(unit_name)
        placement = _instantiate(self.ctx, unit, node, {})
        if placement is None:
            raise PlanningError(
                f"{unit_name!r} does not satisfy its installation conditions on {node!r}"
            )
        return self.state.add(placement)

    # -- planning ---------------------------------------------------------------
    def run_search(
        self,
        request: PlanRequest,
        state: Optional[DeploymentState] = None,
        algorithm: Optional[str] = None,
        objective: Optional[Objective] = None,
        stats: Optional[Any] = None,
    ) -> Tuple[Optional[DeploymentPlan], bool]:
        """Run one search through the plan cache.

        The single entry point every plan computation goes through
        (:meth:`plan`, and the replanner's per-binding re-solves): looks
        up the :attr:`plan_cache` under the network's current topology
        epoch, and only on a miss invokes the search algorithm — then
        stores the result, including *failures*, so a repeated
        unsatisfiable request is also O(1).

        Returns ``(plan_or_None, from_cache)``.  ``state`` defaults to
        the planner's own installed state; pass an explicit one to
        search a hypothetical world (the replanner's seeded states).
        """
        algo = algorithm or self.algorithm
        fn = ALGORITHMS[algo]
        obj = objective or self.objective
        search_state = self.state if state is None else state
        cache = self.plan_cache
        key = None
        if cache is not None:
            obj_key = getattr(obj, "cache_key", None) or (type(obj).__name__,)
            key = cache.key_for(algo, obj_key, request, search_state)
            if key is not None:
                epoch = self.network.state_fingerprint()
                found, plan = cache.lookup(epoch, key)
                if found:
                    self._flush_cache_metrics()
                    return plan, True
        if stats is not None:
            plan = fn(self.ctx, request, search_state, obj, stats=stats)
        else:
            plan = fn(self.ctx, request, search_state, obj)
        if cache is not None and key is not None:
            cache.store(self.network.state_fingerprint(), key, plan)
        self._flush_cache_metrics()
        return plan, False

    def _flush_cache_metrics(self) -> None:
        """Export fast-path counter deltas to the metrics registry.

        The hot loops keep plain integer counters
        (:class:`~repro.planner.compat.ContextCacheStats`,
        :class:`~repro.planner.cache.PlanCacheStats`); this flushes their
        growth since the previous flush as ``planner.ctx_cache.*`` and
        ``planner.plan_cache.*`` metrics, once per search.
        """
        m = self.obs.metrics
        if not m.enabled:
            return
        sources = [("planner.ctx_cache", dataclasses.asdict(self.ctx.cache_stats))]
        if self.plan_cache is not None:
            sources.append(
                ("planner.plan_cache", dataclasses.asdict(self.plan_cache.stats))
            )
        for prefix, snap in sources:
            prev = self._flushed_cache_stats.get(prefix, {})
            for counter_name, value in snap.items():
                delta = value - prev.get(counter_name, 0)
                if delta:
                    m.inc(f"{prefix}.{counter_name}", delta)
            self._flushed_cache_stats[prefix] = snap

    def plan(
        self,
        request: PlanRequest,
        algorithm: Optional[str] = None,
        objective: Optional[Objective] = None,
    ) -> DeploymentPlan:
        """Compute the best deployment for ``request``.

        Consults the plan cache first (see :meth:`run_search`); on a
        hit, :attr:`last_stats` is ``None`` because no search ran.
        Raises :class:`PlanningError` when no valid mapping exists.
        """
        algo = algorithm or self.algorithm
        obs = self.obs
        stats_factory = STATS_FACTORIES.get(algo)
        stats = stats_factory() if stats_factory is not None else None
        with obs.tracer.span(
            "planner.plan",
            interface=request.interface,
            client_node=request.client_node,
            algorithm=algo,
        ) as span:
            t0 = time.perf_counter()
            plan, from_cache = self.run_search(
                request, algorithm=algo, objective=objective, stats=stats
            )
            wall_ms = (time.perf_counter() - t0) * 1e3
            span.set(found=plan is not None, cached=from_cache)
        self.last_stats = None if from_cache else stats
        if obs.metrics.enabled:
            m = obs.metrics
            if stats is not None and not from_cache:
                for counter_name, value in dataclasses.asdict(stats).items():
                    if value:
                        m.inc(f"planner.{counter_name}", value, algorithm=algo)
            m.observe("planner.plan_wall_ms", wall_ms, algorithm=algo)
            m.inc(
                "planner.plans_computed" if plan is not None
                else "planner.plans_failed",
                1,
                algorithm=algo,
            )
        if plan is None:
            raise PlanningError(
                f"no valid deployment for {request.interface!r} "
                f"at {request.client_node!r}"
            )
        return plan

    def replan_incremental(
        self,
        request: PlanRequest,
        previous: DeploymentPlan,
        state: Optional[DeploymentState] = None,
        installed_keys: Optional[set] = None,
        algorithm: Optional[str] = None,
    ) -> Optional[DeploymentPlan]:
        """Re-plan one binding seeded from its previous plan's survivors.

        The cache-aware counterpart of :func:`~repro.planner.incremental.
        plan_incremental`: the seeded (and, on fallback, the plain)
        search both go through :meth:`run_search`, so repeated
        fault-triggered replans of identical bindings hit the plan
        cache.  Emits ``planner.incremental.*`` counters.
        """
        from .incremental import graft_survivor_subtrees, surviving_placements

        base = self.state if state is None else state
        survivors = surviving_placements(self.ctx, previous, request.context)
        if installed_keys is not None:
            survivors = [p for p in survivors if p.key in installed_keys]
        fresh = [p for p in survivors if p.key not in base]
        m = self.obs.metrics
        if not fresh:
            plan, _ = self.run_search(request, state=base, algorithm=algorithm)
            return plan
        seeded = base.clone()
        for placement in fresh:
            seeded.add(placement)
        plan, _ = self.run_search(request, state=seeded, algorithm=algorithm)
        if plan is not None:
            m.inc("planner.incremental.rounds")
            m.inc("planner.incremental.seeded_placements", len(fresh))
            return graft_survivor_subtrees(
                previous, plan, {p.key for p in fresh}
            )
        m.inc("planner.incremental.fallbacks")
        plan, _ = self.run_search(request, state=base, algorithm=algorithm)
        return plan

    def commit(self, plan: DeploymentPlan, request_rate: float = 0.0) -> LoadReport:
        """Accept a plan: install its placements and reserve capacity."""
        if request_rate <= 0:
            root_unit = self.spec.unit(plan.placements[plan.root].unit)
            request_rate = root_unit.behaviors.request_rate or 1.0
        report = compute_loads(self.ctx, plan, request_rate)

        for node_name, demand in report.node_cpu.items():
            self.network.node(node_name).reserved_cpu += demand
        by_name = {l.name: l for l in self.network.links()}
        for link_name, mbps in report.link_mbps.items():
            by_name[link_name].reserved_mbps += mbps
        self.network.touch()

        self.state.absorb(plan, report.inbound)
        self.obs.metrics.inc("planner.commits")
        return report

    def plan_and_commit(
        self, request: PlanRequest, algorithm: Optional[str] = None
    ) -> Tuple[DeploymentPlan, LoadReport]:
        plan = self.plan(request, algorithm)
        report = self.commit(plan, request.request_rate)
        return plan, report

    def what_if(
        self,
        request: PlanRequest,
        mutate: Callable[[Network], None],
        algorithm: Optional[str] = None,
    ) -> Optional[DeploymentPlan]:
        """Plan against a hypothetical network without touching live state.

        ``mutate`` receives a deep snapshot of the network and applies
        the hypothesis (a link upgrade, a node loss...).  Returns the
        plan the current deployment state would yield under that
        hypothesis, or None if none exists — the live network, caches
        and reservations are untouched.  Useful for capacity questions
        ("would a VPN on this link retire the crypto pair?") before
        committing to infrastructure changes.
        """
        snapshot = self.ctx.network.snapshot()
        mutate(snapshot)
        snapshot.touch()
        hypothetical = PlanningContext(
            self.spec, snapshot, self.ctx.translator, obs=self.obs,
            memoize=self.ctx.memoize,
        )
        fn = ALGORITHMS[algorithm or self.algorithm]
        return fn(hypothetical, request, self.state, self.objective)

    def plan_interfaces(
        self,
        interfaces: List[str],
        client_node: str,
        context: Optional[Dict[str, Any]] = None,
        request_rate: float = 0.0,
        algorithm: Optional[str] = None,
    ) -> List[DeploymentPlan]:
        """Satisfy a client request "for one or more service interfaces".

        Each interface is planned and committed in turn against shared
        deployment state, so the deployments reuse each other's
        components — the paper's reading of multi-interface requests as
        one client attaching to several facets of a service.  Raises
        :class:`PlanningError` on the first unsatisfiable interface
        (already-committed interfaces stay deployed).
        """
        plans = []
        for interface in interfaces:
            request = PlanRequest(
                interface=interface,
                client_node=client_node,
                context=dict(context or {}),
                request_rate=request_rate,
            )
            plan, _report = self.plan_and_commit(request, algorithm)
            plans.append(plan)
        return plans
