"""High-level planning facade used by the Smock runtime.

Owns the :class:`PlanningContext`, the persistent
:class:`DeploymentState`, and capacity reservations: when a plan is
*committed*, its steady-state CPU and bandwidth demands are reserved on
the network model so later plans see reduced free capacity (condition 3
across successive client requests).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..network import CredentialTranslator, Network
from ..obs import Observability, resolve_obs
from ..spec import ComponentDef, ServiceSpec
from .compat import PlanningContext
from .dp_chain import DPStats, plan_dp_chain
from .exhaustive import SearchStats, _instantiate, plan_exhaustive
from .load import LoadReport, check_loads, compute_loads
from .objectives import ExpectedLatency, Objective
from .partial_order import CSPStats, plan_partial_order
from .plan import DeploymentPlan, DeploymentState, Placement, PlanRequest

__all__ = ["Planner", "PlanningError", "ALGORITHMS"]


class PlanningError(RuntimeError):
    """No deployment satisfying all constraints exists."""


ALGORITHMS: Dict[str, Callable[..., Optional[DeploymentPlan]]] = {
    "exhaustive": plan_exhaustive,
    "dp_chain": plan_dp_chain,
    "partial_order": plan_partial_order,
}

#: per-algorithm instrumentation record types (externally registered
#: algorithms simply run without a stats object)
STATS_FACTORIES: Dict[str, Callable[[], Any]] = {
    "exhaustive": SearchStats,
    "dp_chain": DPStats,
    "partial_order": CSPStats,
}


class Planner:
    """The framework's planning module (paper §3.3)."""

    def __init__(
        self,
        spec: ServiceSpec,
        network: Network,
        translator: CredentialTranslator,
        objective: Optional[Objective] = None,
        algorithm: str = "exhaustive",
        obs: Optional[Observability] = None,
    ) -> None:
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of {sorted(ALGORITHMS)}"
            )
        self.obs = resolve_obs(obs)
        self.ctx = PlanningContext(spec, network, translator, obs=self.obs)
        self.state = DeploymentState()
        self.objective = objective or ExpectedLatency()
        self.algorithm = algorithm
        #: instrumentation record of the most recent :meth:`plan` call
        self.last_stats: Optional[Any] = None

    @property
    def spec(self) -> ServiceSpec:
        return self.ctx.spec

    @property
    def network(self) -> Network:
        return self.ctx.network

    # -- bootstrap -----------------------------------------------------------
    def preinstall(self, unit_name: str, node: str) -> Placement:
        """Register an already-running component (e.g. the primary
        MailServer the service operator stood up in New York)."""
        unit = self.spec.unit(unit_name)
        placement = _instantiate(self.ctx, unit, node, {})
        if placement is None:
            raise PlanningError(
                f"{unit_name!r} does not satisfy its installation conditions on {node!r}"
            )
        return self.state.add(placement)

    # -- planning ---------------------------------------------------------------
    def plan(
        self,
        request: PlanRequest,
        algorithm: Optional[str] = None,
        objective: Optional[Objective] = None,
    ) -> DeploymentPlan:
        """Compute the best deployment for ``request``.

        Raises :class:`PlanningError` when no valid mapping exists.
        """
        algo = algorithm or self.algorithm
        fn = ALGORITHMS[algo]
        obs = self.obs
        stats_factory = STATS_FACTORIES.get(algo)
        stats = stats_factory() if stats_factory is not None else None
        with obs.tracer.span(
            "planner.plan",
            interface=request.interface,
            client_node=request.client_node,
            algorithm=algo,
        ) as span:
            t0 = time.perf_counter()
            if stats is not None:
                plan = fn(
                    self.ctx, request, self.state, objective or self.objective,
                    stats=stats,
                )
            else:
                plan = fn(self.ctx, request, self.state, objective or self.objective)
            wall_ms = (time.perf_counter() - t0) * 1e3
            span.set(found=plan is not None)
        self.last_stats = stats
        if obs.metrics.enabled:
            m = obs.metrics
            if stats is not None:
                for counter_name, value in dataclasses.asdict(stats).items():
                    if value:
                        m.inc(f"planner.{counter_name}", value, algorithm=algo)
            m.observe("planner.plan_wall_ms", wall_ms, algorithm=algo)
            m.inc(
                "planner.plans_computed" if plan is not None
                else "planner.plans_failed",
                1,
                algorithm=algo,
            )
        if plan is None:
            raise PlanningError(
                f"no valid deployment for {request.interface!r} "
                f"at {request.client_node!r}"
            )
        return plan

    def commit(self, plan: DeploymentPlan, request_rate: float = 0.0) -> LoadReport:
        """Accept a plan: install its placements and reserve capacity."""
        if request_rate <= 0:
            root_unit = self.spec.unit(plan.placements[plan.root].unit)
            request_rate = root_unit.behaviors.request_rate or 1.0
        report = compute_loads(self.ctx, plan, request_rate)

        for node_name, demand in report.node_cpu.items():
            self.network.node(node_name).reserved_cpu += demand
        by_name = {l.name: l for l in self.network.links()}
        for link_name, mbps in report.link_mbps.items():
            by_name[link_name].reserved_mbps += mbps
        self.network.touch()

        self.state.absorb(plan, report.inbound)
        self.obs.metrics.inc("planner.commits")
        return report

    def plan_and_commit(
        self, request: PlanRequest, algorithm: Optional[str] = None
    ) -> Tuple[DeploymentPlan, LoadReport]:
        plan = self.plan(request, algorithm)
        report = self.commit(plan, request.request_rate)
        return plan, report

    def what_if(
        self,
        request: PlanRequest,
        mutate: Callable[[Network], None],
        algorithm: Optional[str] = None,
    ) -> Optional[DeploymentPlan]:
        """Plan against a hypothetical network without touching live state.

        ``mutate`` receives a deep snapshot of the network and applies
        the hypothesis (a link upgrade, a node loss...).  Returns the
        plan the current deployment state would yield under that
        hypothesis, or None if none exists — the live network, caches
        and reservations are untouched.  Useful for capacity questions
        ("would a VPN on this link retire the crypto pair?") before
        committing to infrastructure changes.
        """
        snapshot = self.ctx.network.snapshot()
        mutate(snapshot)
        snapshot.touch()
        hypothetical = PlanningContext(
            self.spec, snapshot, self.ctx.translator, obs=self.obs
        )
        fn = ALGORITHMS[algorithm or self.algorithm]
        return fn(hypothetical, request, self.state, self.objective)

    def plan_interfaces(
        self,
        interfaces: List[str],
        client_node: str,
        context: Optional[Dict[str, Any]] = None,
        request_rate: float = 0.0,
        algorithm: Optional[str] = None,
    ) -> List[DeploymentPlan]:
        """Satisfy a client request "for one or more service interfaces".

        Each interface is planned and committed in turn against shared
        deployment state, so the deployments reuse each other's
        components — the paper's reading of multi-interface requests as
        one client attaching to several facets of a service.  Raises
        :class:`PlanningError` on the first unsatisfiable interface
        (already-committed interfaces stay deployed).
        """
        plans = []
        for interface in interfaces:
            request = PlanRequest(
                interface=interface,
                client_node=client_node,
                context=dict(context or {}),
                request_rate=request_rate,
            )
            plan, _report = self.plan_and_commit(request, algorithm)
            plans.append(plan)
        return plans
