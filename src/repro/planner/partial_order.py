"""Constraint-solver planner for general component graphs.

"To support such applications [represented as a directed component
graph], we are developing a partial-order based constraint solver
modeled after AI planning tools such as IPP" (§3.3).  This module
realizes that future-work planner as a CSP:

- enumerate bounded linkage graphs (trees/DAG skeletons) for the
  requested interface;
- per graph, solve a constraint-satisfaction problem whose variables are
  graph vertices and whose domains are candidate placements (fresh
  placements passing condition 1, plus installed placements from the
  deployment state);
- binary constraints are condition-2 compatibility along each edge;
  search uses minimum-remaining-values ordering with forward checking
  and branch-and-bound on the objective's additive lower bound;
- complete assignments are load-checked (condition 3) and scored.

Unlike the DP planner this handles components with multiple required
interfaces (fan-out), and unlike the exhaustive planner its search is
structured per linkage graph with constraint propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .compat import PlanningContext
from .exhaustive import _instantiate, _required_props
from .linkage import LinkageGraph, enumerate_linkage_graphs
from .load import check_loads
from .objectives import ExpectedLatency, Objective
from .plan import (
    DeploymentPlan,
    DeploymentState,
    Placement,
    PlannedLinkage,
    PlanRequest,
)

__all__ = ["plan_partial_order", "CSPStats"]


@dataclass
class CSPStats:
    """Instrumentation for comparison benchmarks."""

    graphs_considered: int = 0
    assignments_tried: int = 0
    forward_prunes: int = 0
    bound_prunes: int = 0


def plan_partial_order(
    ctx: PlanningContext,
    request: PlanRequest,
    state: Optional[DeploymentState] = None,
    objective: Optional[Objective] = None,
    stats: Optional[CSPStats] = None,
    max_repeat: int = 2,
) -> Optional[DeploymentPlan]:
    """Best deployment over all bounded linkage graphs, solved as CSPs."""
    objective = objective or ExpectedLatency()
    state = state or DeploymentState()
    stats = stats if stats is not None else CSPStats()
    spec = ctx.spec

    rate = request.request_rate
    if rate <= 0:
        roots = spec.implementers_of(request.interface)
        rate = max((u.behaviors.request_rate for u in roots), default=1.0) or 1.0

    root_nodes = (
        [request.client_node]
        if request.root_on_client
        else [n.name for n in ctx.network.nodes()]
    )
    all_nodes = [n.name for n in ctx.network.nodes()]

    best: Optional[DeploymentPlan] = None
    prune = objective.supports_pruning

    graphs = enumerate_linkage_graphs(
        spec, request.interface, request.max_units, max_repeat, obs=ctx.obs
    )

    def root_acceptable(placement: Placement) -> bool:
        """Client QoS expectations on the requested interface."""
        if not request.required_properties:
            return True
        impl = placement.implemented_props(request.interface)
        if impl is None:
            return False
        if not ctx.reachable(request.client_node, placement.node):
            return False
        env = ctx.path_env(request.client_node, placement.node)
        return ctx.properties_compatible(request.required_properties, impl, env)

    # Reused root: a single installed placement satisfies the request.
    for installed in state.implementers_of(request.interface):
        if installed.node not in root_nodes:
            continue
        if not root_acceptable(installed):
            continue
        plan = DeploymentPlan([installed], [], 0, request.client_node)
        report = check_loads(ctx, plan, rate)
        if report.ok:
            plan.score = objective.score(ctx, plan, rate, report)
            if best is None or plan.score < best.score:
                best = plan

    for graph in graphs:
        stats.graphs_considered += 1
        plan = _solve_graph(
            ctx, request, state, objective, stats, graph, root_nodes, all_nodes, rate,
            best_score=(best.score if best is not None and prune else None),
        )
        if plan is not None and (best is None or plan.score < best.score):
            best = plan

    return best


def _graph_probs(ctx: PlanningContext, graph: LinkageGraph) -> List[float]:
    """Unit-level traversal probability of the edge *into* each vertex."""
    children: Dict[int, List[int]] = {}
    for client, server, _ in graph.edges:
        children.setdefault(client, []).append(server)
    probs = [1.0] * len(graph.units)

    def walk(idx: int, p: float, seen: frozenset) -> None:
        probs[idx] = p
        name = graph.units[idx]
        if name in seen:
            out = p
        else:
            out = p * ctx.spec.unit(name).behaviors.rrf
            seen = seen | {name}
        for child in children.get(idx, ()):
            walk(child, out, seen)

    walk(0, 1.0, frozenset())
    return probs


def _solve_graph(
    ctx: PlanningContext,
    request: PlanRequest,
    state: DeploymentState,
    objective: Objective,
    stats: CSPStats,
    graph: LinkageGraph,
    root_nodes: List[str],
    all_nodes: List[str],
    rate: float,
    best_score: Optional[Tuple[float, ...]],
) -> Optional[DeploymentPlan]:
    spec = ctx.spec
    n = len(graph.units)
    root_unit = spec.unit(graph.units[0])
    root_extra = objective.root_view_penalty if root_unit.is_view else 0.0
    probs = _graph_probs(ctx, graph)
    prune = objective.supports_pruning

    # Vertex -> incident edges, for constraint checking.
    edges_of: Dict[int, List[Tuple[int, int, str]]] = {i: [] for i in range(n)}
    for e in graph.edges:
        edges_of[e[0]].append(e)
        edges_of[e[1]].append(e)

    # Domains: candidate placements per vertex.  Leaves (and only
    # non-root vertices) may also bind to installed placements, which
    # terminate their own requirements implicitly — but an installed
    # placement is only a valid binding for a vertex whose children in
    # the graph would duplicate what is already wired; to stay exact, we
    # allow installed placements only on vertices whose subtree they
    # replace entirely.  For tree graphs this means any vertex: binding
    # it prunes the subtree's remaining vertices from the CSP.
    fresh_domains: List[List[Placement]] = []
    for i in range(n):
        unit = spec.unit(graph.units[i])
        nodes = root_nodes if i == 0 else all_nodes
        domain = []
        for node in nodes:
            p = _instantiate(ctx, unit, node, request.context)
            if p is None:
                continue
            if i == 0 and request.required_properties:
                impl = p.implemented_props(request.interface)
                if not ctx.reachable(request.client_node, p.node):
                    continue
                env = ctx.path_env(request.client_node, p.node)
                if impl is None or not ctx.properties_compatible(
                    request.required_properties, impl, env
                ):
                    continue
            domain.append(p)
        fresh_domains.append(domain)
        if not domain and i == 0:
            return None

    # Children map for subtree pruning on reuse.
    children: Dict[int, List[Tuple[int, str]]] = {}
    parent_edge: Dict[int, Tuple[int, str]] = {}
    for client, server, iface in graph.edges:
        children.setdefault(client, []).append((server, iface))
        parent_edge[server] = (client, iface)

    def subtree(idx: int) -> Set[int]:
        out = {idx}
        stack = [idx]
        while stack:
            cur = stack.pop()
            for child, _ in children.get(cur, ()):
                if child not in out:
                    out.add(child)
                    stack.append(child)
        return out

    assignment: Dict[int, Placement] = {}
    skipped: Set[int] = set()  # vertices absorbed by a reused binding
    best_local: Optional[DeploymentPlan] = None
    best_local_score = best_score

    def edge_ok(client_idx: int, server_idx: int, iface: str) -> bool:
        cp = assignment[client_idx]
        sp = assignment[server_idx]
        client_unit = spec.unit(cp.unit)
        required = _required_props(ctx, client_unit, cp.node, iface)
        if required is None:
            return False
        impl = sp.implemented_props(iface)
        if impl is None:
            return False
        if not ctx.reachable(cp.node, sp.node):
            return False
        env = ctx.path_env(cp.node, sp.node)
        return ctx.properties_compatible(required, impl, env)

    def partial_cost() -> float:
        cost = root_extra
        for idx, p in assignment.items():
            if not p.reused:
                cost += objective.placement_cost(ctx, spec.unit(p.unit), p.node, False)
        for client, server, _iface in graph.edges:
            if client in assignment and server in assignment:
                cu = spec.unit(assignment[client].unit)
                cost += objective.edge_cost(
                    ctx, cu, assignment[client].node, assignment[server].node,
                    probs[server],
                )
        return cost

    def complete() -> None:
        nonlocal best_local, best_local_score
        # Build the plan from assigned (non-skipped) vertices.
        idx_map: Dict[int, int] = {}
        placements: List[Placement] = []
        for i in range(n):
            if i in skipped:
                continue
            idx_map[i] = len(placements)
            placements.append(assignment[i])
        linkages = [
            PlannedLinkage(idx_map[c], idx_map[s], iface)
            for c, s, iface in graph.edges
            if c in idx_map and s in idx_map
        ]
        plan = DeploymentPlan(placements, linkages, 0, request.client_node)
        report = check_loads(ctx, plan, rate)
        if not report.ok:
            return
        plan.score = objective.score(ctx, plan, rate, report)
        if best_local_score is not None and plan.score >= best_local_score:
            return
        best_local = plan
        best_local_score = plan.score

    def unassigned_vars() -> List[int]:
        return [
            i for i in range(n) if i not in assignment and i not in skipped
        ]

    def solve() -> None:
        stats.assignments_tried += 1
        if prune and best_local_score is not None and partial_cost() >= best_local_score[0]:
            stats.bound_prunes += 1
            return
        todo = unassigned_vars()
        if not todo:
            complete()
            return
        # MRV: choose the vertex with the smallest live domain; vertices
        # whose parent is assigned are preferred (constraints bite).
        def domain_size(i: int) -> Tuple[int, int]:
            parent_known = 0 if (i in parent_edge and parent_edge[i][0] in assignment) else 1
            return (parent_known, len(fresh_domains[i]))

        var = min(todo, key=domain_size)
        parent = parent_edge.get(var)

        # Option 1: bind an installed placement (absorbs var's subtree).
        if parent is not None and parent[0] in assignment:
            for installed in state.implementers_of(parent[1]):
                assignment[var] = installed
                absorbed = subtree(var) - {var}
                if edge_ok(parent[0], var, parent[1]):
                    skipped.update(absorbed)
                    solve()
                    skipped.difference_update(absorbed)
                del assignment[var]

        # Option 2: fresh placements from the domain.
        for p in fresh_domains[var]:
            assignment[var] = p
            ok = True
            for client, server, iface in edges_of[var]:
                if client in assignment and server in assignment:
                    if server in skipped or client in skipped:
                        continue
                    if not edge_ok(client, server, iface):
                        stats.forward_prunes += 1
                        ok = False
                        break
            if ok:
                solve()
            del assignment[var]

    solve()
    return best_local
