"""Deployment-plan caching: skip the search when nothing changed.

The planner's search is the dominant cost of a client bind (the paper's
Figure 6 shows planning time exploding with network size), yet its
output is a pure function of four things: the search algorithm, the
global objective, the client's :class:`~repro.planner.plan.PlanRequest`,
and the world it plans against — the installed
:class:`~repro.planner.plan.DeploymentState` plus the network topology.

:class:`PlanCache` memoizes that function.  The network half of the
world is captured by the **topology epoch** —
``Network.state_fingerprint()``, a content hash over every
planning-relevant node/link attribute, recomputed whenever a mutation
bumps ``Network.version``: liveness flips from the failure detector,
link attribute perturbations from the :class:`~repro.network.monitor.
NetworkMonitor`, credential changes, and the capacity reservations
``Planner.commit`` makes (via ``Network.touch``).  Entries are keyed
*under* their epoch rather than flushed when it changes: any mutation
makes every existing entry unmatchable (correctness), but a network
that returns to a previously seen state — a crashed node restarting, a
flapping link — revalidates the plans solved there, so recurring fault
patterns replan in O(1).  Stale epochs age out of the LRU naturally.

The cache returns *copies* of stored plans (placements are frozen and
shared; the mutable plan shell — lists, metrics dict, score — is fresh
per hit) so callers may annotate a hit without corrupting the cache.

A miss-path search is byte-identical to an uncached one; a hit returns a
plan structurally equal to what the search would have produced, because
every input that could change the answer is part of the key or the
epoch.  ``tests/planner/test_cache.py`` guards both claims.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Optional, Tuple

from .plan import DeploymentPlan, DeploymentState, PlanRequest

__all__ = ["PlanCache", "PlanCacheStats"]


@dataclass
class PlanCacheStats:
    """Hit/miss accounting for one :class:`PlanCache`.

    ``invalidations`` counts topology-epoch transitions observed at
    lookup/store time — each one makes every previously stored entry
    unmatchable until (unless) the network returns to that exact state;
    ``evictions`` counts LRU drops; ``uncacheable`` counts requests
    whose context/properties were not hashable (served by a direct
    search, never stored).
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    uncacheable: int = 0


def _freeze(mapping: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    frozen = tuple(sorted(mapping.items()))
    hash(frozen)
    return frozen


def _clone_plan(plan: DeploymentPlan) -> DeploymentPlan:
    """Fresh mutable shell around the (frozen, shared) placements."""
    return DeploymentPlan(
        placements=list(plan.placements),
        linkages=list(plan.linkages),
        root=plan.root,
        client_node=plan.client_node,
        score=plan.score,
        metrics=dict(plan.metrics),
    )


class PlanCache:
    """LRU cache of finished deployment plans, keyed by the full search
    input and guarded by the network's topology epoch.

    Used through :meth:`~repro.planner.planner.Planner.run_search`; not
    tied to one planner instance, so a cache may be shared by several
    planners over the same network (multi-service hosting).
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[Hashable, Optional[DeploymentPlan]]" = OrderedDict()
        self._epoch: Optional[int] = None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    # -- keying -------------------------------------------------------------
    def key_for(
        self,
        algorithm: str,
        objective_key: Tuple[Any, ...],
        request: PlanRequest,
        state: DeploymentState,
    ) -> Optional[Hashable]:
        """Fingerprint of everything (besides topology) a search reads.

        Returns None when the request carries unhashable values — such
        requests bypass the cache entirely.
        """
        try:
            request_fp = (
                request.interface,
                request.client_node,
                _freeze(request.context),
                _freeze(request.required_properties),
                request.request_rate,
                request.max_units,
                request.root_on_client,
            )
            # Placement keys are (unit, node, factor_values) and already
            # hashable; sort by repr so mixed-type factor values cannot
            # break ordering.  committed_rates is reporting-only state —
            # no algorithm reads it — so it is deliberately excluded.
            state_fp = tuple(sorted(state._placements.keys(), key=repr))
            key = (algorithm, objective_key, request_fp, state_fp)
            hash(key)
        except TypeError:
            self.stats.uncacheable += 1
            return None
        return key

    # -- epoch guard --------------------------------------------------------
    def _sync_epoch(self, epoch: int) -> None:
        """Track epoch transitions (for the ``invalidations`` counter).

        Entries are keyed under their epoch, so nothing is flushed here:
        a transition merely makes stored entries unmatchable until the
        network returns to their state.
        """
        if self._epoch != epoch:
            if self._epoch is not None and self._entries:
                self.stats.invalidations += 1
            self._epoch = epoch

    # -- lookup/store -------------------------------------------------------
    def lookup(self, epoch: int, key: Hashable) -> Tuple[bool, Optional[DeploymentPlan]]:
        """``(found, plan)``; ``(True, None)`` is a cached *failure*
        (the search proved no valid deployment exists at this epoch)."""
        self._sync_epoch(epoch)
        entry_key = (epoch, key)
        if entry_key not in self._entries:
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        self._entries.move_to_end(entry_key)
        plan = self._entries[entry_key]
        return True, _clone_plan(plan) if plan is not None else None

    def store(self, epoch: int, key: Hashable, plan: Optional[DeploymentPlan]) -> None:
        self._sync_epoch(epoch)
        self._entries[(epoch, key)] = _clone_plan(plan) if plan is not None else None
        self._entries.move_to_end((epoch, key))
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"<PlanCache entries={len(self._entries)} epoch={self._epoch} "
            f"hits={s.hits} misses={s.misses} invalidations={s.invalidations}>"
        )
