"""The exhaustive combined planner (§3.3).

"Currently, our planner implementation combines these two steps
[linkage enumeration and network mapping] and exhaustively searches for
a deployment that satisfies the constraints."

The search interleaves linkage construction with placement: starting
from candidate roots (units implementing the requested interface), it
repeatedly takes an unsatisfied required interface and either links it
to an already-placed compatible provider (within the plan or reused from
the existing deployment state) or instantiates a new provider on some
node — checking condition 1 (installability) and condition 2 (property
compatibility under path-environment modification) as it goes, and
condition 3 (load vs. capacity) on each complete candidate.  A
branch-and-bound lower bound from the objective prunes dominated
partial plans.

Installed placements (from the :class:`~repro.planner.plan.
DeploymentState`) are treated as *already wired*: linking to one — or
rooting the plan at one — records the placement alone without reopening
its requirements.  Incremental replanning exploits this by seeding the
state with a previous plan's survivors (see
:mod:`repro.planner.incremental`, whose graft step re-attaches the
downstream wiring such reuse elides); the surviving chain then acts as
an early incumbent for the branch-and-bound pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..spec import ComponentDef
from .compat import PlanningContext
from .load import check_loads, config_covered
from .objectives import ExpectedLatency, Objective
from .plan import (
    DeploymentPlan,
    DeploymentState,
    Placement,
    PlannedLinkage,
    PlanRequest,
    freeze_implemented,
    freeze_props,
)

__all__ = ["plan_exhaustive", "SearchStats"]


@dataclass
class SearchStats:
    """Instrumentation for the scaling benchmarks and the obs layer.

    The ``*_rejected`` counters attribute dead branches to the paper's
    three validity conditions: ``install_rejected`` is condition 1
    (instantiation/factor binding), ``compat_rejected`` condition 2
    (property compatibility under path environments), and
    ``load_rejected`` condition 3 (capacity).
    """

    nodes_expanded: int = 0
    complete_plans: int = 0
    pruned: int = 0
    load_rejected: int = 0
    install_rejected: int = 0
    compat_rejected: int = 0


def _reaches(linkages: List[PlannedLinkage], src: int, dst: int) -> bool:
    """Is ``dst`` reachable from ``src`` along client->server edges?"""
    stack = [src]
    seen = {src}
    while stack:
        cur = stack.pop()
        if cur == dst:
            return True
        for l in linkages:
            if l.client == cur and l.server not in seen:
                seen.add(l.server)
                stack.append(l.server)
    return False


def plan_exhaustive(
    ctx: PlanningContext,
    request: PlanRequest,
    state: Optional[DeploymentState] = None,
    objective: Optional[Objective] = None,
    stats: Optional[SearchStats] = None,
) -> Optional[DeploymentPlan]:
    """Best valid deployment plan, or None if no mapping satisfies all
    constraints."""
    objective = objective or ExpectedLatency()
    state = state or DeploymentState()
    stats = stats if stats is not None else SearchStats()
    spec = ctx.spec

    rate = request.request_rate
    if rate <= 0:
        roots = spec.implementers_of(request.interface)
        rate = max((u.behaviors.request_rate for u in roots), default=1.0) or 1.0

    best: List[Optional[DeploymentPlan]] = [None]
    best_score: List[Tuple[float, ...]] = [()]
    prune_enabled = objective.supports_pruning

    placements: List[Placement] = []
    linkages: List[PlannedLinkage] = []
    # Per placement: probability that a client request flows out of it
    # (inbound prob x RRF, with RRF applied only at the first occurrence
    # of the placement's configuration on the root path — matching
    # load.compute_loads), and the set of configurations traversed so far.
    out_probs: List[float] = []
    seen_cfgs: List[frozenset] = []

    def _enter(placement: Placement, inbound_prob: float, parent_idx: Optional[int]) -> None:
        cfg = (placement.unit, placement.factor_values)
        seen = seen_cfgs[parent_idx] if parent_idx is not None else frozenset()
        if config_covered(ctx, seen, cfg):
            out = inbound_prob
        else:
            out = inbound_prob * spec.unit(placement.unit).behaviors.rrf
        placements.append(placement)
        out_probs.append(out)
        seen_cfgs.append(seen | {cfg})

    def _leave() -> None:
        placements.pop()
        out_probs.pop()
        seen_cfgs.pop()

    # Fresh-provider candidates depend only on (interface); precompute
    # lazily per interface — conditions, factors and implemented props
    # are all search-state independent for a fixed request context.
    _candidate_cache: Dict[str, List[Tuple[ComponentDef, Placement]]] = {}

    def candidates_for(iface: str) -> List[Tuple[ComponentDef, Placement]]:
        cached = _candidate_cache.get(iface)
        if cached is None:
            cached = []
            for provider in spec.implementers_of(iface):
                for node_info in ctx.network.nodes():
                    placement = _instantiate(ctx, provider, node_info.name, request.context)
                    if placement is None:
                        stats.install_rejected += 1
                        continue
                    if placement.implemented_props(iface) is None:
                        stats.install_rejected += 1
                        continue
                    cached.append((provider, placement))
            _candidate_cache[iface] = cached
        return cached

    def try_complete() -> None:
        stats.complete_plans += 1
        plan = DeploymentPlan(
            placements=list(placements),
            linkages=list(linkages),
            root=0,
            client_node=request.client_node,
        )
        report = check_loads(ctx, plan, rate)
        if not report.ok:
            stats.load_rejected += 1
            return
        score = objective.score(ctx, plan, rate, report)
        if best[0] is None or score < best_score[0]:
            plan.score = score
            best[0] = plan
            best_score[0] = score

    def search(frontier: List[Tuple[int, str]], partial_cost: float) -> None:
        stats.nodes_expanded += 1
        if prune_enabled and best[0] is not None and partial_cost >= best_score[0][0]:
            stats.pruned += 1
            return
        if not frontier:
            try_complete()
            return
        client_idx, iface = frontier[0]
        rest = frontier[1:]
        client_place = placements[client_idx]
        client_unit = spec.unit(client_place.unit)
        required = _required_props(ctx, client_unit, client_place.node, iface)
        if required is None:
            return  # malformed: client doesn't actually require this iface
        edge_prob = out_probs[client_idx]

        # (a) link to a provider already in the plan (DAG sharing).
        for srv_idx, srv in enumerate(placements):
            if srv_idx == client_idx:
                continue
            impl = srv.implemented_props(iface)
            if impl is None:
                continue
            if _reaches(linkages, srv_idx, client_idx):
                continue  # would create a cycle
            if not ctx.reachable(client_place.node, srv.node):
                continue
            env = ctx.path_env(client_place.node, srv.node)
            if not ctx.properties_compatible(required, impl, env):
                stats.compat_rejected += 1
                continue
            cost = (
                objective.edge_cost(ctx, client_unit, client_place.node, srv.node, edge_prob)
                if prune_enabled
                else 0.0
            )
            linkages.append(PlannedLinkage(client_idx, srv_idx, iface))
            search(rest, partial_cost + cost)
            linkages.pop()

        # (b) link to an installed placement from the deployment state.
        in_plan_keys = {p.key for p in placements}
        for installed in state.implementers_of(iface):
            if installed.key in in_plan_keys:
                continue
            impl = installed.implemented_props(iface)
            assert impl is not None
            if not ctx.reachable(client_place.node, installed.node):
                continue
            env = ctx.path_env(client_place.node, installed.node)
            if not ctx.properties_compatible(required, impl, env):
                stats.compat_rejected += 1
                continue
            cost = (
                objective.edge_cost(
                    ctx, client_unit, client_place.node, installed.node, edge_prob
                )
                if prune_enabled
                else 0.0
            )
            srv_idx = len(placements)
            _enter(installed, edge_prob, client_idx)
            linkages.append(PlannedLinkage(client_idx, srv_idx, iface))
            # Installed placements are already wired upstream: no new
            # frontier entries for their requirements.
            search(rest, partial_cost + cost)
            linkages.pop()
            _leave()

        # (c) instantiate a fresh provider somewhere.
        if len(placements) >= request.max_units:
            return
        for provider, placement in candidates_for(iface):
            node = placement.node
            if placement.key in in_plan_keys:
                continue  # identical instance already placed: case (a)
            impl = placement.implemented_props(iface)
            assert impl is not None
            if not ctx.reachable(client_place.node, node):
                continue
            env = ctx.path_env(client_place.node, node)
            if not ctx.properties_compatible(required, impl, env):
                stats.compat_rejected += 1
                continue
            cost = 0.0
            if prune_enabled:
                cost = objective.edge_cost(
                    ctx, client_unit, client_place.node, node, edge_prob
                ) + objective.placement_cost(ctx, provider, node, reused=False)
            srv_idx = len(placements)
            _enter(placement, edge_prob, client_idx)
            linkages.append(PlannedLinkage(client_idx, srv_idx, iface))
            new_frontier = rest + [
                (srv_idx, b.interface) for b in provider.requires
            ]
            search(new_frontier, partial_cost + cost)
            linkages.pop()
            _leave()

    def root_acceptable(placement: Placement) -> bool:
        """Client QoS expectations on the requested interface."""
        if not request.required_properties:
            return True
        impl = placement.implemented_props(request.interface)
        if impl is None:
            return False
        if not ctx.reachable(request.client_node, placement.node):
            return False
        env = ctx.path_env(request.client_node, placement.node)
        return ctx.properties_compatible(request.required_properties, impl, env)

    # Root candidates: reused installed placements first, then fresh ones.
    root_nodes = (
        [request.client_node]
        if request.root_on_client
        else [n.name for n in ctx.network.nodes()]
    )
    for installed in state.implementers_of(request.interface):
        if installed.node not in root_nodes:
            continue
        if not root_acceptable(installed):
            continue
        root_unit = spec.unit(installed.unit)
        _enter(installed, 1.0, None)
        # The root-view penalty is known at root selection time; folding
        # it into the partial cost keeps branch-and-bound sound *and*
        # effective for view-rooted subtrees.
        search([], objective.root_view_penalty if root_unit.is_view else 0.0)
        _leave()
    for root_unit in spec.implementers_of(request.interface):
        for node in root_nodes:
            placement = _instantiate(ctx, root_unit, node, request.context)
            if placement is None:
                continue
            if placement.implemented_props(request.interface) is None:
                continue
            if not root_acceptable(placement):
                continue
            _enter(placement, 1.0, None)
            frontier = [(0, b.interface) for b in root_unit.requires]
            cost = objective.root_view_penalty if root_unit.is_view else 0.0
            if prune_enabled:
                cost += objective.placement_cost(ctx, root_unit, node, reused=False)
            search(frontier, cost)
            _leave()

    return best[0]


def _required_props(
    ctx: PlanningContext, unit: ComponentDef, node: str, iface: str
) -> Optional[Dict[str, Any]]:
    for req_iface, props in ctx.resolved_requires(unit, node):
        if req_iface == iface:
            return props
    return None


def _instantiate(
    ctx: PlanningContext,
    unit: ComponentDef,
    node: str,
    context: Dict[str, Any],
) -> Optional[Placement]:
    """Condition 1 + factor binding; None if the unit can't live there."""
    if not ctx.installable(unit, node, context):
        return None
    factors = ctx.resolve_factors(unit, node)
    if any(v is None for v in factors.values()):
        return None  # a Factor could not be bound from this environment
    implemented = ctx.resolved_implements(unit, node)
    return Placement(
        unit=unit.name,
        node=node,
        factor_values=freeze_props(factors),
        implemented=freeze_implemented(implemented),
        reused=False,
    )
