"""Planning policies (paper §3.3).

Three interchangeable algorithms over a shared constraint model:

- :func:`plan_exhaustive` — the paper's current implementation: combined
  linkage-enumeration + network-mapping search with branch-and-bound;
- :func:`plan_dp_chain` — the CANS-style dynamic program for chain
  graphs ([13]);
- :func:`plan_partial_order` — the IPP-style constraint solver the paper
  names as future work, handling general component graphs.

:class:`Planner` is the facade the runtime uses; it owns deployment
state, capacity reservations, and the planner fast path — the
:class:`PlanCache` of finished plans (keyed under the content-based
topology epoch ``Network.state_fingerprint()``, so recurring network
states re-hit their plans), the memoized validity checks inside
:class:`PlanningContext`, and the :func:`plan_incremental` seeded search
the replanner uses to patch a deployment around a failed host instead of
re-deriving it from scratch.
"""

from .cache import PlanCache, PlanCacheStats
from .compat import CompatError, ContextCacheStats, PlanningContext
from .dp_chain import DPStats, plan_dp_chain
from .exhaustive import SearchStats, plan_exhaustive
from .linkage import LinkageGraph, enumerate_linkage_graphs, valid_chains
from .load import LoadReport, check_loads, compute_loads, config_covered, config_of
from .objectives import DeploymentCost, ExpectedLatency, MaxCapacity, Objective
from .partial_order import CSPStats, plan_partial_order
from .plan import (
    DeploymentPlan,
    DeploymentState,
    Placement,
    PlannedLinkage,
    PlanRequest,
)
from .incremental import plan_incremental, surviving_placements
from .planner import ALGORITHMS, Planner, PlanningError

__all__ = [
    "Planner",
    "PlanningError",
    "ALGORITHMS",
    "PlanningContext",
    "CompatError",
    "ContextCacheStats",
    "PlanCache",
    "PlanCacheStats",
    "plan_incremental",
    "surviving_placements",
    "PlanRequest",
    "DeploymentPlan",
    "DeploymentState",
    "Placement",
    "PlannedLinkage",
    "LinkageGraph",
    "enumerate_linkage_graphs",
    "valid_chains",
    "LoadReport",
    "compute_loads",
    "check_loads",
    "config_of",
    "config_covered",
    "Objective",
    "ExpectedLatency",
    "DeploymentCost",
    "MaxCapacity",
    "plan_exhaustive",
    "SearchStats",
    "plan_dp_chain",
    "DPStats",
    "plan_partial_order",
    "CSPStats",
]
