"""The nine deployment scenarios of Figure 7 (paper §4.2).

- **DF** — dynamic deployment, fast connection (New York clients).
- **DS0 / DS500 / DS1000** — dynamic deployment, slow connection (San
  Diego clients) with coherence overheads none / limit-500 / limit-1000.
- **SF / SS0 / SS500 / SS1000** — "hand-generated" static counterparts
  of the above, bypassing the planner entirely.
- **SS** — the simplest static scenario: clients connect directly to the
  MailServer "unaware of the slow link" (and of the insecure link — a
  static configuration the planner would reject).

Each scenario runs 1..5 workload clients, every client sending 100
messages and receiving 10 times at maximum rate; the reported metric is
the average client-perceived *send* latency, exactly Figure 7's y-axis.

Expected grouping (the paper's three key points):
Group 1 {SF, SS0, DF, DS0} fastest and nearly identical (dynamic ≈
static); Group 2 {SS1000, DS1000}; Group 3 {SS500, DS500}; Group 4 {SS}
slowest by ~2 orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..load.roster import generate_roster
from ..planner import DeploymentPlan, Placement, PlannedLinkage
from ..services.mail import DEFAULT_USERS, WorkloadConfig, mail_workload
from ..smock import ServiceProxy
from .mail_setup import MailTestbed, build_mail_testbed
from .topology_fig5 import SITE_TRUST

__all__ = ["ScenarioDef", "ScenarioResult", "SCENARIOS", "run_scenario", "fig7_series"]


@dataclass(frozen=True)
class ScenarioDef:
    """One Figure 7 scenario."""

    name: str
    site: str  #: where the clients are
    dynamic: bool  #: planner-driven (D*) vs hand-generated (S*)
    flush_policy: str = "never"  #: policy for ViewMailServer replicas
    use_view_chain: bool = True  #: static only: deploy the VMS/E/D chain
    description: str = ""


SCENARIOS: Dict[str, ScenarioDef] = {
    "DF": ScenarioDef("DF", "newyork", True, "never",
                      description="dynamic deployment, fast connection"),
    "DS0": ScenarioDef("DS0", "sandiego", True, "never",
                       description="dynamic, slow connection, no coherence"),
    "DS500": ScenarioDef("DS500", "sandiego", True, "count:500",
                         description="dynamic, slow, flush every 500 messages"),
    "DS1000": ScenarioDef("DS1000", "sandiego", True, "count:1000",
                          description="dynamic, slow, flush every 1000 messages"),
    "SF": ScenarioDef("SF", "newyork", False, "never",
                      description="static counterpart of DF"),
    "SS0": ScenarioDef("SS0", "sandiego", False, "never",
                       description="static counterpart of DS0"),
    "SS500": ScenarioDef("SS500", "sandiego", False, "count:500",
                         description="static counterpart of DS500"),
    "SS1000": ScenarioDef("SS1000", "sandiego", False, "count:1000",
                          description="static counterpart of DS1000"),
    "SS": ScenarioDef("SS", "sandiego", False, "never", use_view_chain=False,
                      description="static direct connection, unaware of the slow link"),
}

#: the four latency groups the paper identifies, best-first
FIG7_GROUPS: Tuple[Tuple[str, ...], ...] = (
    ("SF", "SS0", "DF", "DS0"),
    ("SS1000", "DS1000"),
    ("SS500", "DS500"),
    ("SS",),
)


@dataclass
class ScenarioResult:
    """Measured outcome of one (scenario, n_clients) cell."""

    scenario: str
    n_clients: int
    mean_send_ms: float
    mean_receive_ms: float
    per_client_send_ms: List[float] = field(default_factory=list)
    bind_total_ms: float = 0.0
    coherence_syncs: int = 0
    errors: List[str] = field(default_factory=list)


def _static_plan_for_client(
    testbed: MailTestbed, client_node: str, scenario: ScenarioDef
) -> DeploymentPlan:
    """Hand-generate the static deployment for one client.

    Mirrors what a developer would wire by hand: either the full
    MC -> VMS -> E -> D -> MS chain (SS0/SS500/SS1000), or the naive
    direct MC -> MS connection (SS).
    """
    topo = testbed.topology
    site = scenario.site
    ms_key_placement = Placement(unit="MailServer", node=topo.server_node, reused=True)

    if site == "newyork" or not scenario.use_view_chain:
        placements = [
            Placement(unit="MailClient", node=client_node),
            ms_key_placement,
        ]
        linkages = [PlannedLinkage(0, 1, "ServerInterface")]
        return DeploymentPlan(placements, linkages, 0, client_node)

    trust = SITE_TRUST[site]
    gw = topo.gateways[site]
    ny_gw = topo.gateways["newyork"]
    placements = [
        Placement(unit="MailClient", node=client_node),
        Placement(unit="ViewMailServer", node=gw, factor_values=(("TrustLevel", trust),)),
        Placement(unit="Encryptor", node=gw),
        Placement(unit="Decryptor", node=ny_gw),
        ms_key_placement,
    ]
    linkages = [
        PlannedLinkage(0, 1, "ServerInterface"),
        PlannedLinkage(1, 2, "ServerInterface"),
        PlannedLinkage(2, 3, "DecryptorInterface"),
        PlannedLinkage(3, 4, "ServerInterface"),
    ]
    return DeploymentPlan(placements, linkages, 0, client_node)


def _workload_users(n_clients: int) -> List[str]:
    """One user name per client: the paper's five, then generated names
    (the scale benchmarks run 25/50/100 clients).  Delegates to the
    shared roster generator so scripted clients and open-loop load draw
    from one namespace (:mod:`repro.load.roster`)."""
    return generate_roster(n_clients)


def _bind_clients(
    testbed: MailTestbed,
    scenario: ScenarioDef,
    n_clients: int,
    users: Optional[Sequence[str]] = None,
) -> List[ServiceProxy]:
    """Deploy (dynamically or statically) and bind one proxy per client."""
    runtime = testbed.runtime
    nodes = testbed.client_nodes(scenario.site)[:n_clients]
    if len(nodes) < n_clients:
        raise ValueError(
            f"site {scenario.site} has only {len(nodes)} client nodes"
        )
    users = list(users) if users is not None else _workload_users(n_clients)
    proxies: List[ServiceProxy] = []

    if scenario.dynamic:
        for node, user in zip(nodes, users):
            proxy = runtime.run(
                runtime.client_connect(node, {"User": user}), f"connect:{user}"
            )
            proxies.append(proxy)
    else:
        for node, user in zip(nodes, users):
            plan = _static_plan_for_client(testbed, node, scenario)
            record = runtime.deploy_manual(plan)
            proxies.append(
                ServiceProxy(runtime, node, "ClientInterface", record.root_instance, user)
            )
    return proxies


def run_scenario(
    scenario: str | ScenarioDef,
    n_clients: int,
    clients_per_site: int = 5,
    seed: int = 0,
    n_sends: int = 100,
    n_receives: int = 10,
    cluster_size: int = 10,
    **testbed_kwargs,
) -> ScenarioResult:
    """Build a fresh testbed and measure one Figure 7 cell.

    ``n_clients`` beyond the paper's five users works too (the scale
    benchmarks bind 25/50/100 clients with generated account names);
    extra keyword arguments pass through to :func:`build_mail_testbed`
    (e.g. the runtime hot-path knobs).
    """
    if isinstance(scenario, str):
        scenario = SCENARIOS[scenario]
    if not 1 <= n_clients <= clients_per_site:
        raise ValueError(f"n_clients must be in [1, {clients_per_site}]")

    users = _workload_users(n_clients)
    # The account roster stays a superset of the paper's five users so
    # that small runs are bit-identical to the historical setup; larger
    # client counts extend it with the generated names.
    roster = list(DEFAULT_USERS) + users[len(DEFAULT_USERS):]
    testbed = build_mail_testbed(
        clients_per_site=clients_per_site,
        flush_policy=scenario.flush_policy,
        users=roster,
        **testbed_kwargs,
    )
    runtime = testbed.runtime
    proxies = _bind_clients(testbed, scenario, n_clients, users=users)
    bind_total = runtime.sim.now

    site_trust = SITE_TRUST[scenario.site]
    configs = [
        WorkloadConfig(
            user=user,
            peers=[u for u in users if u != user] or [user],
            n_sends=n_sends,
            n_receives=n_receives,
            cluster_size=cluster_size,
            max_sensitivity=site_trust,
            seed=seed + i,
        )
        for i, user in enumerate(users)
    ]
    procs = [
        runtime.sim.process(mail_workload(proxy, cfg), name=f"wl:{cfg.user}")
        for proxy, cfg in zip(proxies, configs)
    ]
    runtime.sim.run()

    sends: List[float] = []
    receives: List[float] = []
    per_client: List[float] = []
    errors: List[str] = []
    for proc in procs:
        if proc.failed:
            raise proc.value
        result = proc.value
        sends.extend(result.send_latency.samples)
        receives.extend(result.receive_latency.samples)
        per_client.append(result.mean_send_ms)
        errors.extend(result.errors)

    return ScenarioResult(
        scenario=scenario.name,
        n_clients=n_clients,
        mean_send_ms=sum(sends) / len(sends) if sends else 0.0,
        mean_receive_ms=sum(receives) / len(receives) if receives else 0.0,
        per_client_send_ms=per_client,
        bind_total_ms=bind_total,
        coherence_syncs=runtime.coherence.stats.syncs,
        errors=errors,
    )


def fig7_series(
    client_counts: Sequence[int] = (1, 2, 3, 4, 5),
    scenarios: Optional[Sequence[str]] = None,
    **kwargs,
) -> Dict[str, List[ScenarioResult]]:
    """The full Figure 7 data: scenario -> results for each client count."""
    names = list(scenarios) if scenarios else list(SCENARIOS)
    return {
        name: [run_scenario(name, k, **kwargs) for k in client_counts]
        for name in names
    }


def format_fig7_table(series: Dict[str, List[ScenarioResult]]) -> str:
    """Render the Figure 7 data as the paper's series (ms, log-scale plot)."""
    counts = [r.n_clients for r in next(iter(series.values()))]
    lines = ["scenario  " + "".join(f"{k:>10d}" for k in counts) + "   (clients)"]
    for name, results in series.items():
        lines.append(
            f"{name:9s} "
            + "".join(f"{r.mean_send_ms:10.2f}" for r in results)
        )
    return "\n".join(lines)


__all__.append("format_fig7_table")
__all__.append("FIG7_GROUPS")
