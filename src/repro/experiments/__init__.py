"""Experiment harnesses reproducing the paper's evaluation (§4)."""

from .deployments_fig6 import EXPECTED_CHAINS, Fig6Deployment, run_fig6, site_chain
from .mail_setup import MailTestbed, build_mail_testbed
from .onetime_costs import OneTimeCosts, format_cost_table, measure_onetime_costs
from .scenarios_fig7 import (
    FIG7_GROUPS,
    SCENARIOS,
    ScenarioDef,
    ScenarioResult,
    fig7_series,
    format_fig7_table,
    run_scenario,
)
from .topology_fig5 import Fig5Topology, SITE_TRUST, SITES, build_fig5_network

__all__ = [
    "build_fig5_network",
    "Fig5Topology",
    "SITES",
    "SITE_TRUST",
    "build_mail_testbed",
    "MailTestbed",
    "run_fig6",
    "Fig6Deployment",
    "EXPECTED_CHAINS",
    "site_chain",
    "run_scenario",
    "fig7_series",
    "format_fig7_table",
    "SCENARIOS",
    "ScenarioDef",
    "ScenarioResult",
    "FIG7_GROUPS",
    "measure_onetime_costs",
    "OneTimeCosts",
    "format_cost_table",
]
