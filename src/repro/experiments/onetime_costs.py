"""The one-time costs of §4.2.

"There are a few one time costs not reflected in Figure 7.  These
include the costs of downloading the proxy, planning, and component
deployment and startup.  These costs sum up to approximately 10 seconds
in the configurations above, but are incurred only at the beginning of
the entire process."

This experiment binds one client per site through the full framework
path and reports the per-phase breakdown (proxy download, access round
trip, planning, deployment+startup) as measured on the simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..smock import BindRecord
from .mail_setup import build_mail_testbed
from .scenarios_fig7 import SCENARIOS

__all__ = ["OneTimeCosts", "measure_onetime_costs", "format_cost_table"]

SITE_USERS = {"newyork": "Alice", "sandiego": "Bob", "seattle": "Carol"}


@dataclass
class OneTimeCosts:
    """Per-site breakdown of framework one-time costs, ms."""

    site: str
    lookup_ms: float
    access_round_trip_ms: float
    planning_ms: float
    deployment_ms: float

    @property
    def total_ms(self) -> float:
        return (
            self.lookup_ms
            + self.access_round_trip_ms
            + self.planning_ms
            + self.deployment_ms
        )


def measure_onetime_costs(clients_per_site: int = 2) -> List[OneTimeCosts]:
    """Bind a fresh client at each site; report cost breakdowns."""
    testbed = build_mail_testbed(clients_per_site=clients_per_site)
    runtime = testbed.runtime
    out: List[OneTimeCosts] = []
    for site, user in SITE_USERS.items():
        node = testbed.client_nodes(site)[0]
        before = len(runtime.bind_records)
        runtime.run(runtime.client_connect(node, {"User": user}), f"connect:{site}")
        record: BindRecord = runtime.bind_records[before]
        out.append(
            OneTimeCosts(
                site=site,
                lookup_ms=record.lookup_ms,
                access_round_trip_ms=record.access_round_trip_ms,
                planning_ms=record.planning_ms,
                deployment_ms=record.deployment_ms,
            )
        )
    return out


def format_cost_table(costs: List[OneTimeCosts]) -> str:
    header = (
        f"{'site':10s} {'proxy dl':>10s} {'access RT':>10s} "
        f"{'planning':>10s} {'deploy':>10s} {'total':>10s}   (ms)"
    )
    lines = [header]
    for c in costs:
        lines.append(
            f"{c.site:10s} {c.lookup_ms:10.1f} {c.access_round_trip_ms:10.1f} "
            f"{c.planning_ms:10.1f} {c.deployment_ms:10.1f} {c.total_ms:10.1f}"
        )
    total = sum(c.total_ms for c in costs)
    lines.append(f"{'sum':10s} {'':>10s} {'':>10s} {'':>10s} {'':>10s} {total:10.1f}")
    return "\n".join(lines)
