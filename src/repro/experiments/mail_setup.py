"""Shared setup for the mail-service case study experiments.

Builds a ready :class:`SmockRuntime` over the Figure 5 topology with the
primary MailServer pre-installed in New York, component classes
registered, the service registered in the lookup namespace, and the
account roster provisioned — the state of the world just before the
paper's measurements begin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..coherence import AttributeConflictMap, FlushPolicy, NeverPolicy, policy_from_name
from ..smock import SmockRuntime
from ..services.mail import (
    DEFAULT_USERS,
    MAIL_COMPONENT_CLASSES,
    build_mail_spec,
    mail_translator,
)
from .topology_fig5 import Fig5Topology, build_fig5_network

__all__ = ["MailTestbed", "build_mail_testbed"]


@dataclass
class MailTestbed:
    """A fully provisioned case-study runtime."""

    runtime: SmockRuntime
    topology: Fig5Topology

    @property
    def sim(self):
        return self.runtime.sim

    def client_nodes(self, site: str):
        return self.topology.clients[site]


def build_mail_testbed(
    clients_per_site: int = 5,
    node_cpu: Optional[float] = None,
    flush_policy: str = "never",
    algorithm: str = "dp_chain",
    planning_work: float = 2000.0,
    users=DEFAULT_USERS,
    plan_cache=None,
    memoize: bool = True,
    fast_path: bool = True,
    compile_routes: bool = True,
    proxy_fast_path: bool = True,
    batch_coherence: bool = True,
    versioned_coherence: bool = True,
    telemetry_interval_ms: Optional[float] = None,
    flight=None,
    obs=None,
    overload_protection: Any = False,
    autonomic: Any = False,
    parallel: Any = False,
    lookup_replicas: int = 1,
    lookup_hosts=None,
    lookup_leases: Any = False,
    directory_journal: bool = False,
    directory_host: Optional[str] = None,
) -> MailTestbed:
    """The standard case-study testbed.

    ``flush_policy`` is a :func:`policy_from_name` string applied to
    every deployed data-view replica ("never", "count:500",
    "count:1000", "time:<ms>", "write_through").

    ``algorithm`` defaults to the CANS-style DP planner: on the
    5-clients-per-site topology (19 nodes) it finds the same chains as
    the exhaustive planner in ~1% of the time (see the planner-scaling
    benchmark), which keeps the 45-cell Figure 7 sweep tractable.

    ``plan_cache`` / ``memoize`` pass through to
    :class:`~repro.planner.Planner` (``plan_cache=False`` disables plan
    caching; ``memoize=False`` disables validity-check memoization).

    ``fast_path`` / ``compile_routes`` / ``proxy_fast_path`` /
    ``batch_coherence`` / ``versioned_coherence`` pass through to
    :class:`SmockRuntime` — the
    runtime hot-path knobs (see ARCHITECTURE.md), used by the
    determinism tests to pin fast-on vs fast-off equivalence.

    ``telemetry_interval_ms`` / ``flight`` pass through to
    :class:`SmockRuntime`'s continuous-telemetry knobs (``None`` = no
    sampler at all, ``0`` = constructed but disabled, ``> 0`` = sample
    every that-many simulated ms into ``runtime.sampler``).

    ``overload_protection`` passes through to :class:`SmockRuntime`:
    ``False`` (default) constructs nothing, ``True`` enables admission
    control / throttling / circuit breaking with default
    :class:`~repro.smock.OverloadConfig`, or pass a config instance.

    ``autonomic`` passes through to :class:`SmockRuntime`: ``False``
    (default) constructs nothing, ``True`` closes the telemetry →
    replanning loop (see :mod:`repro.autonomic`) with default
    :class:`~repro.autonomic.AutonomicConfig` — defaulting the sampler
    to 500 ms when ``telemetry_interval_ms`` is unset — or pass a
    config instance / kwargs dict.

    ``parallel`` passes through to :class:`SmockRuntime`: ``False``
    (default) constructs nothing — byte-identical runs — while an int N
    enables ``runtime.run_parallel_traffic`` on N conservative worker
    processes (see :mod:`repro.sim.parallel`).

    ``lookup_replicas`` / ``lookup_hosts`` / ``lookup_leases`` /
    ``directory_journal`` / ``directory_host`` pass through to
    :class:`SmockRuntime`'s control-plane availability knobs (see
    ARCHITECTURE.md "control-plane availability"): the defaults keep
    the singleton lookup on ``newyork-ms`` with immortal registrations
    and an unjournaled directory, byte-identical to before the feature.
    """
    spec = build_mail_spec()
    if node_cpu is None:
        topo = build_fig5_network(clients_per_site=clients_per_site)
    else:
        # Scaled-down node capacity (the load harness shrinks the
        # bottleneck so saturation cells stay event-count tractable).
        topo = build_fig5_network(clients_per_site=clients_per_site, node_cpu=node_cpu)

    def view_policy(view, instance) -> FlushPolicy:
        return policy_from_name(flush_policy)

    runtime = SmockRuntime(
        spec,
        topo.network,
        mail_translator(),
        algorithm=algorithm,
        lookup_node=topo.server_node,
        server_node=topo.server_node,
        code_base_node=topo.server_node,
        planning_work=planning_work,
        conflict_map=AttributeConflictMap("sensitivity", "TrustLevel", "le"),
        view_policy=view_policy,
        plan_cache=plan_cache,
        memoize=memoize,
        fast_path=fast_path,
        compile_routes=compile_routes,
        proxy_fast_path=proxy_fast_path,
        batch_coherence=batch_coherence,
        versioned_coherence=versioned_coherence,
        telemetry_interval_ms=telemetry_interval_ms,
        flight=flight,
        obs=obs,
        overload_protection=overload_protection,
        autonomic=autonomic,
        parallel=parallel,
        lookup_replicas=lookup_replicas,
        lookup_hosts=lookup_hosts,
        lookup_leases=lookup_leases,
        directory_journal=directory_journal,
        directory_host=directory_host,
    )
    runtime.service_state["mail_users"] = tuple(users)
    for name, cls in MAIL_COMPONENT_CLASSES.items():
        runtime.register_component(name, cls)
    runtime.register_service("mail", default_interface="ClientInterface")
    runtime.preinstall("MailServer", topo.server_node)
    return MailTestbed(runtime=runtime, topology=topo)
