"""The case-study network topology (paper Figure 5).

A company spanning three sites:

- **New York** — main office; hosts the primary mail server; node trust
  level 5.
- **San Diego** — branch office; trust level 3.
- **Seattle** — partner organization; "trusted less than those in New
  York and San Diego": trust level 2.

Inter-site links are "insecure, slow, and of limited bandwidth" with the
figure's annotations (NY-SD 200 ms / 20 Mb/s; NY-Seattle 400 ms /
8 Mb/s; SD-Seattle 100 ms / 50 Mb/s).  Intra-site links are "secure with
a fast connectivity of 100 Mbps" and 0 ms latency.

The paper generated the emulated topology with BRITE; the sites here are
hand-specified to match the figure, with a configurable number of
client nodes per site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..network import Network

__all__ = ["Fig5Topology", "build_fig5_network", "SITES"]

SITES = ("newyork", "sandiego", "seattle")

#: (site, trust level) for each site of Figure 5
SITE_TRUST = {"newyork": 5, "sandiego": 3, "seattle": 2}

#: inter-site links: (a, b, latency_ms, bandwidth_mbps) — all insecure
INTER_SITE = (
    ("newyork", "sandiego", 200.0, 20.0),
    ("newyork", "seattle", 400.0, 8.0),
    ("sandiego", "seattle", 100.0, 50.0),
)

INTRA_LATENCY_MS = 0.0
INTRA_BANDWIDTH_MBPS = 100.0
DEFAULT_NODE_CPU = 1000.0


@dataclass
class Fig5Topology:
    """The built network plus convenient node-name lookups."""

    network: Network
    gateways: Dict[str, str]
    clients: Dict[str, List[str]]
    server_node: str

    def site_of(self, node: str) -> str:
        for site in SITES:
            if node.startswith(site):
                return site
        raise KeyError(f"node {node!r} belongs to no site")


def build_fig5_network(
    clients_per_site: int = 2,
    node_cpu: float = DEFAULT_NODE_CPU,
) -> Fig5Topology:
    """Construct the Figure 5 network.

    Each site gets a gateway node (terminating the inter-site links) and
    ``clients_per_site`` client nodes; New York additionally gets the
    dedicated mail-server host ``newyork-ms``.
    """
    if clients_per_site < 1:
        raise ValueError("need at least one client node per site")
    net = Network()
    gateways: Dict[str, str] = {}
    clients: Dict[str, List[str]] = {}

    for site in SITES:
        trust = SITE_TRUST[site]
        creds = {"trust_level": trust, "site": site}
        gw = f"{site}-gw"
        net.add_node(gw, cpu_capacity=node_cpu, credentials=dict(creds))
        gateways[site] = gw
        clients[site] = []
        for i in range(1, clients_per_site + 1):
            name = f"{site}-client{i}"
            net.add_node(name, cpu_capacity=node_cpu, credentials=dict(creds))
            clients[site].append(name)
            net.add_link(
                gw, name, INTRA_LATENCY_MS, INTRA_BANDWIDTH_MBPS, secure=True
            )

    server_node = "newyork-ms"
    net.add_node(
        server_node,
        cpu_capacity=4 * node_cpu,  # the primary server host is beefier
        credentials={"trust_level": 5, "site": "newyork"},
    )
    net.add_link(
        gateways["newyork"], server_node, INTRA_LATENCY_MS, INTRA_BANDWIDTH_MBPS, secure=True
    )

    for a, b, latency, bw in INTER_SITE:
        net.add_link(gateways[a], gateways[b], latency, bw, secure=False)

    return Fig5Topology(net, gateways, clients, server_node)
