"""The deployments of Figure 6 (paper §4.1).

Runs the planner for a client at each of the three sites (in the
paper's order: New York, San Diego, Seattle — later requests reuse
components earlier ones installed) and checks the resulting component
chains against the figure:

- **New York**: ``MailClient`` connecting directly to the ``MailServer``.
- **San Diego**: ``MailClient -> ViewMailServer[3] -> Encryptor`` in San
  Diego, ``Decryptor`` in New York, linked to the ``MailServer``.
- **Seattle**: ``ViewMailClient -> ViewMailServer[2] -> Encryptor`` in
  Seattle, ``Decryptor`` in San Diego, linked to San Diego's (reused)
  ``ViewMailServer[3]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..planner import DeploymentPlan, Planner, PlanRequest
from ..services.mail import build_mail_spec, mail_translator
from .topology_fig5 import Fig5Topology, build_fig5_network

__all__ = ["Fig6Deployment", "run_fig6", "EXPECTED_CHAINS", "site_chain"]

#: expected (unit, site) chains root-to-server, per client site
EXPECTED_CHAINS: Dict[str, List[Tuple[str, str]]] = {
    "newyork": [
        ("MailClient", "newyork"),
        ("MailServer", "newyork"),
    ],
    "sandiego": [
        ("MailClient", "sandiego"),
        ("ViewMailServer", "sandiego"),
        ("Encryptor", "sandiego"),
        ("Decryptor", "newyork"),
        ("MailServer", "newyork"),
    ],
    "seattle": [
        ("ViewMailClient", "seattle"),
        ("ViewMailServer", "seattle"),
        ("Encryptor", "seattle"),
        ("Decryptor", "sandiego"),
        ("ViewMailServer", "sandiego"),
    ],
}

#: the user identity presented per site (all are in the service ACL)
SITE_USERS = {"newyork": "Alice", "sandiego": "Bob", "seattle": "Carol"}


@dataclass
class Fig6Deployment:
    """One site's planned deployment plus derived summaries."""

    site: str
    plan: DeploymentPlan
    chain: List[Tuple[str, str]] = field(default_factory=list)
    expected: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def matches_paper(self) -> bool:
        return self.chain == self.expected


def site_chain(topology: Fig5Topology, plan: DeploymentPlan) -> List[Tuple[str, str]]:
    """(unit, site) pairs along the plan, root first."""
    return [(p.unit, topology.site_of(p.node)) for p in plan.chain_from_root()]


def run_fig6(
    algorithm: str = "exhaustive",
    clients_per_site: int = 2,
) -> Dict[str, Fig6Deployment]:
    """Plan the three site deployments in the paper's order."""
    spec = build_mail_spec()
    topo = build_fig5_network(clients_per_site=clients_per_site)
    planner = Planner(spec, topo.network, mail_translator(), algorithm=algorithm)
    planner.preinstall("MailServer", topo.server_node)

    out: Dict[str, Fig6Deployment] = {}
    for site in ("newyork", "sandiego", "seattle"):
        request = PlanRequest(
            "ClientInterface",
            topo.clients[site][0],
            context={"User": SITE_USERS[site]},
        )
        plan, _report = planner.plan_and_commit(request)
        out[site] = Fig6Deployment(
            site=site,
            plan=plan,
            chain=site_chain(topo, plan),
            expected=EXPECTED_CHAINS[site],
        )
    return out
