"""Flight recorder: a bounded ring of recent telemetry samples + events.

A crash or invariant violation at simulated minute 40 is useless without
the seconds leading up to it.  The :class:`FlightRecorder` keeps the
last ``capacity`` records — telemetry-sampler ticks, fault injections,
invariant violations, whatever callers push — and dumps them as JSONL
on demand, so a failing chaos seed ships a post-mortem artifact instead
of just a seed number.

Records are plain dicts ``{"t_ms": ..., "kind": ..., **payload}``; the
ring silently evicts the oldest record past capacity (``dropped`` counts
evictions so a dump says how much history was lost).
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Deque, Dict, IO, List, Union

__all__ = ["FlightRecorder", "dump_records_jsonl"]

#: default ring capacity — at the default 500 ms sampling interval this
#: holds the last ~4 simulated minutes of ticks plus interleaved events
FLIGHT_CAPACITY = 512


class FlightRecorder:
    """Bounded ring of recent samples and events."""

    def __init__(self, capacity: int = FLIGHT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def record(self, kind: str, t_ms: float, **payload: Any) -> None:
        """Push one record; evicts the oldest when the ring is full."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append({"t_ms": t_ms, "kind": kind, **payload})

    def event(self, name: str, t_ms: float, **payload: Any) -> None:
        """Convenience for discrete events (faults, violations, crashes)."""
        self.record("event", t_ms, name=name, **payload)

    def records(self) -> List[Dict[str, Any]]:
        """The retained records, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def dump_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write the ring as JSONL (one record per line), oldest first.

        String targets get parent directories created on demand.
        Returns the number of records written.
        """
        return dump_records_jsonl(self.records(), target, dropped=self.dropped)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlightRecorder n={len(self._ring)}/{self.capacity} "
            f"dropped={self.dropped}>"
        )


def dump_records_jsonl(
    records: List[Dict[str, Any]],
    target: Union[str, IO[str]],
    dropped: int = 0,
) -> int:
    """Write flight records as JSONL to a path or open file.

    A leading meta line records how many older entries were evicted, so
    a truncated history is visible in the artifact itself.
    """
    if isinstance(target, str):
        parent = os.path.dirname(target)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(target, "w", encoding="utf-8") as fp:
            return dump_records_jsonl(records, fp, dropped=dropped)
    target.write(
        json.dumps({"kind": "meta", "records": len(records), "dropped": dropped})
        + "\n"
    )
    for record in records:
        target.write(json.dumps(record, sort_keys=True, default=str) + "\n")
    return len(records)
