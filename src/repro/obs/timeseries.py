"""Sim-clock telemetry: ring-buffered time series, windowed histograms,
and the :class:`TelemetrySampler` that drives both.

Everything in :mod:`repro.obs.metrics` is a cumulative end-of-run
snapshot; this module adds the *when*.  A :class:`TelemetrySampler` is a
lightweight periodic callback on the simulator clock that scrapes
registered probes (queue depths, utilizations, counter rates) into
:class:`TimeSeries` rings and rotates every :class:`WindowedHistogram`
in the registry, so per-interval p50/p99/p999 are available alongside
the cumulative summaries.

Knob discipline (see ARCHITECTURE.md "telemetry pipeline"): sampling is
**pull-based** — probes read state the simulation already maintains
(``Resource.queue_length``, ``Store.__len__``, link byte counters), so a
disabled sampler (``interval_ms`` of ``None``/``0`` or
``enabled=False``) schedules nothing and the instrumented layers keep
their fast paths; the only push-side accounting (per-link in-flight
bytes) lives behind ``RuntimeTransport.enable_telemetry()`` and is never
switched on unless a sampler attaches.  The sampler's tick *does*
schedule simulator events, so enabling it changes the event count —
byte-identical simulated results are pinned with telemetry off
(``tests/integration/test_telemetry_determinism.py``).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .metrics import LabelKey, MetricsRegistry, _format_key, _key

__all__ = ["TimeSeries", "WindowedHistogram", "TelemetrySampler"]

#: default ring capacity per time series (at the default 500 ms interval
#: this holds the last 6 simulated minutes)
SERIES_CAPACITY = 720

#: closed windows kept per windowed histogram
WINDOW_CAPACITY = 240

# -- log buckets ------------------------------------------------------------
# Fixed geometric boundaries shared by every windowed histogram: factor
# 1.25 bounds the relative quantile error at 25% per bucket step, and
# 160 buckets span ~1e-3 ms .. ~2e12 ms — wider than any simulated
# latency this repository produces.
_BUCKET_FACTOR = 1.25
_BUCKET_MIN = 1e-3
_N_BUCKETS = 160
_BOUNDS: List[float] = [
    _BUCKET_MIN * _BUCKET_FACTOR**i for i in range(_N_BUCKETS)
]


def _bucket_value(index: int) -> float:
    """Representative (upper-bound) value of bucket ``index``."""
    if index < _N_BUCKETS:
        return _BOUNDS[index]
    return _BOUNDS[-1] * _BUCKET_FACTOR


def _bucket_percentile(counts: Mapping[int, int], total: int, q: float) -> float:
    """Nearest-rank percentile over a sparse bucket-count mapping."""
    if total <= 0:
        return 0.0
    rank = max(1, math.ceil(q * total))
    acc = 0
    for index in sorted(counts):
        acc += counts[index]
        if acc >= rank:
            return _bucket_value(index)
    return _bucket_value(max(counts))  # pragma: no cover - defensive


class TimeSeries:
    """A bounded ring of ``(t_ms, value)`` samples."""

    __slots__ = ("name", "labels", "_samples")

    def __init__(
        self, name: str, labels: LabelKey = (), capacity: int = SERIES_CAPACITY
    ) -> None:
        self.name = name
        self.labels = labels
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    def append(self, t_ms: float, value: float) -> None:
        self._samples.append((t_ms, value))

    def samples(self) -> List[Tuple[float, float]]:
        return list(self._samples)

    def values(self) -> List[float]:
        return [v for _t, v in self._samples]

    def latest(self) -> Optional[Tuple[float, float]]:
        return self._samples[-1] if self._samples else None

    @property
    def capacity(self) -> int:
        return self._samples.maxlen or 0

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TimeSeries {_format_key(self.name, self.labels)} "
            f"n={len(self._samples)}>"
        )


class _Window:
    """One closed sampling window of a :class:`WindowedHistogram`."""

    __slots__ = ("start_ms", "end_ms", "count", "sum", "counts")

    def __init__(
        self,
        start_ms: float,
        end_ms: float,
        count: int,
        total: float,
        counts: Dict[int, int],
    ) -> None:
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.count = count
        self.sum = total
        self.counts = counts

    def percentile(self, q: float) -> float:
        return _bucket_percentile(self.counts, self.count, q)

    def summary(self) -> Dict[str, float]:
        return {
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "count": self.count,
            "mean": self.sum / self.count if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }


class WindowedHistogram:
    """Fixed log-bucket histogram with rolling windows.

    Replaces the sorted-raw-list :class:`~repro.obs.metrics.Histogram`
    on hot per-op paths: ``observe`` is O(log buckets) with bounded
    memory, cumulative count/sum/min/max stay exact, and percentiles are
    bucket-upper-bound approximations (≤ 25% relative error at factor
    1.25).  Windows are closed externally — the
    :class:`TelemetrySampler` calls :meth:`rotate` once per sampling
    interval — so with no sampler attached the whole run is one open
    window and only cumulative summaries are available.

    Duck-types ``Histogram`` for registry export: :meth:`summary`
    returns the same keys (plus ``p999``), so ``snapshot()``/``render()``
    need no special cases.
    """

    __slots__ = (
        "name",
        "labels",
        "count",
        "sum",
        "min",
        "max",
        "_total",
        "_current",
        "_cur_count",
        "_cur_sum",
        "_cur_start",
        "_windows",
    )

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        window_capacity: int = WINDOW_CAPACITY,
    ) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._total: Dict[int, int] = {}
        self._current: Dict[int, int] = {}
        self._cur_count = 0
        self._cur_sum = 0.0
        self._cur_start = 0.0
        self._windows: Deque[_Window] = deque(maxlen=window_capacity)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect_left(_BOUNDS, value)
        total = self._total
        total[index] = total.get(index, 0) + 1
        current = self._current
        current[index] = current.get(index, 0) + 1
        self._cur_count += 1
        self._cur_sum += value

    def rotate(self, now_ms: float) -> Optional[Dict[str, float]]:
        """Close the current window at ``now_ms``.

        Returns the closed window's summary, or ``None`` when nothing
        was observed since the last rotation (empty windows are not
        retained — a quiet interval costs no memory).
        """
        if self._cur_count == 0:
            self._cur_start = now_ms
            return None
        window = _Window(
            self._cur_start, now_ms, self._cur_count, self._cur_sum,
            self._current,
        )
        self._windows.append(window)
        self._current = {}
        self._cur_count = 0
        self._cur_sum = 0.0
        self._cur_start = now_ms
        return window.summary()

    def windows(self) -> List[_Window]:
        """Closed windows, oldest first; the open window is excluded."""
        return list(self._windows)

    def window_percentiles(self, q: float) -> List[Tuple[float, float]]:
        """``(window_end_ms, percentile)`` per closed window."""
        return [(w.end_ms, w.percentile(q)) for w in self._windows]

    def percentile(self, q: float) -> float:
        """Cumulative percentile, clamped into the exact [min, max]."""
        if self.count == 0:
            return 0.0
        value = _bucket_percentile(self._total, self.count, q)
        return min(max(value, self.min), self.max)

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WindowedHistogram {_format_key(self.name, self.labels)} "
            f"n={self.count} windows={len(self._windows)}>"
        )


class TelemetrySampler:
    """Periodic sim-clock scrape of probes into time series.

    Construction is free; :meth:`start` schedules the first tick only
    when the sampler is enabled.  Each tick reads every probe, runs
    every scan hook, rotates the registry's windowed histograms (so
    per-op p50/p99/p999 land in ``<hist>.p50``/``.p99``/``.p999``
    series), optionally feeds the :class:`~repro.obs.flight.FlightRecorder`,
    and re-arms itself — but only while *other* events remain queued, so
    an otherwise-finished ``sim.run()`` still drains one interval after
    quiescence instead of spinning forever.
    """

    def __init__(
        self,
        sim: Any,
        metrics: Optional[MetricsRegistry] = None,
        interval_ms: Optional[float] = 500.0,
        capacity: int = SERIES_CAPACITY,
        flight: Any = None,
        enabled: bool = True,
    ) -> None:
        self.sim = sim
        self.metrics = metrics
        self.interval_ms = float(interval_ms or 0.0)
        self.capacity = capacity
        self.flight = flight
        #: master knob: a disabled sampler never schedules an event and
        #: never enables push-side instrumentation (zero work).
        self.enabled = bool(enabled) and self.interval_ms > 0
        #: True while a tick is armed on the simulator
        self.active = False
        self.ticks = 0
        self._stopped = False
        self._series: Dict[Tuple[str, LabelKey], TimeSeries] = {}
        self._probes: List[Tuple[TimeSeries, Callable[[], Optional[float]]]] = []
        self._scans: List[Callable[[float], None]] = []
        self._service_state: Dict[str, Tuple[int, float]] = {}

    # -- series and probe registration --------------------------------------
    def series(self, name: str, **labels: Any) -> TimeSeries:
        """Get-or-create the time series for ``(name, labels)``."""
        key = _key(name, labels)
        ts = self._series.get(key)
        if ts is None:
            ts = self._series[key] = TimeSeries(
                name, key[1], capacity=self.capacity
            )
        return ts

    def all_series(self) -> List[TimeSeries]:
        return [self._series[k] for k in sorted(self._series)]

    def add_probe(
        self, name: str, fn: Callable[[], Optional[float]], **labels: Any
    ) -> TimeSeries:
        """Register ``fn`` to be read every tick into a series.

        ``fn`` returns the sample value, or ``None`` to skip this tick.
        """
        ts = self.series(name, **labels)
        self._probes.append((ts, fn))
        return ts

    def add_scan(self, fn: Callable[[float], None]) -> None:
        """Register a per-tick hook ``fn(now_ms)`` that may append to
        several series (used for dynamically appearing instances)."""
        self._scans.append(fn)

    def add_counter_rate(
        self, series_name: str, counter_name: str, **labels: Any
    ) -> None:
        """Sample the per-second rate of every counter named
        ``counter_name`` (summed across label sets)."""
        metrics = self.metrics
        if metrics is None:
            return
        state = {"prev": 0.0}
        interval = self.interval_ms

        def probe() -> float:
            total = sum(
                c.value
                for (name, _labels), c in metrics._counters.items()
                if name == counter_name
            )
            delta = total - state["prev"]
            state["prev"] = total
            return delta * 1000.0 / interval

        self.add_probe(series_name, probe, **labels)

    def watch_resource(
        self, resource: Any, name: str = "resource.queue_depth", **labels: Any
    ) -> None:
        """Sample a :class:`~repro.sim.resources.Resource`'s queue depth."""
        self.add_probe(name, lambda: float(resource.queue_length), **labels)

    def watch_store(
        self, store: Any, name: str = "store.depth", **labels: Any
    ) -> None:
        """Sample a :class:`~repro.sim.resources.Store`'s backlog depth."""
        self.add_probe(name, lambda: float(len(store)), **labels)

    def watch_utilization(
        self, resource: Any, name: str = "resource.utilization", **labels: Any
    ) -> None:
        """Sample a resource's per-interval utilization (busy-area delta
        over interval × capacity), not the cumulative average."""
        state = {"area": 0.0, "t": None}
        capacity = resource.capacity

        def probe() -> Optional[float]:
            area = resource.busy_area()
            now = resource.sim.now
            prev_area, prev_t = state["area"], state["t"]
            state["area"], state["t"] = area, now
            if prev_t is None or now <= prev_t:
                return None
            return (area - prev_area) / ((now - prev_t) * capacity)

        self.add_probe(name, probe, **labels)

    # -- standard runtime wiring ---------------------------------------------
    def attach_runtime(self, runtime: Any) -> "TelemetrySampler":
        """Register the standard probe set over a ``SmockRuntime``:
        per-node CPU queue depth and utilization, per-link utilization
        and in-flight bytes, per-component service time, coherence
        dirty-buffer depth, and retry/timeout/replan rates."""
        if not self.enabled:
            return self
        transport = runtime.transport
        transport.enable_telemetry()
        for name, node in transport.nodes.items():
            self.watch_resource(node.cpu, "node.cpu_queue_depth", node=name)
            self.watch_utilization(node.cpu, "node.cpu_utilization", node=name)
        inflight = transport.link_inflight
        for link in transport.links.values():
            label = link.name
            self.watch_utilization(
                link._tx[link.a], "link.utilization", link=label, direction="ab"
            )
            self.watch_utilization(
                link._tx[link.b], "link.utilization", link=label, direction="ba"
            )
            self.add_probe(
                "link.inflight_bytes",
                (lambda nm: lambda: float(inflight.get(nm, 0)))(label),
                link=label,
            )
        self.add_scan(self._make_coherence_scan(runtime))
        self.add_scan(self._make_component_scan(runtime))
        self.add_counter_rate("smock.retry_rate", "smock.retries")
        self.add_counter_rate("smock.timeout_rate", "smock.request_timeouts")
        self.add_counter_rate("failover.replan_rate", "failover.replans")
        return self

    def _bundles_of(self, runtime: Any) -> List[Any]:
        return runtime.bundles() or [runtime.primary]

    def _make_coherence_scan(self, runtime: Any) -> Callable[[float], None]:
        def scan(now: float) -> None:
            for bundle in self._bundles_of(runtime):
                dirty = sum(
                    entry.pending_units
                    for entry in bundle.coherence._replicas.values()
                )
                self.series(
                    "coherence.dirty_units", service=bundle.name
                ).append(now, float(dirty))

        return scan

    def _make_component_scan(self, runtime: Any) -> Callable[[float], None]:
        """Per-component service time: mean of the latency samples that
        arrived since the previous tick (instances appear dynamically as
        deployments land, so this rescans rather than pre-registering)."""
        state = self._service_state

        def scan(now: float) -> None:
            for bundle in self._bundles_of(runtime):
                for inst in bundle.instances.values():
                    samples = inst.latency.samples
                    seen, _prev_mean = state.get(inst.instance_id, (0, 0.0))
                    fresh = samples[seen:]
                    if not fresh:
                        continue
                    mean = sum(fresh) / len(fresh)
                    state[inst.instance_id] = (len(samples), mean)
                    self.series(
                        "component.service_ms",
                        unit=inst.unit.name,
                        node=inst.node.name,
                    ).append(now, mean)

        return scan

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "TelemetrySampler":
        """Arm the first tick; a no-op when disabled or already active."""
        if not self.enabled or self.active:
            return self
        self._stopped = False
        self.active = True
        self.sim.call_after(self.interval_ms, self._tick)
        return self

    def stop(self) -> None:
        self._stopped = True
        self.active = False

    def _tick(self) -> None:
        if self._stopped:
            return
        now = self.sim.now
        self.ticks += 1
        sampled: Dict[str, float] = {}
        for ts, fn in self._probes:
            value = fn()
            if value is None:
                continue
            ts.append(now, value)
            sampled[_format_key(ts.name, ts.labels)] = value
        for scan in self._scans:
            scan(now)
        self._rotate_windowed(now, sampled)
        if self.flight is not None:
            self.flight.record("sample", now, data=sampled)
        # Re-arm only while someone else still has events queued: when
        # the sampler would be the only thing keeping the clock alive,
        # let the run drain (sim.run() terminates one interval after
        # quiescence instead of never).
        if self.sim._heap:
            self.sim.call_after(self.interval_ms, self._tick)
        else:
            self.active = False

    def _rotate_windowed(self, now: float, sampled: Dict[str, float]) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        for (name, labels), hist in list(metrics._histograms.items()):
            if not isinstance(hist, WindowedHistogram):
                continue
            summary = hist.rotate(now)
            if summary is None:
                continue
            label_map = dict(labels)
            for q in ("p50", "p99", "p999"):
                series = self.series(f"{name}.{q}", **label_map)
                series.append(now, summary[q])
                sampled[_format_key(series.name, series.labels)] = summary[q]

    # -- export --------------------------------------------------------------
    def snapshot(self) -> Dict[str, List[Tuple[float, float]]]:
        """JSON-serializable dump: formatted key → list of samples."""
        return {
            _format_key(name, labels): self._series[(name, labels)].samples()
            for (name, labels) in sorted(self._series)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TelemetrySampler interval={self.interval_ms}ms "
            f"enabled={self.enabled} ticks={self.ticks} "
            f"series={len(self._series)}>"
        )
