"""Declarative SLOs evaluated against windowed telemetry.

A spec is a plain mapping (written as YAML, JSON, or an inline dict)::

    name: mail-default
    error_budget: 0.25        # tolerated fraction of windows violating
    max_degraded_read_fraction: 0.5
    read_ops: [fetch_mail]
    ops:
      send_mail:
        p50_ms: 2000
        p99_ms: 60000
        p999_ms: 120000
        availability: 0.95

Evaluation reads the per-op :class:`~repro.obs.timeseries.WindowedHistogram`
registered under ``smock.request_sim_ms{op=...}``: latency objectives are
checked cumulatively for pass/fail *and* per closed window for
error-budget burn (burn = fraction of violating windows over the
budgeted fraction; burn > 1 means the budget is spent).  Availability is
``1 - errors/requests`` from the ``smock.request_errors`` counter, and
the degraded-read objective comes from :class:`CoherenceStats`.  Plain
(non-windowed) histograms still evaluate — the whole run is then one
window and burn is all-or-nothing.

Parsing is dependency-free: :func:`load_slo_spec` accepts JSON outright
and falls back to a tiny YAML subset (nested maps of scalars and flow
lists) when PyYAML is unavailable, which it is in this repository's
zero-dependency toolchain.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import MetricsRegistry, percentile

__all__ = [
    "SLOSpec",
    "SLORow",
    "SLOReport",
    "evaluate_slo",
    "load_slo_spec",
    "DEFAULT_MAIL_SLO",
]

#: latency objective key → percentile rank
_LATENCY_OBJECTIVES: Tuple[Tuple[str, float], ...] = (
    ("p50_ms", 0.50),
    ("p90_ms", 0.90),
    ("p99_ms", 0.99),
    ("p999_ms", 0.999),
)

#: the built-in spec used by ``mail --slo default`` and the chaos /
#: failover harnesses — deliberately loose enough that a healthy run
#: passes and a run with an unmasked outage fails on budget burn.
DEFAULT_MAIL_SLO: Dict[str, Any] = {
    "name": "mail-default",
    "error_budget": 0.25,
    "max_degraded_read_fraction": 0.5,
    "read_ops": ["fetch_mail"],
    "ops": {
        "send_mail": {
            "p50_ms": 2_000.0,
            "p99_ms": 60_000.0,
            "p999_ms": 120_000.0,
            "availability": 0.95,
        },
        "fetch_mail": {
            "p50_ms": 2_000.0,
            "p99_ms": 60_000.0,
            "p999_ms": 120_000.0,
            "availability": 0.95,
        },
    },
}


@dataclass(frozen=True)
class SLOSpec:
    """Parsed, validated SLO targets."""

    name: str
    ops: Dict[str, Dict[str, float]]
    error_budget: float = 0.1
    max_degraded_read_fraction: Optional[float] = None
    read_ops: Sequence[str] = field(default_factory=tuple)

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "SLOSpec":
        ops_raw = raw.get("ops")
        if not isinstance(ops_raw, Mapping) or not ops_raw:
            raise ValueError("SLO spec needs a non-empty 'ops' mapping")
        ops: Dict[str, Dict[str, float]] = {}
        valid = {k for k, _q in _LATENCY_OBJECTIVES} | {"availability"}
        for op, targets in ops_raw.items():
            if not isinstance(targets, Mapping) or not targets:
                raise ValueError(f"op {op!r} needs a mapping of objectives")
            unknown = set(targets) - valid
            if unknown:
                raise ValueError(
                    f"op {op!r} has unknown objectives {sorted(unknown)}; "
                    f"valid: {sorted(valid)}"
                )
            ops[str(op)] = {k: float(v) for k, v in targets.items()}
        budget = float(raw.get("error_budget", 0.1))
        if not 0.0 < budget <= 1.0:
            raise ValueError(f"error_budget must be in (0, 1], got {budget}")
        degraded = raw.get("max_degraded_read_fraction")
        return cls(
            name=str(raw.get("name", "slo")),
            ops=ops,
            error_budget=budget,
            max_degraded_read_fraction=(
                None if degraded is None else float(degraded)
            ),
            read_ops=tuple(raw.get("read_ops", ())),
        )


@dataclass
class SLORow:
    """One evaluated objective."""

    op: str
    objective: str
    target: float
    observed: Optional[float]
    ok: bool
    #: error-budget burn for latency objectives (None for availability
    #: and degraded-read rows, which have no windowed form)
    budget_burn: Optional[float] = None
    windows: int = 0
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "objective": self.objective,
            "target": self.target,
            "observed": self.observed,
            "ok": self.ok,
            "budget_burn": self.budget_burn,
            "windows": self.windows,
            "note": self.note,
        }


@dataclass
class SLOReport:
    """Pass/fail verdict per objective plus the overall verdict."""

    spec_name: str
    rows: List[SLORow]

    @property
    def passed(self) -> bool:
        return all(row.ok for row in self.rows)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec_name,
            "passed": self.passed,
            "rows": [row.to_dict() for row in self.rows],
        }

    def render(self) -> str:
        """Human-readable report table (the ``--slo`` output)."""
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"SLO report [{self.spec_name}]: {verdict}"]
        header = (
            f"  {'op':<14} {'objective':<13} {'target':>12} {'observed':>12} "
            f"{'burn':>6} {'windows':>7}  verdict"
        )
        lines.append(header)
        for row in self.rows:
            observed = "n/a" if row.observed is None else f"{row.observed:.4g}"
            burn = "-" if row.budget_burn is None else f"{row.budget_burn:.2f}"
            status = "ok" if row.ok else "VIOLATED"
            note = f"  ({row.note})" if row.note else ""
            lines.append(
                f"  {row.op:<14} {row.objective:<13} {row.target:>12g} "
                f"{observed:>12} {burn:>6} {row.windows:>7}  {status}{note}"
            )
        return "\n".join(lines)


def _op_histogram(
    metrics: MetricsRegistry, histogram_name: str, op: str
) -> Optional[Any]:
    return metrics._histograms.get((histogram_name, (("op", op),)))


def _cumulative_percentile(hist: Any, q: float) -> float:
    """Cumulative percentile for either histogram flavor."""
    if hasattr(hist, "percentile"):  # WindowedHistogram
        return hist.percentile(q)
    return percentile(sorted(hist._values), q)


def _latency_rows(
    op: str,
    targets: Mapping[str, float],
    hist: Optional[Any],
    error_budget: float,
) -> List[SLORow]:
    rows: List[SLORow] = []
    windows = hist.windows() if hist is not None and hasattr(hist, "windows") else []
    for objective, q in _LATENCY_OBJECTIVES:
        if objective not in targets:
            continue
        target = targets[objective]
        if hist is None or not hist.count:
            rows.append(
                SLORow(op, objective, target, None, False, note="no data")
            )
            continue
        observed = _cumulative_percentile(hist, q)
        if windows:
            violating = sum(1 for w in windows if w.percentile(q) > target)
            burn_frac = violating / len(windows)
            burn = burn_frac / error_budget
        else:
            # No closed windows (sampler off or run shorter than one
            # interval): the whole run is a single window.
            burn = (1.0 if observed > target else 0.0) / error_budget
        ok = observed <= target and burn <= 1.0
        rows.append(
            SLORow(
                op, objective, target, observed, ok,
                budget_burn=burn, windows=len(windows),
            )
        )
    return rows


def evaluate_slo(
    spec: SLOSpec,
    metrics: MetricsRegistry,
    coherence_stats: Any = None,
    histogram_name: str = "smock.request_sim_ms",
) -> SLOReport:
    """Evaluate ``spec`` against a metrics registry's recorded state."""
    rows: List[SLORow] = []
    for op, targets in spec.ops.items():
        hist = _op_histogram(metrics, histogram_name, op)
        rows.extend(_latency_rows(op, targets, hist, spec.error_budget))
        if "availability" in targets:
            target = targets["availability"]
            total = hist.count if hist is not None else 0
            if not total:
                rows.append(
                    SLORow(op, "availability", target, None, False, note="no data")
                )
            else:
                errors = metrics._counters.get(
                    ("smock.request_errors", (("op", op),))
                )
                failed = errors.value if errors is not None else 0.0
                observed = 1.0 - failed / total
                rows.append(
                    SLORow(op, "availability", target, observed, observed >= target)
                )
    if spec.max_degraded_read_fraction is not None and coherence_stats is not None:
        target = spec.max_degraded_read_fraction
        read_ops = spec.read_ops or tuple(spec.ops)
        reads = sum(
            h.count
            for op in read_ops
            for h in [_op_histogram(metrics, histogram_name, op)]
            if h is not None
        )
        degraded = getattr(coherence_stats, "degraded_reads", 0)
        if reads:
            observed = degraded / reads
            rows.append(
                SLORow(
                    "(reads)", "degraded_frac", target, observed,
                    observed <= target,
                )
            )
        else:
            rows.append(
                SLORow("(reads)", "degraded_frac", target, None, False,
                       note="no data")
            )
    return SLOReport(spec_name=spec.name, rows=rows)


# -- spec loading ------------------------------------------------------------
def _coerce_scalar(text: str) -> Any:
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        return [_coerce_scalar(part) for part in inner.split(",")] if inner else []
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("null", "none", "~"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _parse_simple_yaml(text: str) -> Dict[str, Any]:
    """Tiny YAML-subset parser: nested maps of scalars and flow lists.

    Enough for SLO spec files; used when PyYAML is unavailable.  No
    block lists, anchors, or multi-line scalars.
    """
    root: Dict[str, Any] = {}
    stack: List[Tuple[int, Dict[str, Any]]] = [(-1, root)]
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        indent = len(line) - len(line.lstrip())
        stripped = line.strip()
        if ":" not in stripped:
            raise ValueError(f"line {lineno}: expected 'key: value', got {raw!r}")
        key, _, value = stripped.partition(":")
        while stack and indent <= stack[-1][0]:
            stack.pop()
        if not stack:
            raise ValueError(f"line {lineno}: bad indentation in {raw!r}")
        parent = stack[-1][1]
        if value.strip() == "":
            child: Dict[str, Any] = {}
            parent[key.strip()] = child
            stack.append((indent, child))
        else:
            parent[key.strip()] = _coerce_scalar(value)
    return root


def load_slo_spec(source: str) -> SLOSpec:
    """Load a spec from ``"default"``, a JSON/YAML file path, or an
    inline JSON string."""
    if source == "default":
        return SLOSpec.from_dict(DEFAULT_MAIL_SLO)
    if os.path.exists(source):
        with open(source, "r", encoding="utf-8") as fp:
            text = fp.read()
    else:
        text = source
    try:
        raw = json.loads(text)
    except ValueError:
        try:
            import yaml  # type: ignore[import-untyped]

            raw = yaml.safe_load(text)
        except ImportError:
            raw = _parse_simple_yaml(text)
    if not isinstance(raw, Mapping):
        raise ValueError(f"SLO spec did not parse to a mapping: {source!r}")
    return SLOSpec.from_dict(raw)
