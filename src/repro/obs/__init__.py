"""Zero-dependency observability: tracing, metrics, structured logging.

The paper's evaluation (§4) is entirely about *where time goes* —
linkage-enumeration cost, planning latency, per-request client latency
under different deployments.  This package gives every layer of the
reproduction a common way to answer that question:

- :class:`Tracer` / :class:`Span` — nestable spans that record **both**
  wall-clock duration (host compute) and simulated-clock duration (the
  virtual milliseconds of Figure 7), plus point events;
- :class:`MetricsRegistry` — counters, gauges and histograms with
  percentile summaries (labels supported);
- :class:`TraceRecorder` — collects finished spans/events, exports
  JSON-lines and renders a human-readable span tree;
- :mod:`repro.obs.logs` — stdlib-``logging`` helpers whose default
  console handler keeps CLI output byte-identical to the old ``print``
  based output, with an opt-in JSON formatter.

Everything is bundled by :class:`Observability`; a process-wide default
(:data:`NULL_OBS`, fully disabled) keeps the instrumented hot paths
free when nobody is watching.  Enable from the CLI with
``python -m repro <cmd> --trace out.jsonl --metrics`` or
programmatically::

    from repro.obs import Observability, use_obs

    obs = Observability()
    with use_obs(obs):
        testbed = build_mail_testbed()
        ...
    print(obs.recorder.tree_report())
    print(obs.metrics.render())
"""

from .core import (
    NULL_OBS,
    Observability,
    get_default_obs,
    reset_default_obs,
    resolve_obs,
    set_default_obs,
    use_obs,
)
from .flight import FlightRecorder
from .logs import JsonFormatter, configure_logging, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import TraceRecorder, load_jsonl
from .slo import DEFAULT_MAIL_SLO, SLOReport, SLOSpec, evaluate_slo, load_slo_spec
from .span import NULL_SPAN, Span
from .timeseries import TelemetrySampler, TimeSeries, WindowedHistogram
from .tracer import Tracer

__all__ = [
    "Observability",
    "NULL_OBS",
    "get_default_obs",
    "set_default_obs",
    "reset_default_obs",
    "resolve_obs",
    "use_obs",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TraceRecorder",
    "load_jsonl",
    "TimeSeries",
    "WindowedHistogram",
    "TelemetrySampler",
    "SLOSpec",
    "SLOReport",
    "evaluate_slo",
    "load_slo_spec",
    "DEFAULT_MAIL_SLO",
    "FlightRecorder",
    "configure_logging",
    "get_logger",
    "JsonFormatter",
]
