"""Structured logging on top of the stdlib, CLI-output compatible.

All repository loggers live under the ``repro`` namespace
(:func:`get_logger`).  :func:`configure_logging` installs handlers whose
*default* rendering is exactly what ``print()`` produced before —
bare ``%(message)s`` to stdout for INFO and below-ERROR records, and to
stderr for ERROR and up — so scripts that scrape the CLI keep working.
``json_output=True`` swaps in :class:`JsonFormatter`, one JSON object
per line with any structured fields passed via ``extra={"fields": ...}``.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, IO, Optional

__all__ = ["configure_logging", "get_logger", "JsonFormatter"]

ROOT_LOGGER = "repro"

# Library default: never emit "no handler" warnings for importers that
# don't configure logging.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger in the ``repro`` namespace (``get_logger("cli")`` →
    ``repro.cli``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, msg (+ fields)."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload["fields"] = fields
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class _BelowErrorFilter(logging.Filter):
    def filter(self, record: logging.LogRecord) -> bool:
        return record.levelno < logging.ERROR


#: marker attribute so reconfiguration replaces only our handlers
_MANAGED = "_repro_obs_managed"


def configure_logging(
    level: str = "INFO",
    json_output: bool = False,
    stream: Optional[IO[str]] = None,
    err_stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; idempotent.

    With ``stream`` given, everything (all levels) goes there — handy
    for tests.  Otherwise records below ERROR go to stdout and ERROR+
    to stderr, matching the CLI's historic ``print`` behavior.
    """
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, _MANAGED, False):
            root.removeHandler(handler)

    formatter: logging.Formatter = (
        JsonFormatter() if json_output else logging.Formatter("%(message)s")
    )

    def _make(target: IO[str]) -> logging.Handler:
        handler = logging.StreamHandler(target)
        handler.setFormatter(formatter)
        setattr(handler, _MANAGED, True)
        return handler

    if stream is not None:
        root.addHandler(_make(stream))
    else:
        out = _make(sys.stdout)
        out.addFilter(_BelowErrorFilter())
        err = _make(err_stream or sys.stderr)
        err.setLevel(logging.ERROR)
        root.addHandler(out)
        root.addHandler(err)

    root.setLevel(getattr(logging, level.upper(), logging.INFO))
    return root
