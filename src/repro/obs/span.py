"""Spans: one timed operation, on two clocks at once.

A :class:`Span` measures an operation against the host's wall clock
(``time.perf_counter``) and, when the owning tracer has a simulated
clock bound (see :meth:`repro.obs.tracer.Tracer.bind_sim_clock`),
against the simulator's virtual clock as well.  The two rarely agree —
planning burns wall time but only the charged CPU work appears on the
simulated clock — and the gap is itself informative.

:data:`NULL_SPAN` is the do-nothing singleton returned by a disabled
tracer, so instrumented code never branches on "is tracing on?".
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

__all__ = ["Span", "NullSpan", "NULL_SPAN"]


class Span:
    """One finished-or-in-flight traced operation."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "status",
        "wall_ms",
        "sim_start_ms",
        "sim_ms",
        "_wall_start",
        "_tracer",
        "_finished",
    )

    def __init__(
        self,
        tracer: Any,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.status = "ok"
        self._wall_start = time.perf_counter()
        self.wall_ms: Optional[float] = None
        self.sim_start_ms: Optional[float] = tracer.sim_now()
        self.sim_ms: Optional[float] = None
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def finish(self, status: Optional[str] = None, **attrs: Any) -> "Span":
        """Close the span (idempotent) and hand it to the recorder."""
        if self._finished:
            return self
        self._finished = True
        if attrs:
            self.attrs.update(attrs)
        if status is not None:
            self.status = status
        self.wall_ms = (time.perf_counter() - self._wall_start) * 1e3
        if self.sim_start_ms is not None:
            now = self._tracer.sim_now()
            if now is not None:
                self.sim_ms = now - self.sim_start_ms
        self._tracer._record(self)
        return self

    def to_record(self) -> Dict[str, Any]:
        """The JSON-lines representation of this span."""
        rec: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "status": self.status,
            "wall_ms": self.wall_ms,
        }
        if self.sim_start_ms is not None:
            rec["sim_start_ms"] = self.sim_start_ms
            rec["sim_ms"] = self.sim_ms
        if self.attrs:
            rec["attrs"] = dict(self.attrs)
        return rec

    # Context-manager support for explicit, non-stack-tracked spans.
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish(status="error" if exc_type is not None else None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = f"{self.wall_ms:.2f}ms" if self.wall_ms is not None else "open"
        return f"<Span {self.name} #{self.span_id} {dur}>"


class NullSpan:
    """Inert stand-in used when tracing is disabled."""

    __slots__ = ()
    span_id = None
    parent_id = None
    name = ""
    attrs: Dict[str, Any] = {}
    status = "ok"
    wall_ms = None
    sim_start_ms = None
    sim_ms = None
    finished = True

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def finish(self, status: Optional[str] = None, **attrs: Any) -> "NullSpan":
        return self

    def to_record(self) -> Dict[str, Any]:
        return {}

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullSpan>"


NULL_SPAN = NullSpan()
