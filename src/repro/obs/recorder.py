"""Trace storage and export: JSON-lines plus a human-readable tree.

The recorder is deliberately dumb — an append-only list of dict records
(spans, point events, and a trailing metrics snapshot when the CLI adds
one).  Export formats:

- :meth:`TraceRecorder.to_jsonl` — one JSON object per line, the
  interchange format (``python -m repro <cmd> --trace out.jsonl``);
- :func:`load_jsonl` — the inverse, for tooling and round-trip tests;
- :meth:`TraceRecorder.tree_report` — an indented span forest with both
  simulated and wall durations, the quick "where did the time go" view.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Dict, IO, List, Optional, Union

__all__ = ["TraceRecorder", "load_jsonl"]


class TraceRecorder:
    """Append-only store of trace records."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def add(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()

    # -- accessors ----------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Finished span records, optionally filtered by span name."""
        return [
            r
            for r in self.records
            if r.get("type") == "span" and (name is None or r.get("name") == name)
        ]

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [
            r
            for r in self.records
            if r.get("type") == "event" and (name is None or r.get("name") == name)
        ]

    def children_of(self, span: Dict[str, Any]) -> List[Dict[str, Any]]:
        sid = span.get("span_id")
        return [r for r in self.spans() if r.get("parent_id") == sid]

    # -- JSON-lines ---------------------------------------------------------
    def to_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write every record as one JSON object per line.

        ``target`` is a path or a text file object; returns the number
        of records written.  Path targets get missing parent directories
        created, so ``--trace out/dir/trace.jsonl`` just works.
        """
        if isinstance(target, str):
            parent = os.path.dirname(target)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(target, "w") as fp:
                return self.to_jsonl(fp)
        for record in self.records:
            target.write(json.dumps(record, sort_keys=True, default=str))
            target.write("\n")
        return len(self.records)

    def to_jsonl_str(self) -> str:
        buf = io.StringIO()
        self.to_jsonl(buf)
        return buf.getvalue()

    # -- tree report --------------------------------------------------------
    def tree_report(self) -> str:
        """The span forest, indented, with sim/wall durations and attrs."""
        spans = self.spans()
        by_parent: Dict[Optional[int], List[Dict[str, Any]]] = {}
        ids = {s.get("span_id") for s in spans}
        for s in spans:
            parent = s.get("parent_id")
            if parent not in ids:
                parent = None  # orphan (parent never finished): show at root
            by_parent.setdefault(parent, []).append(s)

        lines: List[str] = []

        def fmt(span: Dict[str, Any]) -> str:
            parts = [span.get("name", "?")]
            sim_ms = span.get("sim_ms")
            if sim_ms is not None:
                parts.append(f"sim={sim_ms:.2f}ms")
            wall_ms = span.get("wall_ms")
            if wall_ms is not None:
                parts.append(f"wall={wall_ms:.3f}ms")
            if span.get("status") != "ok":
                parts.append(f"status={span.get('status')}")
            attrs = span.get("attrs") or {}
            for k, v in sorted(attrs.items()):
                parts.append(f"{k}={v}")
            return "  ".join(parts)

        def walk(parent: Optional[int], depth: int) -> None:
            for span in by_parent.get(parent, ()):
                lines.append("  " * depth + fmt(span))
                walk(span.get("span_id"), depth + 1)

        walk(None, 0)
        return "\n".join(lines) if lines else "(no spans recorded)"

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceRecorder records={len(self.records)}>"


def load_jsonl(source: Union[str, IO[str]]) -> TraceRecorder:
    """Read a JSON-lines trace back into a :class:`TraceRecorder`."""
    if isinstance(source, str):
        with open(source) as fp:
            return load_jsonl(fp)
    recorder = TraceRecorder()
    for line in source:
        line = line.strip()
        if line:
            recorder.add(json.loads(line))
    return recorder
