"""The :class:`Observability` bundle and the process-wide default.

Every instrumented constructor takes ``obs: Optional[Observability]``
and resolves ``None`` through :func:`resolve_obs`, which falls back to
the process default — :data:`NULL_OBS` (everything disabled) unless the
CLI, a test fixture, or :func:`use_obs` installed an enabled bundle.
This keeps plumbing out of call sites that don't care while letting one
``set_default_obs`` light up the whole stack.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import MetricsRegistry
from .recorder import TraceRecorder
from .tracer import Tracer

__all__ = [
    "Observability",
    "NULL_OBS",
    "get_default_obs",
    "set_default_obs",
    "reset_default_obs",
    "resolve_obs",
    "use_obs",
]


class Observability:
    """Tracer + metrics + recorder, wired together."""

    def __init__(
        self,
        *,
        tracing: bool = True,
        metrics: bool = True,
        capture_sim_events: bool = False,
    ) -> None:
        self.recorder = TraceRecorder()
        self.tracer = Tracer(enabled=tracing, recorder=self.recorder)
        self.metrics = MetricsRegistry(enabled=metrics)
        #: emit a ``sim.dispatch`` event per simulator step (verbose;
        #: off by default even when tracing is on)
        self.capture_sim_events = capture_sim_events

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Observability tracing={self.tracer.enabled} "
            f"metrics={self.metrics.enabled} records={len(self.recorder)}>"
        )


#: the do-nothing bundle every un-observed component shares
NULL_OBS = Observability(tracing=False, metrics=False)

_default: Observability = NULL_OBS


def get_default_obs() -> Observability:
    return _default


def set_default_obs(obs: Observability) -> Observability:
    """Install ``obs`` as the process default; returns the previous one."""
    global _default
    previous = _default
    _default = obs
    return previous


def reset_default_obs() -> None:
    global _default
    _default = NULL_OBS


def resolve_obs(obs: Optional[Observability]) -> Observability:
    """What instrumented constructors call on their ``obs`` argument."""
    return obs if obs is not None else _default


@contextmanager
def use_obs(obs: Observability) -> Iterator[Observability]:
    """Scoped default: everything constructed inside observes ``obs``."""
    previous = set_default_obs(obs)
    try:
        yield obs
    finally:
        set_default_obs(previous)
