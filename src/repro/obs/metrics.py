"""Counters, gauges and histograms — the numeric half of observability.

Metrics are identified by ``(name, labels)``; labels are free-form
key/value pairs (``metrics.inc("planner.pruned", 3, algorithm="dp_chain")``).
Histograms keep raw observations (capped) and summarize with exact
percentiles over what was kept, which is plenty for the repository's
benchmark scales.

A disabled registry (``MetricsRegistry(enabled=False)``) turns every
mutation into an early return, so instrumentation can stay inline on
warm paths.  Truly hot loops (the simulator's dispatch loop) should
instead grab a metric handle once and call ``inc`` on it directly.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "percentile"]

#: raw observations kept per histogram; count/sum/min/max stay exact beyond it
HISTOGRAM_CAP = 100_000

LabelKey = Tuple[Tuple[str, Any], ...]


def _key(name: str, labels: Mapping[str, Any]) -> Tuple[str, LabelKey]:
    return (name, tuple(sorted(labels.items())))


def _format_key(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def percentile(sorted_values: List[float], q: float) -> float:
    """Exact percentile (nearest-rank) over pre-sorted values.

    Total: an empty input yields 0.0 (no observations means no latency,
    the same convention as ``Monitor.percentile``), and a single element
    is every percentile of itself — callers never need to guard.
    """
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values), max(1, math.ceil(q * len(sorted_values))))
    return sorted_values[rank - 1]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n


class Gauge:
    """A value that goes up and down (e.g. live replica count)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Distribution of observations with percentile summaries."""

    __slots__ = ("name", "labels", "count", "sum", "min", "max", "_values")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._values) < HISTOGRAM_CAP:
            self._values.append(value)

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        ordered = sorted(self._values)
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count,
            "min": self.min,
            "max": self.max,
            "p50": percentile(ordered, 0.50),
            "p90": percentile(ordered, 0.90),
            "p99": percentile(ordered, 0.99),
        }


class MetricsRegistry:
    """Process-local registry of named, labeled metrics."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- handle accessors (create on first use) -----------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, key[1])
        return c

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, key[1])
        return g

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, key[1])
        return h

    def windowed_histogram(self, name: str, **labels: Any) -> "Any":
        """Handle accessor for a log-bucket windowed histogram (see
        :class:`repro.obs.timeseries.WindowedHistogram`).

        Lives in the same ``_histograms`` table as plain histograms —
        ``snapshot()``/``render()`` treat both uniformly via
        ``summary()`` — but supports per-interval rotation by the
        telemetry sampler.  A name may be one kind or the other, not
        both: requesting a windowed handle for an existing plain
        histogram raises rather than silently discarding observations.
        """
        from .timeseries import WindowedHistogram

        key = _key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = WindowedHistogram(name, key[1])
        elif not isinstance(h, WindowedHistogram):
            raise TypeError(
                f"{_format_key(name, key[1])} already exists as a plain Histogram"
            )
        return h

    # -- one-shot mutation helpers ------------------------------------------
    def inc(self, name: str, n: float = 1, **labels: Any) -> None:
        if not self.enabled:
            return
        self.counter(name, **labels).inc(n)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        self.histogram(name, **labels).observe(value)

    # -- export -------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A JSON-serializable dump of every metric's current state."""
        return {
            "counters": {
                _format_key(name, labels): c.value
                for (name, labels), c in sorted(self._counters.items())
            },
            "gauges": {
                _format_key(name, labels): g.value
                for (name, labels), g in sorted(self._gauges.items())
            },
            "histograms": {
                _format_key(name, labels): h.summary()
                for (name, labels), h in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """Human-readable metrics summary (the ``--metrics`` output)."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters:")
            for (name, labels), c in sorted(self._counters.items()):
                lines.append(f"  {_format_key(name, labels):52s} {c.value:g}")
        if self._gauges:
            lines.append("gauges:")
            for (name, labels), g in sorted(self._gauges.items()):
                lines.append(f"  {_format_key(name, labels):52s} {g.value:g}")
        if self._histograms:
            lines.append("histograms:")
            for (name, labels), h in sorted(self._histograms.items()):
                s = h.summary()
                if s["count"] == 0:
                    lines.append(f"  {_format_key(name, labels):52s} (empty)")
                    continue
                lines.append(
                    f"  {_format_key(name, labels):52s} "
                    f"n={s['count']} mean={s['mean']:.3f} p50={s['p50']:.3f} "
                    f"p90={s['p90']:.3f} p99={s['p99']:.3f} max={s['max']:.3f}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )
