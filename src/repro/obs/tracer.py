"""The tracer: span lifecycle, parenting, and point events.

Two parenting modes coexist because the codebase has two execution
styles:

- **Synchronous code** (the planner, the CLI) nests spans with the
  :meth:`Tracer.span` context manager, which maintains a stack — the
  innermost open span is the implicit parent.
- **Simulation processes** (generators that ``yield`` to the event
  loop) interleave arbitrarily, so a stack would attribute children to
  whichever process happened to run last.  Generator code therefore
  passes parents *explicitly*: ``tracer.start_span("bind",
  parent=connect_span)``.  :meth:`attach` bridges the two, pushing an
  explicit span onto the stack around a purely-synchronous call (e.g.
  the generic server attaching its ``plan`` span while it invokes the
  planner).
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, Union

from .span import NULL_SPAN, NullSpan, Span

__all__ = ["Tracer"]

AnySpan = Union[Span, NullSpan]


class Tracer:
    """Creates spans and point events, feeding a recorder."""

    def __init__(self, enabled: bool = True, recorder: Any = None) -> None:
        from .recorder import TraceRecorder  # local: avoid import cycle

        self.enabled = enabled
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self._ids = itertools.count(1)
        self._stack: List[Span] = []
        self._sim_clock: Optional[Callable[[], float]] = None

    # -- simulated clock ----------------------------------------------------
    def bind_sim_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """Attach the simulator's clock so spans get simulated durations.

        With several simulators sharing one tracer the last binding
        wins; spans started earlier keep the clock reading they took at
        start time.
        """
        self._sim_clock = clock

    def sim_now(self) -> Optional[float]:
        """Current simulated time, or None when no clock is bound."""
        clock = self._sim_clock
        return clock() if clock is not None else None

    # -- spans --------------------------------------------------------------
    def start_span(
        self, name: str, parent: Optional[AnySpan] = None, **attrs: Any
    ) -> AnySpan:
        """Open a span.  ``parent=None`` means "top of the sync stack,
        if any"; pass an explicit span (or ``NULL_SPAN``) otherwise."""
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent_id = self._stack[-1].span_id if self._stack else None
        else:
            parent_id = parent.span_id
        return Span(self, name, next(self._ids), parent_id, attrs)

    @contextmanager
    def span(
        self, name: str, parent: Optional[AnySpan] = None, **attrs: Any
    ) -> Iterator[AnySpan]:
        """Stack-tracked span for synchronous code paths."""
        s = self.start_span(name, parent, **attrs)
        tracked = isinstance(s, Span)
        if tracked:
            self._stack.append(s)
        try:
            yield s
        except BaseException:
            s.status = "error"
            raise
        finally:
            if tracked:
                self._stack.pop()
            s.finish()

    @contextmanager
    def attach(self, span: AnySpan) -> Iterator[AnySpan]:
        """Make an explicitly-parented span the current stack parent.

        Must not contain a ``yield`` to the simulator — the stack is
        only safe inside one synchronous call chain.
        """
        tracked = isinstance(span, Span)
        if tracked:
            self._stack.append(span)
        try:
            yield span
        finally:
            if tracked:
                self._stack.pop()

    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- point events -------------------------------------------------------
    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous event (e.g. one simulator dispatch)."""
        if not self.enabled:
            return
        rec: dict = {"type": "event", "name": name}
        now = self.sim_now()
        if now is not None:
            rec["sim_ms"] = now
        if attrs:
            rec["attrs"] = attrs
        self.recorder.add(rec)

    # -- recorder hand-off --------------------------------------------------
    def _record(self, span: Span) -> None:
        self.recorder.add(span.to_record())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} depth={len(self._stack)}>"
