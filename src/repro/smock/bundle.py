"""Per-service state within a shared Smock runtime.

One runtime can host several partitionable services; the paper notes
the framework "ensures that the generic server does not become a
bottleneck by spreading out requests for different services among
multiple instances".  Each registered service gets its own
:class:`ServiceBundle`: spec, planner (with its own deployment state and
objective), generic-server instance, coherence directory, component
classes, and instance registry — while the simulator, network,
transport, node wrappers and lookup namespace are shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple, Type

from ..coherence import CoherenceDirectory
from ..planner import Planner
from ..spec import ServiceSpec, ViewDef

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .component import RuntimeComponent
    from .server import GenericServer

__all__ = ["ServiceBundle"]


@dataclass
class ServiceBundle:
    """Everything belonging to one hosted service."""

    name: str
    spec: ServiceSpec
    planner: Planner
    server: "GenericServer"
    coherence: CoherenceDirectory
    default_interface: str = ""
    code_base_node: str = ""
    component_classes: Dict[str, Type["RuntimeComponent"]] = field(default_factory=dict)
    instances: Dict[Tuple, "RuntimeComponent"] = field(default_factory=dict)
    view_policy: Callable[[ViewDef, Any], Any] = None  # type: ignore[assignment]

    def component_class(self, unit_name: str) -> Type["RuntimeComponent"]:
        from .deployment import DeploymentError

        cls = self.component_classes.get(unit_name)
        if cls is None:
            raise DeploymentError(
                f"service {self.name!r}: no runtime class registered for "
                f"unit {unit_name!r}"
            )
        return cls

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ServiceBundle {self.name!r} units={len(self.component_classes)} "
            f"instances={len(self.instances)}>"
        )
