"""Request/response message model of the Smock runtime.

All inter-component communication is request/response over planned
linkages.  Sizes drive the simulated transfer times; the ``trace`` list
records the placements a request visited (used by tests to verify that
traffic follows exactly the planner's linkages).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["ServiceRequest", "ServiceResponse", "RequestError"]

_request_ids = itertools.count(1)


class RequestError(RuntimeError):
    """A component rejected or failed to serve a request."""


@dataclass(slots=True)
class ServiceRequest:
    """One operation invocation travelling down a linkage chain.

    Slotted: one instance (often two or three, counting per-hop children)
    exists per simulated message, so the dict-free layout is measurable
    at benchmark scale.
    """

    op: str
    payload: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 512
    user: Optional[str] = None
    #: placements visited, e.g. ["MailClient@sd-client1", ...]
    trace: List[str] = field(default_factory=list)
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: stable identity across retries: two deliveries carrying the same
    #: key are the same logical operation, and stateful components must
    #: apply it at most once.  ``None`` (the default) opts out of
    #: deduplication entirely.
    idempotency_key: Optional[str] = None

    def child(self, op: str, payload: Dict[str, Any], size_bytes: int) -> "ServiceRequest":
        """Derive the downstream request a component issues on behalf of
        this one (same user identity, shared trace, same idempotency
        key — a retried chain must dedupe at every stateful hop)."""
        return ServiceRequest(
            op=op,
            payload=payload,
            size_bytes=size_bytes,
            user=self.user,
            trace=self.trace,
            idempotency_key=self.idempotency_key,
        )


@dataclass(slots=True)
class ServiceResponse:
    """The reply travelling back up."""

    payload: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 256
    ok: bool = True
    error: Optional[str] = None
    #: infrastructure failure (crash, partition, timeout) as opposed to
    #: an application rejection — only these are worth retrying.
    retryable: bool = False
    #: backpressure hint: the sender should wait at least this long
    #: before retrying.  Set by overload protection (admission shed,
    #: token-bucket throttle, open circuit breaker); ``None`` everywhere
    #: else.  A set value also marks the response as *backpressure*
    #: rather than a service failure — circuit breakers ignore it.
    retry_after_ms: Optional[float] = None

    @classmethod
    def failure(
        cls,
        message: str,
        size_bytes: int = 128,
        retryable: bool = False,
        retry_after_ms: Optional[float] = None,
    ) -> "ServiceResponse":
        return cls(
            payload={}, size_bytes=size_bytes, ok=False, error=message,
            retryable=retryable, retry_after_ms=retry_after_ms,
        )
