"""Runtime component model.

A :class:`RuntimeComponent` is a live instance of a spec unit installed
on a simulated node.  Components communicate only through
:class:`ServerStub` objects bound by the deployer according to the
planned linkages — calling ``self.call('ServerInterface', req)`` charges
the simulated network and the remote node's CPU exactly as the plan's
paths dictate.

Request handling is synchronous-RPC-over-generators: a component's
``handle`` is a generator; serving a request charges the component's
declared per-request CPU on its node before dispatching.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from ..network import NetworkError
from ..sim import FaultError, NodeDownError, SimNode, Simulator
from ..sim.resources import Monitor
from ..spec import ComponentDef
from .messages import RequestError, ServiceRequest, ServiceResponse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SmockRuntime

__all__ = ["RuntimeComponent", "ServerStub"]

#: per-class op dispatch tables (op name -> unbound handler), built once —
#: ``serve`` runs per simulated message and getattr-with-f-string per call
#: shows up at benchmark scale.  ``op_<name> = None`` class attributes
#: deliberately do NOT enter the table: they mean "interface narrowed away",
#: and must keep producing the "has no op" failure response.
_DISPATCH_TABLES: Dict[type, Dict[str, Callable[..., Any]]] = {}


def _dispatch_table(cls: type) -> Dict[str, Callable[..., Any]]:
    table = _DISPATCH_TABLES.get(cls)
    if table is None:
        table = {}
        for name in dir(cls):
            if name.startswith("op_"):
                handler = getattr(cls, name)
                if handler is not None:
                    table[name[3:]] = handler
        _DISPATCH_TABLES[cls] = table
    return table


class ServerStub:
    """Client-side handle for one planned linkage."""

    def __init__(
        self,
        runtime: "SmockRuntime",
        interface: str,
        client_node: str,
        server: "RuntimeComponent",
    ) -> None:
        self.runtime = runtime
        self.interface = interface
        self.client_node = client_node
        self.server = server
        self.calls = 0

    def request(self, req: ServiceRequest, response_bytes_hint: int = 0) -> Generator[Any, Any, ServiceResponse]:
        """Process generator: full round trip to the bound server.

        A network partition (no route to the server) or an infrastructure
        fault (crashed host, severed link mid-transfer) surfaces as a
        *retryable* failure response, not an exception — callers decide
        whether to retry, fail over, or report upstream.

        When a :class:`FaultHook` is installed, its message-level
        verdicts apply here at the RPC boundary (``deliver`` only moves
        byte counts): ``("reorder", hold_ms)`` holds the request back so
        later traffic overtakes it; ``"corrupt"`` garbles the request
        past the link — it still burns the round trip but the receiver
        rejects it (retryable failure, like a checksum mismatch);
        ``"duplicate"`` delivers the request to the server *twice*,
        exercising the receiver's dedup (idempotency keys, version
        frontier) — the caller sees the first response.
        """
        self.calls += 1
        transport = self.runtime.transport
        try:
            hook = transport.fault_hook
            verdicts = (
                hook.on_message(self.client_node, self.server.node_name, req.size_bytes)
                if hook is not None
                else ()
            )
            for verdict in verdicts:
                if isinstance(verdict, tuple) and verdict[0] == "reorder":
                    transport.messages_reordered += 1
                    yield self.runtime.sim.timeout(float(verdict[1]))
            yield from transport.deliver(
                self.client_node, self.server.node_name, req.size_bytes
            )
            if "corrupt" in verdicts:
                transport.messages_corrupted += 1
                return ServiceResponse.failure(
                    f"corrupt: {self.client_node} -> {self.server.node_name}: "
                    f"request {req.op!r} failed integrity check",
                    retryable=True,
                )
            resp = yield from self.server.serve(req)
            if "duplicate" in verdicts:
                transport.messages_duplicated += 1
                yield from self.server.serve(req)
            yield from transport.deliver(
                self.server.node_name, self.client_node, resp.size_bytes
            )
        except (NetworkError, FaultError) as exc:
            return ServiceResponse.failure(
                f"unreachable: {self.client_node} -> {self.server.node_name}: {exc}",
                retryable=True,
            )
        return resp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ServerStub {self.interface} -> {self.server.label}>"


class RuntimeComponent:
    """Base class for live component instances.

    Subclasses override :meth:`dispatch` (a generator) to implement
    operations; the default implementation routes ``op`` to an
    ``op_<name>`` generator method.
    """

    def __init__(
        self,
        runtime: "SmockRuntime",
        unit: ComponentDef,
        node: SimNode,
        factor_values: Dict[str, Any],
        instance_id: str,
    ) -> None:
        self.runtime = runtime
        self.unit = unit
        self.node = node
        self.factor_values = dict(factor_values)
        self.instance_id = instance_id
        #: the hosted service this instance belongs to; set by the
        #: deployer/preinstall right after construction
        self.bundle: Any = None
        #: interface name -> bound stub(s); the first stub is the default
        self.servers: Dict[str, List[ServerStub]] = {}
        self.latency = Monitor(f"component:{instance_id}")
        self.requests_served = 0
        self.requests_forwarded = 0
        #: requests past admission and not yet responded; the autonomic
        #: manager's live-migration drain waits for this to hit zero
        #: before retiring the instance
        self.inflight = 0
        # Hot-path handles, resolved once: unit/node/factor_values are
        # fixed for the instance's lifetime, so the label string, CPU
        # charge, and op dispatch table never change after construction.
        factors = ",".join(f"{k}={v}" for k, v in sorted(self.factor_values.items()))
        suffix = f"[{factors}]" if factors else ""
        self._label = f"{self.unit.name}{suffix}@{self.node.name}"
        self._cpu_per_request = unit.behaviors.cpu_per_request
        self._ops = _dispatch_table(type(self))
        #: set by fault injection when the hosting node crashes; the live
        #: instance is gone for good — a restarted node comes back empty
        #: and only replanning re-installs components.
        self.failed = False

    # -- identity -----------------------------------------------------------
    @property
    def sim(self) -> Simulator:
        return self.runtime.sim

    @property
    def node_name(self) -> str:
        return self.node.name

    @property
    def coherence(self):
        """The coherence directory of this instance's service."""
        bundle = self.bundle if self.bundle is not None else self.runtime.primary
        return bundle.coherence

    @property
    def label(self) -> str:
        return self._label

    # -- lifecycle hooks ------------------------------------------------------
    def on_install(self) -> None:
        """Called by the node wrapper once the instance is initialized."""

    def on_linked(self) -> None:
        """Called after all required interfaces have been bound."""

    def on_invalidate(self, updates: List[Any]) -> None:
        """Coherence hook: conflicting remote updates occurred."""

    # -- wiring ---------------------------------------------------------------
    def bind_server(self, interface: str, stub: ServerStub) -> None:
        self.servers.setdefault(interface, []).append(stub)

    def stub_for(self, interface: str) -> ServerStub:
        stubs = self.servers.get(interface)
        if not stubs:
            raise RequestError(f"{self.label} has no bound server for {interface!r}")
        return stubs[0]

    def call(
        self, interface: str, req: ServiceRequest
    ) -> Generator[Any, Any, ServiceResponse]:
        """Invoke the bound server of ``interface`` (round trip)."""
        self.requests_forwarded += 1
        resp = yield from self.stub_for(interface).request(req)
        return resp

    # -- serving ----------------------------------------------------------------
    def serve(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        """Charge CPU, then dispatch the operation.

        Component faults are contained: an exception escaping a handler
        becomes a failure response to the caller instead of tearing down
        the whole request chain (the wrapper's "special environment"
        isolates components from each other).
        """
        if self.failed or not self.node.up:
            raise NodeDownError(f"{self._label}: host {self.node_name} is down")
        overload = self.runtime.overload
        if overload is not None:
            # Admission control *before* the CPU charge: a shed request
            # costs the network round trip it already paid, nothing more
            # (queue-based load leveling — the accept queue, and with it
            # served latency, stays bounded under any offered load).
            retry_after = overload.admit(self.node)
            if retry_after is not None:
                return ServiceResponse.failure(
                    f"{self._label}: shed (accept queue full)",
                    retryable=True,
                    retry_after_ms=retry_after,
                )
        sim = self.runtime.sim
        start = sim.now
        req.trace.append(self._label)
        self.inflight += 1
        try:
            yield from self.node.execute(self._cpu_per_request)
            try:
                resp = yield from self.dispatch(req)
            except FaultError:
                raise  # infrastructure fault, not a component bug: propagate
            except Exception as exc:  # noqa: BLE001 - fault isolation boundary
                resp = ServiceResponse.failure(
                    f"{self._label}: {type(exc).__name__}: {exc}"
                )
        finally:
            self.inflight -= 1
        self.requests_served += 1
        self.latency.observe(sim.now - start)
        return resp

    def dispatch(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        """Route ``req.op`` to an ``op_<name>`` generator method."""
        handler = self._ops.get(req.op)
        if handler is None:
            return ServiceResponse.failure(f"{self.unit.name} has no op {req.op!r}")
        resp = yield from handler(self, req)
        return resp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.label}>"


class ForwardingComponent(RuntimeComponent):
    """A component that forwards every request to its single required
    interface, optionally transforming request/response (the base for
    Encryptor/Decryptor-style relays)."""

    forward_interface: Optional[str] = None

    def transform_request(self, req: ServiceRequest) -> ServiceRequest:
        return req

    def transform_response(self, resp: ServiceResponse) -> ServiceResponse:
        return resp

    def dispatch(self, req: ServiceRequest) -> Generator[Any, Any, ServiceResponse]:
        iface = self.forward_interface or self.unit.required_interfaces()[0]
        out = self.transform_request(req)
        resp = yield from self.call(iface, out)
        return self.transform_response(resp)


__all__.append("ForwardingComponent")
