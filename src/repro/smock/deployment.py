"""Plan execution: turning a :class:`DeploymentPlan` into live components
(step 5 of Figure 1).

The deployer resolves reused placements against the runtime's instance
registry, installs new placements through the target nodes' wrappers
(code download + startup), wires the planned linkages, and registers
data-view replicas with the coherence directory.  Install order is
servers-first so a component's required interfaces are bindable the
moment it starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from ..planner import DeploymentPlan, Placement
from ..spec import ViewDef
from .component import RuntimeComponent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SmockRuntime

__all__ = ["Deployer", "DeploymentRecord", "DeploymentError"]


class DeploymentError(RuntimeError):
    """A plan could not be realized (missing class, missing instance...)."""


@dataclass
class DeploymentRecord:
    """What one plan execution did, with timings (for §4.2 cost analysis)."""

    plan: DeploymentPlan
    root_instance: RuntimeComponent
    new_instances: List[RuntimeComponent] = field(default_factory=list)
    started_ms: float = 0.0
    finished_ms: float = 0.0
    #: per-instance install duration, ms
    install_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        return self.finished_ms - self.started_ms


class Deployer:
    """Executes deployment plans against the live runtime."""

    def __init__(self, runtime: "SmockRuntime") -> None:
        self.runtime = runtime
        self.deployments: List[DeploymentRecord] = []

    def execute(
        self, plan: DeploymentPlan, bundle: Any = None, parent_span: Any = None
    ) -> Generator[Any, Any, DeploymentRecord]:
        """Process generator: install, wire, and register a plan.

        ``bundle`` selects which hosted service's spec/classes/instances
        apply; defaults to the runtime's primary service.  Traced as a
        ``deploy`` span with one ``install`` child per freshly installed
        component (node-attributed, so trace consumers can break §4.2
        deployment cost down per target host).
        """
        runtime = self.runtime
        bundle = bundle if bundle is not None else runtime.primary
        sim = runtime.sim
        tracer = runtime.obs.tracer
        deploy_span = tracer.start_span(
            "deploy",
            parent=parent_span,
            client_node=plan.client_node,
            placements=len(plan.placements),
        )
        started = sim.now
        instances: Dict[int, RuntimeComponent] = {}
        new_instances: List[RuntimeComponent] = []
        install_ms: Dict[str, float] = {}

        # Servers first: topological order over the linkage DAG (a
        # placement installs only after everything it requires is up).
        # Covers multi-root manual plans whose extra roots a BFS from
        # plan.root would never reach.
        n = len(plan.placements)
        deps = {
            i: {l.server for l in plan.linkages if l.client == i} for i in range(n)
        }
        order: List[int] = []
        done: set = set()
        while len(order) < n:
            progress = False
            for i in range(n):
                if i not in done and deps[i] <= done:
                    order.append(i)
                    done.add(i)
                    progress = True
            if not progress:
                deploy_span.finish(status="error", error="cyclic linkages")
                raise DeploymentError("plan linkages are cyclic")
        for idx in order:
            placement = plan.placements[idx]
            existing = bundle.instances.get(placement.key)
            if placement.reused:
                if existing is None:
                    deploy_span.finish(
                        status="error", error=f"missing reused {placement.label()}"
                    )
                    raise DeploymentError(
                        f"plan reuses {placement.label()} but no such instance is running"
                    )
                instances[idx] = existing
                continue
            if existing is not None:
                # Another client's deployment already realized this
                # placement; share it.
                instances[idx] = existing
                continue
            t0 = sim.now
            install_span = tracer.start_span(
                "install",
                parent=deploy_span,
                unit=placement.unit,
                node=placement.node,
            )
            try:
                instance = yield from self._install(placement, bundle)
            except BaseException as exc:
                install_span.finish(status="error", error=repr(exc))
                deploy_span.finish(status="error", error=repr(exc))
                raise
            install_span.finish(instance_id=instance.instance_id)
            install_ms[instance.instance_id] = sim.now - t0
            m = runtime.obs.metrics
            if m.enabled:
                m.inc("smock.installs", 1, node=placement.node)
                m.observe("smock.install_sim_ms", sim.now - t0, unit=placement.unit)
            instances[idx] = instance
            new_instances.append(instance)
            bundle.instances[placement.key] = instance

        # Wire linkages (client side binds a stub to the server instance).
        # A plan's wiring is authoritative for the interfaces it touches:
        # stale stubs from a previous deployment of the same client (left
        # over after replanning) are dropped, not shadowed.
        wired: set = set()
        for linkage in plan.linkages:
            client = instances[linkage.client]
            server = instances[linkage.server]
            key = (id(client), linkage.interface)
            if key not in wired:
                client.servers[linkage.interface] = []
                wired.add(key)
            if not any(
                stub.server is server
                for stub in client.servers.get(linkage.interface, ())
            ):
                wrapper = runtime.wrappers[client.node_name]
                wrapper.connect(client, linkage.interface, server)

        # Coherence registration for freshly installed data views.
        for idx, instance in instances.items():
            placement = plan.placements[idx]
            if placement.reused or instance not in new_instances:
                continue
            unit = bundle.spec.unit(placement.unit)
            if isinstance(unit, ViewDef) and unit.kind == "data":
                runtime.register_replica(instance, unit, bundle)

        for instance in new_instances:
            instance.on_linked()

        record = DeploymentRecord(
            plan=plan,
            root_instance=instances[plan.root],
            new_instances=new_instances,
            started_ms=started,
            finished_ms=sim.now,
            install_ms=install_ms,
        )
        self.deployments.append(record)
        deploy_span.finish(new_instances=len(new_instances))
        runtime.obs.metrics.observe("smock.deploy_sim_ms", record.total_ms)
        return record

    def _install(
        self, placement: Placement, bundle: Any
    ) -> Generator[Any, Any, RuntimeComponent]:
        runtime = self.runtime
        unit = bundle.spec.unit(placement.unit)
        cls = bundle.component_class(placement.unit)
        wrapper = runtime.wrappers[placement.node]
        instance_id = runtime.next_instance_id(placement)
        instance = yield from wrapper.install(
            unit,
            cls,
            dict(placement.factor_values),
            instance_id,
            code_from=bundle.code_base_node,
        )
        instance.bundle = bundle
        return instance

    def uninstall(self, placement: Placement, bundle: Any = None) -> None:
        """Remove a live instance (used by the replanning extension)."""
        runtime = self.runtime
        bundle = bundle if bundle is not None else runtime.primary
        instance = bundle.instances.pop(placement.key, None)
        if instance is None:
            return
        runtime.wrappers[placement.node].uninstall(instance.instance_id)
        replica_id = getattr(instance, "replica_id", None)
        if replica_id is not None:
            bundle.coherence.unregister_replica(replica_id)
            instance.replica_id = None
