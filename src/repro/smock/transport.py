"""Multi-hop message delivery over the materialized network.

The planner reasons about :class:`~repro.network.PathInfo` analytically;
at run time, messages actually traverse the simulated links hop by hop
(store-and-forward), queueing behind concurrent transfers on each hop —
this is where bandwidth contention between request traffic and coherence
propagation emerges in the Figure 7 experiments.

Fault semantics: each store-and-forward hop checks that the node doing
the forwarding is alive (a crashed router holds no message queues — the
message is simply gone), and an installed :class:`FaultHook` can drop or
delay individual messages, modeling lossy links.  A dropped message
hangs its delivery generator forever — silent loss, exactly what a
client-side timeout exists to bound.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from ..network import Network
from ..sim import NodeDownError, SimLink, SimNode, Simulator
from ..sim.resources import Monitor

__all__ = ["RuntimeTransport", "FaultHook"]


def _key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class FaultHook:
    """Per-message fault decisions consulted by the transport.

    Subclasses (see :class:`repro.faults.FaultInjector`) override
    :meth:`on_hop`, returning ``"drop"`` to lose the message on that
    hop, a positive float to add that many ms of delay, or ``None`` to
    leave it alone.
    """

    def on_hop(
        self, src: str, dst: str, hop_a: str, hop_b: str, size_bytes: int
    ) -> Optional[Any]:
        return None


class RuntimeTransport:
    """Owns the live SimNodes/SimLinks mirroring a :class:`Network`."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.nodes, self.links = network.materialize(sim)
        self.stats = Monitor("transport")
        self.messages_sent = 0
        self.bytes_sent = 0
        #: optional fault hook; ``None`` keeps the delivery loop on the
        #: exact pre-fault-tolerance fast path.
        self.fault_hook: Optional[FaultHook] = None
        self.messages_dropped = 0

    def node(self, name: str) -> SimNode:
        return self.nodes[name]

    def link(self, a: str, b: str) -> SimLink:
        return self.links[_key(a, b)]

    def deliver(self, src: str, dst: str, size_bytes: int) -> Generator[Any, Any, None]:
        """Process generator: move ``size_bytes`` from ``src`` to ``dst``.

        Routes along the current lowest-latency path, store-and-forward
        per hop.  Same-node delivery is free (in-process call).  Raises
        :class:`NodeDownError` when a forwarding node or the destination
        is crashed at arrival time; a hook-dropped message never returns
        (silent loss — the caller's timeout is the only recourse).
        """
        if src == dst:
            return
        start = self.sim.now
        path = self.network.path(src, dst)
        hook = self.fault_hook
        cur = src
        for hop in path.hops:
            if hook is not None:
                verdict = hook.on_hop(src, dst, hop.a, hop.b, size_bytes)
                if verdict == "drop":
                    self.messages_dropped += 1
                    yield self.sim.event()  # never triggers: message lost
                    return  # pragma: no cover - unreachable
                if verdict:
                    yield self.sim.timeout(float(verdict))
            link = self.link(hop.a, hop.b)
            yield from link.transfer(cur, size_bytes)
            cur = link.other_end(cur)
            if not self.nodes[cur].up:
                raise NodeDownError(
                    f"message {src} -> {dst} arrived at crashed node {cur!r}"
                )
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        self.stats.observe(self.sim.now - start)

    def round_trip(
        self, src: str, dst: str, request_bytes: int, response_bytes: int
    ) -> Generator[Any, Any, None]:
        """Request there, response back."""
        yield from self.deliver(src, dst, request_bytes)
        yield from self.deliver(dst, src, response_bytes)
