"""Multi-hop message delivery over the materialized network.

The planner reasons about :class:`~repro.network.PathInfo` analytically;
at run time, messages actually traverse the simulated links hop by hop
(store-and-forward), queueing behind concurrent transfers on each hop —
this is where bandwidth contention between request traffic and coherence
propagation emerges in the Figure 7 experiments.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Tuple

from ..network import Network
from ..sim import SimLink, SimNode, Simulator
from ..sim.resources import Monitor

__all__ = ["RuntimeTransport"]


def _key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class RuntimeTransport:
    """Owns the live SimNodes/SimLinks mirroring a :class:`Network`."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.nodes, self.links = network.materialize(sim)
        self.stats = Monitor("transport")
        self.messages_sent = 0
        self.bytes_sent = 0

    def node(self, name: str) -> SimNode:
        return self.nodes[name]

    def link(self, a: str, b: str) -> SimLink:
        return self.links[_key(a, b)]

    def deliver(self, src: str, dst: str, size_bytes: int) -> Generator[Any, Any, None]:
        """Process generator: move ``size_bytes`` from ``src`` to ``dst``.

        Routes along the current lowest-latency path, store-and-forward
        per hop.  Same-node delivery is free (in-process call).
        """
        if src == dst:
            return
        start = self.sim.now
        path = self.network.path(src, dst)
        cur = src
        for hop in path.hops:
            link = self.link(hop.a, hop.b)
            yield from link.transfer(cur, size_bytes)
            cur = link.other_end(cur)
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        self.stats.observe(self.sim.now - start)

    def round_trip(
        self, src: str, dst: str, request_bytes: int, response_bytes: int
    ) -> Generator[Any, Any, None]:
        """Request there, response back."""
        yield from self.deliver(src, dst, request_bytes)
        yield from self.deliver(dst, src, response_bytes)
