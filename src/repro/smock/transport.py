"""Multi-hop message delivery over the materialized network.

The planner reasons about :class:`~repro.network.PathInfo` analytically;
at run time, messages actually traverse the simulated links hop by hop
(store-and-forward), queueing behind concurrent transfers on each hop —
this is where bandwidth contention between request traffic and coherence
propagation emerges in the Figure 7 experiments.

Fault semantics: each store-and-forward hop checks that the node doing
the forwarding is alive (a crashed router holds no message queues — the
message is simply gone), and an installed :class:`FaultHook` can drop or
delay individual messages, modeling lossy links.  A dropped message
hangs its delivery generator forever — silent loss, exactly what a
client-side timeout exists to bound.

Hot path: :meth:`RuntimeTransport.deliver` used to re-resolve the route,
each link, each far end and each arrival node per message, then drive a
nested ``SimLink.transfer`` generator per hop.  Steady-state traffic
repeats the same (src, dst) pairs millions of times, so the transport
now *compiles* each pair once into a flat hop schedule
(:class:`CompiledRoute`: transmit resource, serialization divisor,
latency, arrival node per hop) and replays it with zero lookups and a
single generator frame.  Compiled routes are invalidated with the
topology's route cache — any :meth:`Network.version` bump (link
add/remove, liveness flip, ``touch()``) drops them, exactly the events
that can change ``Network.path``.  The walk yields the same events in
the same order with the same timestamps as the uncompiled loop, and
keeps the same per-link stats; ``compile_routes=False`` restores the
original per-hop resolution path byte for byte.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..network import Network
from ..sim import LinkDownError, NodeDownError, SimLink, SimNode, Simulator
from ..sim.resources import Monitor

__all__ = ["RuntimeTransport", "FaultHook", "CompiledRoute"]


def _key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class FaultHook:
    """Per-message fault decisions consulted by the transport.

    Subclasses (see :class:`repro.faults.FaultInjector`) override
    :meth:`on_hop`, returning ``"drop"`` to lose the message on that
    hop, a positive float to add that many ms of delay, or ``None`` to
    leave it alone; and :meth:`on_message`, returning message-level
    verdicts applied once per request at the RPC boundary
    (:meth:`repro.smock.component.ServerStub.request`): ``"duplicate"``
    re-delivers the request, ``"corrupt"`` garbles it so the receiver
    rejects it, and ``("reorder", hold_ms)`` holds it back so later
    traffic overtakes it.
    """

    def on_hop(
        self, src: str, dst: str, hop_a: str, hop_b: str, size_bytes: int
    ) -> Optional[Any]:
        return None

    def on_message(self, src: str, dst: str, size_bytes: int) -> Tuple[Any, ...]:
        return ()


class CompiledRoute:
    """One (src, dst) pair flattened into a per-hop schedule.

    Each entry of :attr:`hops` pre-resolves everything the delivery walk
    needs: ``(link, tx, bw_bps, latency_ms, arrival_node, hop_a, hop_b)``
    where ``tx`` is the transmit :class:`~repro.sim.resources.Resource`
    for the traversal direction and ``bw_bps`` is ``bandwidth_mbps * 1e6``
    (zero for infinitely fast links) — kept as the exact intermediate
    :meth:`SimLink.serialization_ms` computes, so replayed transfer
    times are bit-identical to the uncompiled path.
    """

    __slots__ = ("src", "dst", "hops")

    def __init__(self, src: str, dst: str, hops: Tuple[Tuple, ...]) -> None:
        self.src = src
        self.dst = dst
        self.hops = hops


class RuntimeTransport:
    """Owns the live SimNodes/SimLinks mirroring a :class:`Network`."""

    def __init__(
        self, sim: Simulator, network: Network, compile_routes: bool = True
    ) -> None:
        self.sim = sim
        self.network = network
        self.nodes, self.links = network.materialize(sim)
        self.stats = Monitor("transport")
        self.messages_sent = 0
        self.bytes_sent = 0
        #: optional fault hook; ``None`` keeps the delivery loop on the
        #: exact pre-fault-tolerance fast path.
        self.fault_hook: Optional[FaultHook] = None
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_corrupted = 0
        self.messages_reordered = 0
        #: knob: False disables route compilation entirely (the per-hop
        #: resolution path below is then the only delivery loop).
        self.compile_routes = compile_routes
        self._routes: Dict[Tuple[str, str], CompiledRoute] = {}
        #: network.version the compiled cache was built against; any
        #: topology mutation bumps it and strands this epoch.
        self._routes_version = network.version
        #: telemetry knob: off keeps deliver() on the pristine compiled
        #: walk below with zero extra work; a TelemetrySampler attaching
        #: to the runtime flips it on via :meth:`enable_telemetry`.
        self._telemetry = False
        #: bytes currently traversing each link (both directions),
        #: maintained only while telemetry is enabled — pure Python
        #: accounting, never schedules or reorders events.
        self.link_inflight: Dict[str, int] = {}
        # Metric handles resolved once (the engine.Simulator pattern):
        # deliver() runs per message and must not pay registry lookups.
        metrics = sim.obs.metrics
        if metrics.enabled:
            self._m_compiled = metrics.counter("transport.routes_compiled")
            self._m_hits = metrics.counter("transport.route_cache_hits")
        else:
            self._m_compiled = None
            self._m_hits = None

    def enable_telemetry(self) -> None:
        """Switch delivery onto the telemetry walk: identical events and
        timestamps, plus per-link in-flight byte accounting."""
        self._telemetry = True

    def node(self, name: str) -> SimNode:
        return self.nodes[name]

    def link(self, a: str, b: str) -> SimLink:
        return self.links[_key(a, b)]

    def partition_plan(self, credential: str = "site"):
        """How the parallel kernel would split this topology: a
        :class:`~repro.sim.parallel.PartitionPlan` (site-credential
        grouping with the latency min-cut fallback).  Purely advisory —
        computing it mutates nothing — and handy for sizing ``workers=``
        before a :meth:`SmockRuntime.run_parallel_traffic` run."""
        from ..sim.parallel import partition_network

        return partition_network(self.network, credential=credential)

    # -- route compilation -------------------------------------------------
    def _compile(self, src: str, dst: str) -> CompiledRoute:
        """Flatten the current lowest-latency path into a hop schedule."""
        path = self.network.path(src, dst)
        hops: List[Tuple] = []
        cur = src
        for hop in path.hops:
            link = self.links[_key(hop.a, hop.b)]
            tx = link._tx[cur if cur in link._tx else link.a]
            bw_bps = link.bandwidth_mbps * 1e6 if link.bandwidth_mbps > 0 else 0.0
            nxt = link.other_end(cur)
            hops.append(
                (link, tx, bw_bps, link.latency_ms, self.nodes[nxt], hop.a, hop.b)
            )
            cur = nxt
        route = CompiledRoute(src, dst, tuple(hops))
        if self._m_compiled is not None:
            self._m_compiled.inc()
        return route

    def route(self, src: str, dst: str) -> CompiledRoute:
        """The compiled hop schedule for (src, dst), rebuilt on topology
        epoch changes (compiled caching piggybacks on the same
        ``Network.version`` counter that guards the path cache)."""
        if self._routes_version != self.network.version:
            self._routes.clear()
            self._routes_version = self.network.version
        key = (src, dst)
        route = self._routes.get(key)
        if route is None:
            route = self._routes[key] = self._compile(src, dst)
        elif self._m_hits is not None:
            self._m_hits.inc()
        return route

    # -- delivery ----------------------------------------------------------
    def deliver(self, src: str, dst: str, size_bytes: int) -> Generator[Any, Any, None]:
        """Process generator: move ``size_bytes`` from ``src`` to ``dst``.

        Routes along the current lowest-latency path, store-and-forward
        per hop.  Same-node delivery is free (in-process call).  Raises
        :class:`NodeDownError` when a forwarding node or the destination
        is crashed at arrival time; a hook-dropped message never returns
        (silent loss — the caller's timeout is the only recourse).
        """
        if src == dst:
            return
        hook = self.fault_hook
        if hook is None and self.compile_routes and not self._telemetry:
            # Fast path: replay the compiled walk.  Mirrors the slow
            # path below plus the inlined body of SimLink.transfer —
            # identical checks, events, timestamps, and stats.
            sim = self.sim
            start = sim.now
            for link, tx, bw_bps, latency_ms, arrival, _a, _b in self.route(
                src, dst
            ).hops:
                if not link.up:
                    raise LinkDownError(f"link {link.name} is partitioned")
                hop_start = sim.now
                yield tx.request()
                try:
                    if bw_bps:
                        yield sim.timeout((size_bytes * 8) / bw_bps * 1e3)
                    else:
                        yield sim.timeout(0.0)
                finally:
                    tx.release()
                if not link.up:
                    raise LinkDownError(f"link {link.name} partitioned mid-transfer")
                yield sim.timeout(latency_ms)
                link.bytes_carried += size_bytes
                link.stats.observe(sim.now - hop_start)
                if not arrival.up:
                    raise NodeDownError(
                        f"message {src} -> {dst} arrived at crashed node "
                        f"{arrival.name!r}"
                    )
            self.messages_sent += 1
            self.bytes_sent += size_bytes
            self.stats.observe(sim.now - start)
            return
        if hook is None and self.compile_routes:
            # Telemetry walk: the compiled walk above, verbatim, plus
            # in-flight byte accounting per hop.  The accounting is
            # plain dict arithmetic between the same yields, so the
            # event sequence — and therefore every simulated result —
            # is unchanged; only wall-clock cost differs.
            sim = self.sim
            inflight = self.link_inflight
            start = sim.now
            for link, tx, bw_bps, latency_ms, arrival, _a, _b in self.route(
                src, dst
            ).hops:
                if not link.up:
                    raise LinkDownError(f"link {link.name} is partitioned")
                hop_start = sim.now
                lname = link.name
                inflight[lname] = inflight.get(lname, 0) + size_bytes
                try:
                    yield tx.request()
                    try:
                        if bw_bps:
                            yield sim.timeout((size_bytes * 8) / bw_bps * 1e3)
                        else:
                            yield sim.timeout(0.0)
                    finally:
                        tx.release()
                    if not link.up:
                        raise LinkDownError(
                            f"link {link.name} partitioned mid-transfer"
                        )
                    yield sim.timeout(latency_ms)
                finally:
                    inflight[lname] -= size_bytes
                link.bytes_carried += size_bytes
                link.stats.observe(sim.now - hop_start)
                if not arrival.up:
                    raise NodeDownError(
                        f"message {src} -> {dst} arrived at crashed node "
                        f"{arrival.name!r}"
                    )
            self.messages_sent += 1
            self.bytes_sent += size_bytes
            self.stats.observe(sim.now - start)
            return
        telemetry = self._telemetry
        inflight = self.link_inflight
        start = self.sim.now
        path = self.network.path(src, dst)
        cur = src
        for hop in path.hops:
            if hook is not None:
                verdict = hook.on_hop(src, dst, hop.a, hop.b, size_bytes)
                if verdict == "drop":
                    self.messages_dropped += 1
                    yield self.sim.event()  # never triggers: message lost
                    return  # pragma: no cover - unreachable
                if verdict:
                    yield self.sim.timeout(float(verdict))
            link = self.link(hop.a, hop.b)
            if telemetry:
                lname = link.name
                inflight[lname] = inflight.get(lname, 0) + size_bytes
                try:
                    yield from link.transfer(cur, size_bytes)
                finally:
                    inflight[lname] -= size_bytes
            else:
                yield from link.transfer(cur, size_bytes)
            cur = link.other_end(cur)
            if not self.nodes[cur].up:
                raise NodeDownError(
                    f"message {src} -> {dst} arrived at crashed node {cur!r}"
                )
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        self.stats.observe(self.sim.now - start)

    def round_trip(
        self, src: str, dst: str, request_bytes: int, response_bytes: int
    ) -> Generator[Any, Any, None]:
        """Request there, response back."""
        yield from self.deliver(src, dst, request_bytes)
        yield from self.deliver(dst, src, response_bytes)
