"""The generic server (Figure 1, steps 3-5).

"Requests for service access are sent through the proxy to a generic
server, which consults the planning module to decide on an appropriate
selection and placement of service components."

Planning is charged as CPU work on the generic server's host node, so
the one-time costs of §4.2 (proxy download + planning + deployment +
startup) appear on the simulated clock.  The framework "ensures that the
generic server does not become a bottleneck by spreading out requests
for different services among multiple instances" — each service gets its
own GenericServer in this implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from ..planner import DeploymentPlan, PlanRequest, PlanningError
from .deployment import DeploymentRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SmockRuntime

__all__ = ["GenericServer", "AccessRecord", "DEFAULT_PLANNING_WORK"]

#: CPU work units charged per planning request (≈2 s on a 1000-unit/s host)
DEFAULT_PLANNING_WORK = 2000.0

#: request/response sizes for the access protocol, bytes
ACCESS_REQUEST_BYTES = 2_048
ACCESS_RESPONSE_BYTES = 4_096


@dataclass
class AccessRecord:
    """One client-access handling, with its cost breakdown (§4.2)."""

    client_node: str
    context: Dict[str, Any]
    plan: DeploymentPlan
    planning_ms: float
    deployment: DeploymentRecord

    @property
    def total_ms(self) -> float:
        return self.planning_ms + self.deployment.total_ms


class GenericServer:
    """Handles service-access requests for one registered service."""

    def __init__(
        self,
        runtime: "SmockRuntime",
        host_node: str,
        planning_work: float = DEFAULT_PLANNING_WORK,
        bundle: Any = None,
    ) -> None:
        self.runtime = runtime
        self.host_node = host_node
        self.planning_work = planning_work
        self.bundle = bundle
        self.accesses: List[AccessRecord] = []

    def handle_access(
        self,
        client_node: str,
        context: Dict[str, Any],
        interface: str,
        request_rate: float = 0.0,
        algorithm: Optional[str] = None,
        parent_span: Any = None,
    ) -> Generator[Any, Any, AccessRecord]:
        """Process generator: plan + deploy for one client request.

        Returns the access record whose deployment's root instance the
        proxy should bind to.  Raises :class:`PlanningError` if no valid
        deployment exists.
        """
        runtime = self.runtime
        sim = runtime.sim
        bundle = self.bundle if self.bundle is not None else runtime.primary
        tracer = runtime.obs.tracer
        access_span = tracer.start_span(
            "access",
            parent=parent_span,
            client_node=client_node,
            server_node=self.host_node,
            interface=interface,
        )

        # Step 4: compute the partitioning.  Planning runs on this host.
        t0 = sim.now
        plan_span = tracer.start_span(
            "plan", parent=access_span, server_node=self.host_node
        )
        try:
            yield from runtime.transport.node(self.host_node).execute(
                self.planning_work
            )
            request = PlanRequest(
                interface=interface,
                client_node=client_node,
                context=dict(context),
                request_rate=request_rate,
            )
            # attach(): the planner's own span becomes a child of "plan".
            with tracer.attach(plan_span):
                plan = bundle.planner.plan(request, algorithm=algorithm)
        except BaseException as exc:
            plan_span.finish(status="error", error=repr(exc))
            access_span.finish(status="error", error=repr(exc))
            raise
        planning_ms = sim.now - t0
        plan_span.finish(planning_ms=planning_ms)

        # Step 5: deploy components via the node wrappers.
        try:
            record = yield from runtime.deployer.execute(
                plan, bundle, parent_span=access_span
            )
        except BaseException as exc:
            access_span.finish(status="error", error=repr(exc))
            raise
        bundle.planner.commit(plan, request_rate)
        access_span.finish()
        m = runtime.obs.metrics
        if m.enabled:
            m.inc("smock.accesses", 1, server_node=self.host_node)
            m.observe("smock.planning_sim_ms", planning_ms)

        access = AccessRecord(
            client_node=client_node,
            context=dict(context),
            plan=plan,
            planning_ms=planning_ms,
            deployment=record,
        )
        self.accesses.append(access)
        return access
