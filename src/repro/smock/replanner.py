"""Dynamic replanning on network change (paper §6, first limitation).

The shipped planner assumes node/link properties are fixed for the
lifetime of a deployment.  §6 sketches the fix: integrate a monitoring
tool (Remos-like; see :mod:`repro.network.monitor`), feed observed
changes to the planner, and let it decide "whether a new deployment
(either incremental or complete) is called for", taking care that
"service redeployment needs to preserve state compatibility between the
two configurations".

:class:`ReplanManager` implements that loop:

1. it tracks every active client binding (proxy + original request);
2. a monitor subscription fires on any observed change; a replanning
   process is scheduled (debounced to one per observation burst);
3. each binding is re-planned against the updated network; bindings
   whose optimal plan changed are redeployed *incrementally* — new
   placements install first, the proxy is re-bound, and obsolete
   instances are retired only after their coherence buffers have been
   flushed upstream (state preservation);
4. placements shared with unaffected bindings survive untouched.

Failover extension: when the observed change is a *node-death*
detection (a :class:`FailureEvent` from the heartbeat detector), the
round first reconciles runtime registries with reality — instances on
the dead host are unregistered, their un-flushed coherence buffers are
accounted as lost updates (fail-stop: that state is unrecoverable) —
and then replans around the dead node, which the planner's
installability gate already excludes.  Recovery time (crash instant to
rebound proxies) lands in the ``failover.recovery_ms`` histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from ..network import NetworkError
from ..network.monitor import ChangeEvent, NetworkMonitor
from ..planner import DeploymentPlan, DeploymentState, Placement, PlanningError, PlanRequest
from ..sim import FaultError
from .proxy import ServiceProxy

__all__ = ["ReplanManager", "ReplanEvent"]


@dataclass
class ReplanEvent:
    """Record of one replanning round (for experiments/tests)."""

    time_ms: float
    trigger: Optional[ChangeEvent]
    rebound: List[str] = field(default_factory=list)  # client nodes re-deployed
    installed: List[str] = field(default_factory=list)  # new placement labels
    retired: List[str] = field(default_factory=list)  # removed placement labels
    failures: List[str] = field(default_factory=list)  # clients left unservable
    #: labels of dead-host instances reconciled away before planning
    reconciled: List[str] = field(default_factory=list)
    #: True if the round was skipped because another was in progress
    deferred: bool = False


@dataclass
class _Binding:
    proxy: ServiceProxy
    request: PlanRequest
    plan: DeploymentPlan


class ReplanManager:
    """Keeps deployments optimal as the network changes.

    ``incremental`` enables the planner fast path for *liveness*
    triggers (node/link death or recovery): each binding's new plan is
    seeded from the surviving placements of its previous plan (see
    :mod:`repro.planner.incremental`), so only the subtree around the
    failed host is re-solved.  Attribute triggers (a link turning
    secure, a credential change) always replan from scratch — there the
    previous structure is what must be reconsidered.  With
    ``incremental=False`` every round replans from scratch, matching the
    pre-fast-path behavior exactly.
    """

    def __init__(
        self, runtime: Any, monitor: NetworkMonitor, incremental: bool = True
    ) -> None:
        self.runtime = runtime
        self.monitor = monitor
        self.incremental = incremental
        self.bundle = runtime.primary
        self.bindings: List[_Binding] = []
        self.events: List[ReplanEvent] = []
        #: optional :class:`~repro.autonomic.manager.AutonomicManager`
        #: collaborator; when set, rounds call its hooks (reservation
        #: ledger, per-binding bin-packing, retire-time drain).  ``None``
        #: keeps every round byte-identical to the pre-autonomic code.
        self.autonomic: Any = None
        self._scheduled = False
        self._replanning = False
        self._rerun_trigger: Optional[ChangeEvent] = None
        #: client_node -> sim time its outage began (crash instant when
        #: known, else when the binding first became unservable)
        self._outage_since: Dict[str, float] = {}
        monitor.subscribe(self._on_change)

    # -- tracking -----------------------------------------------------------
    def track(self, proxy: ServiceProxy, request: PlanRequest, plan: DeploymentPlan) -> None:
        """Register an active binding for future replanning."""
        self.bindings.append(_Binding(proxy, request, plan))

    def track_access(self, proxy: ServiceProxy, access: Any) -> None:
        """Convenience: track from a GenericServer access record."""
        request = PlanRequest(
            interface=proxy.interface,
            client_node=access.client_node,
            context=dict(access.context),
        )
        self.track(proxy, request, access.plan)

    # -- change handling ----------------------------------------------------
    def _on_change(self, change: ChangeEvent) -> None:
        if self._scheduled:
            return  # debounce: one replan per observation burst
        self._scheduled = True
        sim = self.runtime.sim

        def kick() -> None:
            self._scheduled = False
            sim.process(self.replan_all(trigger=change), name="replan")

        sim.call_at(sim.now, kick)

    # -- the replanning round ---------------------------------------------------
    def replan_all(
        self, trigger: Optional[ChangeEvent] = None
    ) -> Generator[Any, Any, ReplanEvent]:
        """Process generator: recompute every binding, redeploy deltas.

        Re-entrancy: a round that starts while another is mid-flight
        (replanning yields to the simulator while deploying) defers —
        the in-progress round re-runs once more when it finishes, so the
        late trigger is never lost and the two rounds cannot interleave
        their deploy/retire steps.
        """
        if self._replanning:
            self._rerun_trigger = trigger or self._rerun_trigger or _RERUN_SENTINEL
            event = ReplanEvent(
                time_ms=self.runtime.sim.now, trigger=trigger, deferred=True
            )
            self.events.append(event)
            return event
        self._replanning = True
        try:
            event = yield from self._replan_round(trigger)
        finally:
            self._replanning = False
        if self._rerun_trigger is not None:
            rerun = self._rerun_trigger
            self._rerun_trigger = None
            self.runtime.sim.process(
                self.replan_all(
                    trigger=None if rerun is _RERUN_SENTINEL else rerun
                ),
                name="replan-rerun",
            )
        return event

    def _replan_round(
        self, trigger: Optional[ChangeEvent]
    ) -> Generator[Any, Any, ReplanEvent]:
        runtime = self.runtime
        bundle = self.bundle
        planner = bundle.planner
        event = ReplanEvent(time_ms=runtime.sim.now, trigger=trigger)
        autonomic = self.autonomic
        if autonomic is not None:
            autonomic.on_round_start(trigger)

        # Control-plane takeover: the coherence directory's own host
        # died.  Rebuild the directory from its journal on a surviving
        # node *before* reconciling, so the rest of the round —
        # report_lost, retirement flushes, anti-entropy — runs against
        # the successor.  Ground truth (is the directory host down *now*)
        # rather than the trigger event: the round's trigger is only the
        # first event of a detection burst, and the directory host's
        # death may arrive debounced behind a sibling event.  Requires
        # the ``directory_host`` + ``directory_journal`` knobs; without
        # them a directory-host death is an ordinary node death.
        directory_host = getattr(runtime, "directory_host", None)
        if (
            directory_host is not None
            and getattr(bundle.coherence, "journal", None) is not None
            and not runtime.transport.node(directory_host).up
        ):
            self._takeover_directory(directory_host)

        # Failover preamble: drop dead-host instances from the runtime's
        # registries before planning, so the planner state seeded below
        # reflects reality and retirement never routes traffic to them.
        self._reconcile_failed_instances(event)

        # Ground-truth crash instant behind this round's trigger, if the
        # trigger is a death detection — anchors recovery-time tracking.
        trigger_crash: Optional[float] = None
        if (
            trigger is not None
            and trigger.kind == "node"
            and trigger.attribute == "up"
            and not trigger.new
        ):
            trigger_crash = getattr(
                runtime.transport.node(trigger.subject), "crashed_at_ms", None
            )

        # Re-plan each binding against a state seeded with primaries and
        # (incrementally) the kept/new placements of earlier bindings —
        # later bindings can reuse what earlier ones keep.
        state = DeploymentState()
        for placement in planner.state.placements():
            if placement.key in bundle.instances and self._is_primary(placement):
                state.add(placement)

        # Liveness triggers (a host died or came back) patch around the
        # change: seed each binding's search from its previous plan's
        # survivors.  Attribute triggers replan from scratch.
        seed_from_previous = (
            self.incremental
            and trigger is not None
            and trigger.kind in ("node", "link")
            and trigger.attribute == "up"
        )
        installed_keys = set(bundle.instances.keys())

        new_plans: List[Optional[DeploymentPlan]] = []
        for binding in self.bindings:
            try:
                if seed_from_previous:
                    plan = planner.replan_incremental(
                        binding.request,
                        binding.plan,
                        state=state,
                        installed_keys=installed_keys,
                    )
                else:
                    plan, _cached = planner.run_search(binding.request, state=state)
            except (PlanningError, NetworkError):
                # E.g. the client's own node vanished: unservable, not
                # a reason to abort the round for everyone else.
                plan = None
            if plan is None:
                event.failures.append(binding.request.client_node)
                self._note_outage(binding.request.client_node, trigger_crash)
                new_plans.append(None)
                continue
            new_plans.append(plan)
            for placement in plan.placements:
                state.add(placement)
            if autonomic is not None:
                autonomic.on_binding_planned(binding, plan)

        # Compute the new desired placement-key set.
        desired: Set[Tuple] = set()
        for binding, plan in zip(self.bindings, new_plans):
            if plan is not None:
                desired.update(p.key for p in plan.placements)
            elif autonomic is not None:
                # Utilization rounds must not retire the still-live chain
                # of a binding whose replan failed (e.g. measured rates
                # momentarily exceed what condition 3 can place): keep
                # its current placements until a later round succeeds.
                desired.update(p.key for p in binding.plan.placements)
        for placement in planner.state.placements():
            if placement.key in bundle.instances and self._is_primary(placement):
                desired.add(placement.key)

        # Deploy changed bindings (install new placements, rebind proxies).
        for binding, plan in zip(list(self.bindings), new_plans):
            if plan is None:
                continue
            if self._same_structure(binding.plan, plan) and all(
                p.key in bundle.instances for p in plan.placements
            ):
                # Unchanged *and* fully installed.  The second clause
                # matters after failover reconciliation: the optimal plan
                # may have the same shape as before the crash, but its
                # instances were purged and must be re-installed.
                binding.plan = plan
                continue
            try:
                record = yield from runtime.deployer.execute(plan, bundle)
            except (PlanningError, NetworkError, FaultError):
                # The world changed under us mid-deploy (e.g. another
                # fault); leave this binding for the next round.
                event.failures.append(binding.request.client_node)
                self._note_outage(binding.request.client_node, trigger_crash)
                continue
            binding.proxy.rebind(record.root_instance)
            binding.plan = plan
            event.rebound.append(binding.request.client_node)
            event.installed.extend(i.label for i in record.new_instances)
            self._note_recovery(binding.request.client_node, trigger_crash)

        # Retire instances no longer referenced by any binding, flushing
        # replica state upstream first (state preservation).
        current_keys = list(bundle.instances.keys())
        for key in current_keys:
            if key in desired:
                continue
            instance = bundle.instances[key]
            if autonomic is not None:
                # Live migration: proxies are already rebound, so only
                # in-flight requests remain — drain them (bounded) before
                # flushing state and uninstalling.
                yield from autonomic.drain_instance(instance)
            flush = getattr(instance, "_sync", None)
            if flush is not None and getattr(instance, "replica_id", None) is not None:
                yield from flush()
            placement = Placement(unit=key[0], node=key[1], factor_values=key[2])
            runtime.deployer.uninstall(placement, bundle)
            event.retired.append(instance.label)

        # Anti-entropy: replay recovered buffers, re-converge replicas.
        yield from self._anti_entropy(trigger)

        # Rebuild the planner's deployment state to match reality.
        planner.state = state
        self.events.append(event)
        self._observe_round(event)
        if autonomic is not None:
            autonomic.on_round_end(event)
        return event

    # -- anti-entropy ------------------------------------------------------------
    def _anti_entropy(
        self, trigger: Optional[ChangeEvent]
    ) -> Generator[Any, Any, None]:
        """Re-converge coherence state after the round's registry changes.

        Two steps, both no-ops under unversioned (fail-stop) coherence:
        (1) on a *recovery* trigger (a node or link coming back up),
        flush every dirty live replica upstream so state diverged during
        the partition propagates now instead of waiting out its flush
        policy; (2) replay any lost buffers stashed by ``report_lost``
        at their primaries (:meth:`CoherenceDirectory.reconcile`).
        """
        directory = self.bundle.coherence
        if not directory.versioned:
            return
        recovery = (
            trigger is not None
            and trigger.kind in ("node", "link")
            and trigger.attribute == "up"
            and bool(trigger.new)
        )
        if recovery:
            for instance in list(self.bundle.instances.values()):
                if getattr(instance, "failed", False):
                    continue
                if getattr(instance, "replica_id", None) is None:
                    continue
                flush = getattr(instance, "_sync", None)
                if flush is None:
                    continue
                entry = directory._replicas.get(instance.replica_id)
                if entry is None or not entry.dirty:
                    continue
                try:
                    yield from flush()
                except (NetworkError, FaultError):
                    continue  # still partitioned; a later round retries
        if directory.has_lost_buffers:
            reports = directory.reconcile(self.runtime.sim.now)
            metrics = self.runtime.obs.metrics
            if metrics.enabled and reports:
                metrics.inc("coherence.reconcile.passes")

    # -- directory takeover -------------------------------------------------------
    def _takeover_directory(self, crashed_host: str) -> None:
        """Move the coherence directory to a surviving host.

        The successor rebuilds registrations, per-store version-vector
        frontiers, and outstanding anti-entropy stashes from the
        append-only journal (see :func:`repro.coherence.journal.
        recover_directory`); surviving replicas re-report their volatile
        flush state.  The swap is transparent to components — they reach
        the directory through ``bundle.coherence`` on every access — and
        the same round's anti-entropy re-drives any recovered stashes.
        """
        from ..coherence.journal import recover_directory

        runtime = self.runtime
        bundle = self.bundle
        old = bundle.coherence
        new_host = self._elect_directory_host(exclude=crashed_host)
        recovered, report = recover_directory(old.journal, old, runtime.sim.now)
        old.journal.recoveries += 1
        bundle.coherence = recovered
        runtime.directory_host = new_host
        runtime.directory_takeovers.append(
            {
                "time_ms": runtime.sim.now,
                "crashed_host": crashed_host,
                "new_host": new_host,
                "report": report,
            }
        )
        metrics = runtime.obs.metrics
        metrics.inc("failover.directory_takeovers")
        crashed_at = getattr(
            runtime.transport.node(crashed_host), "crashed_at_ms", None
        )
        if crashed_at is not None:
            metrics.observe(
                "failover.directory_mttr_ms", runtime.sim.now - crashed_at
            )

    def _elect_directory_host(self, exclude: str) -> str:
        """Deterministic successor: the (durable) generic-server host if
        alive, else the first live node in name order."""
        runtime = self.runtime
        candidates = [runtime.server_node] + sorted(
            node.name for node in runtime.network.nodes()
        )
        for name in candidates:
            if name != exclude and runtime.transport.node(name).up:
                return name
        return runtime.server_node  # nothing is up; park on the primary

    # -- failover reconciliation -------------------------------------------------
    def _reconcile_failed_instances(self, event: ReplanEvent) -> None:
        """Purge registries of instances whose host is dead.

        An instance is gone if fault injection flagged it ``failed`` or
        the failure detector declared its node down.  Dirty coherence
        buffers on such replicas are *lost updates* — acked to clients,
        never propagated — and are reported as such rather than silently
        discarded.
        """
        runtime = self.runtime
        bundle = self.bundle
        network = runtime.network
        for key in list(bundle.instances.keys()):
            instance = bundle.instances[key]
            node_name = key[1]
            if not (getattr(instance, "failed", False) or not network.node(node_name).up):
                continue
            replica_id = getattr(instance, "replica_id", None)
            if replica_id is not None:
                bundle.coherence.report_lost(replica_id)
            stop = getattr(instance, "stop_daemon", None)
            if stop is not None:
                stop()
            placement = Placement(unit=key[0], node=key[1], factor_values=key[2])
            runtime.deployer.uninstall(placement, bundle)
            event.reconciled.append(instance.label)

    def _observe_round(self, event: ReplanEvent) -> None:
        """Failover metrics for rounds triggered by a death detection."""
        trigger = event.trigger
        if trigger is None or trigger.kind != "node" or trigger.attribute != "up":
            return
        metrics = self.runtime.obs.metrics
        if trigger.new:  # recovery detection round
            metrics.inc("failover.recovery_replans")
            if event.rebound:
                metrics.inc("failover.rebound_clients", len(event.rebound))
            return
        metrics.inc("failover.replans")
        if event.rebound:
            metrics.inc("failover.rebound_clients", len(event.rebound))
        if event.failures:
            metrics.inc("failover.unservable_clients", len(event.failures))
        detection_ms = getattr(trigger, "detection_ms", None)
        if detection_ms:
            metrics.observe("failover.detection_ms", detection_ms)

    def _note_outage(self, client_node: str, trigger_crash: Optional[float]) -> None:
        """First unservable sighting of a binding starts its outage clock."""
        start = trigger_crash if trigger_crash is not None else self.runtime.sim.now
        self._outage_since.setdefault(client_node, start)

    def _note_recovery(self, client_node: str, trigger_crash: Optional[float]) -> None:
        """A successful rebind closes the outage, if one was open.

        A rebind with no open outage (same-round failover onto an
        alternate host, before the client ever went unservable) measures
        from the triggering crash instead, when known.
        """
        started = self._outage_since.pop(client_node, trigger_crash)
        if started is not None:
            self.runtime.obs.metrics.observe(
                "failover.recovery_ms", self.runtime.sim.now - started
            )

    # -- helpers ----------------------------------------------------------------
    def _is_primary(self, placement: Placement) -> bool:
        """Placements registered as coherence primaries are permanent."""
        unit = self.bundle.spec.unit(placement.unit)
        return not unit.is_view and unit.is_terminal

    @staticmethod
    def _same_structure(a: DeploymentPlan, b: DeploymentPlan) -> bool:
        return {p.key for p in a.placements} == {p.key for p in b.placements}


#: placeholder trigger meaning "re-run requested while busy, cause unknown"
_RERUN_SENTINEL = ChangeEvent(
    time_ms=-1.0, kind="replan", subject="rerun", attribute="pending",
    old=None, new=None,
)
