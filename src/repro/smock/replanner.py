"""Dynamic replanning on network change (paper §6, first limitation).

The shipped planner assumes node/link properties are fixed for the
lifetime of a deployment.  §6 sketches the fix: integrate a monitoring
tool (Remos-like; see :mod:`repro.network.monitor`), feed observed
changes to the planner, and let it decide "whether a new deployment
(either incremental or complete) is called for", taking care that
"service redeployment needs to preserve state compatibility between the
two configurations".

:class:`ReplanManager` implements that loop:

1. it tracks every active client binding (proxy + original request);
2. a monitor subscription fires on any observed change; a replanning
   process is scheduled (debounced to one per observation burst);
3. each binding is re-planned against the updated network; bindings
   whose optimal plan changed are redeployed *incrementally* — new
   placements install first, the proxy is re-bound, and obsolete
   instances are retired only after their coherence buffers have been
   flushed upstream (state preservation);
4. placements shared with unaffected bindings survive untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from ..network.monitor import ChangeEvent, NetworkMonitor
from ..planner import DeploymentPlan, DeploymentState, Placement, PlanningError, PlanRequest
from .proxy import ServiceProxy

__all__ = ["ReplanManager", "ReplanEvent"]


@dataclass
class ReplanEvent:
    """Record of one replanning round (for experiments/tests)."""

    time_ms: float
    trigger: Optional[ChangeEvent]
    rebound: List[str] = field(default_factory=list)  # client nodes re-deployed
    installed: List[str] = field(default_factory=list)  # new placement labels
    retired: List[str] = field(default_factory=list)  # removed placement labels
    failures: List[str] = field(default_factory=list)  # clients left unservable


@dataclass
class _Binding:
    proxy: ServiceProxy
    request: PlanRequest
    plan: DeploymentPlan


class ReplanManager:
    """Keeps deployments optimal as the network changes."""

    def __init__(self, runtime: Any, monitor: NetworkMonitor) -> None:
        self.runtime = runtime
        self.monitor = monitor
        self.bundle = runtime.primary
        self.bindings: List[_Binding] = []
        self.events: List[ReplanEvent] = []
        self._scheduled = False
        monitor.subscribe(self._on_change)

    # -- tracking -----------------------------------------------------------
    def track(self, proxy: ServiceProxy, request: PlanRequest, plan: DeploymentPlan) -> None:
        """Register an active binding for future replanning."""
        self.bindings.append(_Binding(proxy, request, plan))

    def track_access(self, proxy: ServiceProxy, access: Any) -> None:
        """Convenience: track from a GenericServer access record."""
        request = PlanRequest(
            interface=proxy.interface,
            client_node=access.client_node,
            context=dict(access.context),
        )
        self.track(proxy, request, access.plan)

    # -- change handling ----------------------------------------------------
    def _on_change(self, change: ChangeEvent) -> None:
        if self._scheduled:
            return  # debounce: one replan per observation burst
        self._scheduled = True
        sim = self.runtime.sim

        def kick() -> None:
            self._scheduled = False
            sim.process(self.replan_all(trigger=change), name="replan")

        sim.call_at(sim.now, kick)

    # -- the replanning round ---------------------------------------------------
    def replan_all(
        self, trigger: Optional[ChangeEvent] = None
    ) -> Generator[Any, Any, ReplanEvent]:
        """Process generator: recompute every binding, redeploy deltas."""
        runtime = self.runtime
        bundle = self.bundle
        planner = bundle.planner
        event = ReplanEvent(time_ms=runtime.sim.now, trigger=trigger)

        # Re-plan each binding against a state seeded with primaries and
        # (incrementally) the kept/new placements of earlier bindings —
        # later bindings can reuse what earlier ones keep.
        state = DeploymentState()
        for placement in planner.state.placements():
            if placement.key in bundle.instances and self._is_primary(placement):
                state.add(placement)

        from ..planner.planner import ALGORITHMS

        algo = ALGORITHMS[planner.algorithm]
        new_plans: List[Optional[DeploymentPlan]] = []
        for binding in self.bindings:
            plan = algo(planner.ctx, binding.request, state, planner.objective)
            if plan is None:
                event.failures.append(binding.request.client_node)
                new_plans.append(None)
                continue
            new_plans.append(plan)
            for placement in plan.placements:
                state.add(placement)

        # Compute the new desired placement-key set.
        desired: Set[Tuple] = set()
        for plan in new_plans:
            if plan is not None:
                desired.update(p.key for p in plan.placements)
        for placement in planner.state.placements():
            if self._is_primary(placement):
                desired.add(placement.key)

        # Deploy changed bindings (install new placements, rebind proxies).
        for binding, plan in zip(list(self.bindings), new_plans):
            if plan is None:
                continue
            if self._same_structure(binding.plan, plan):
                binding.plan = plan
                continue
            record = yield from runtime.deployer.execute(plan, bundle)
            binding.proxy.root = record.root_instance
            binding.plan = plan
            event.rebound.append(binding.request.client_node)
            event.installed.extend(i.label for i in record.new_instances)

        # Retire instances no longer referenced by any binding, flushing
        # replica state upstream first (state preservation).
        current_keys = list(bundle.instances.keys())
        for key in current_keys:
            if key in desired:
                continue
            instance = bundle.instances[key]
            flush = getattr(instance, "_sync", None)
            if flush is not None and getattr(instance, "replica_id", None) is not None:
                yield from flush()
            placement = Placement(unit=key[0], node=key[1], factor_values=key[2])
            runtime.deployer.uninstall(placement, bundle)
            event.retired.append(instance.label)

        # Rebuild the planner's deployment state to match reality.
        planner.state = state
        self.events.append(event)
        return event

    # -- helpers ----------------------------------------------------------------
    def _is_primary(self, placement: Placement) -> bool:
        """Placements registered as coherence primaries are permanent."""
        unit = self.bundle.spec.unit(placement.unit)
        return not unit.is_view and unit.is_terminal

    @staticmethod
    def _same_structure(a: DeploymentPlan, b: DeploymentPlan) -> bool:
        return {p.key for p in a.placements} == {p.key for p in b.placements}
