"""Leased registrations and lookup replication (paper §3.2, Jini model).

The paper's lookup service is Jini-like, and Jini registrations are
*leases*: a service that stops renewing disappears from the namespace on
its own, with no administrator in the loop.  This module supplies the
two pieces the reproduction was missing:

* :class:`Lease` / :class:`LeaseConfig` — sim-clock-driven lease state
  with skew-safe renewal (a renewal never *shortens* a lease, so a
  replica whose heartbeat arrives "from the past" after a clock
  adjustment cannot accidentally expire a live service).

* :class:`ReplicatedLookup` — N :class:`~repro.smock.lookup.LookupService`
  replicas kept convergent by registration gossip piggybacked on the
  lease-renewal heartbeats, with client ``lookup()`` failing over
  primary-first to a surviving replica when the bound lookup host is
  dead or partitioned.

Knob discipline: ``SmockRuntime(lookup_replicas=1)`` with leases off
never constructs any of this — the runtime builds the plain singleton
``LookupService`` exactly as before, byte for byte (pinned by
``tests/integration/test_control_plane_identity.py``).

Witness rule: a replica only *reports* a lease expiry (the event that
triggers a replan/rebind round) if its own host stayed up since the
lease was last renewed.  A host that was itself crashed or rebooted
cannot testify that the silence it observed was the service's fault —
the missing renewals are equally explained by its own downtime, so it
purges quietly and waits for the next heartbeat to re-register the
service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from ..network import NetworkError
from ..sim import FaultError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lookup import LookupService, ServiceRegistration
    from .proxy import GenericProxy
    from .runtime import SmockRuntime

__all__ = ["Lease", "LeaseConfig", "ReplicatedLookup"]


@dataclass
class LeaseConfig:
    """Tunables for leased registrations.

    ``duration_ms`` is how long a registration survives without a
    renewal; ``renew_interval_ms`` is the heartbeat period (default:
    a third of the duration, so two consecutive heartbeats can be lost
    before a lease lapses); ``heartbeat_bytes`` is the simulated size
    of one renewal message.
    """

    duration_ms: float = 10_000.0
    renew_interval_ms: Optional[float] = None
    heartbeat_bytes: int = 128

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError(f"duration_ms must be positive, got {self.duration_ms}")
        if self.renew_interval_ms is None:
            self.renew_interval_ms = self.duration_ms / 3.0
        if self.renew_interval_ms <= 0:
            raise ValueError(
                f"renew_interval_ms must be positive, got {self.renew_interval_ms}"
            )

    @classmethod
    def coerce(cls, value: Any) -> Optional["LeaseConfig"]:
        """``False``/``None`` → no leases; ``True`` → defaults; a number
        → that duration; a :class:`LeaseConfig` passes through."""
        if not value:
            return None
        if isinstance(value, LeaseConfig):
            return value
        if value is True:
            return cls()
        if isinstance(value, (int, float)):
            return cls(duration_ms=float(value))
        raise TypeError(f"cannot interpret {value!r} as a LeaseConfig")


@dataclass
class Lease:
    """Lease state for one registration at one lookup replica."""

    granted_at_ms: float
    duration_ms: float
    expires_at_ms: float
    renewed_at_ms: float
    renewals: int = 0
    #: the replica host's crash count at the last renewal; expiry is
    #: only *reported* when the host's count is unchanged (see module
    #: docstring, "witness rule").
    witness_crashes: int = 0

    @classmethod
    def grant(cls, now_ms: float, duration_ms: float, witness_crashes: int = 0) -> "Lease":
        return cls(
            granted_at_ms=now_ms,
            duration_ms=duration_ms,
            expires_at_ms=now_ms + duration_ms,
            renewed_at_ms=now_ms,
            witness_crashes=witness_crashes,
        )

    def renew(self, now_ms: float, witness_crashes: Optional[int] = None) -> None:
        """Extend the lease; skew-safe — never shortens ``expires_at_ms``."""
        self.expires_at_ms = max(self.expires_at_ms, now_ms + self.duration_ms)
        self.renewed_at_ms = max(self.renewed_at_ms, now_ms)
        self.renewals += 1
        if witness_crashes is not None:
            self.witness_crashes = witness_crashes

    def expired(self, now_ms: float) -> bool:
        return now_ms >= self.expires_at_ms

    def remaining_ms(self, now_ms: float) -> float:
        return max(0.0, self.expires_at_ms - now_ms)


class ReplicatedLookup:
    """A lookup *cluster*: per-host replicas, gossip, leases, failover.

    Exposes the same surface the runtime and clients use on the
    singleton :class:`~repro.smock.lookup.LookupService` (``register`` /
    ``find`` / ``lookup`` / ``host_node`` / ``lookups``), so everything
    downstream — ``client_connect``, chaos, benchmarks — works
    unchanged whichever one the knobs selected.
    """

    def __init__(
        self,
        runtime: "SmockRuntime",
        hosts: List[str],
        lease_config: Optional[LeaseConfig] = None,
    ) -> None:
        from .lookup import LookupService  # local import: avoid cycle

        if not hosts:
            raise ValueError("ReplicatedLookup needs at least one host")
        seen: List[str] = []
        for host in hosts:
            if host in seen:
                raise ValueError(f"duplicate lookup host {host!r}")
            runtime.transport.node(host)  # raises KeyError for unknown nodes
            seen.append(host)
        self.runtime = runtime
        self.lease_config = lease_config
        self.replicas: List[LookupService] = [
            LookupService(runtime, host) for host in hosts
        ]
        for replica in self.replicas:
            replica.lease_config = lease_config
        #: compatibility: the cluster "is" its primary replica's host for
        #: code that reads ``runtime.lookup.host_node``.
        self.host_node = hosts[0]
        self.lookups = 0
        self.failovers = 0
        #: ``(sim_ms, client_node, serving_host)`` per successful lookup —
        #: the chaos invariants read this to prove clients rebound
        #: through a *surviving* replica during control-plane outages.
        self.lookup_log: List[Tuple[float, str, str]] = []
        #: set by ``enable_self_healing``: called as ``fn(name, alive)``
        #: when a lease lapses (``False``) or is re-granted after a lapse
        #: (``True``); feeds the replan loop via the network monitor.
        self.on_lease_event: Optional[Callable[[str, bool], None]] = None
        #: registered service → home node its renewals originate from.
        self._homes: Dict[str, str] = {}
        #: authoritative (attributes, proxy_code_bytes) per service, so a
        #: heartbeat can re-create a registration a replica purged while
        #: its host was down.
        self._specs: Dict[str, Tuple[Dict[str, Any], int]] = {}
        self._running = False
        self._proc: Optional[Any] = None

    # -- registration ------------------------------------------------------------
    @property
    def hosts(self) -> List[str]:
        return [replica.host_node for replica in self.replicas]

    @property
    def reregistrations(self) -> int:
        return self.replicas[0].reregistrations

    def register(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        proxy_code_bytes: Optional[int] = None,
        *,
        home_node: Optional[str] = None,
    ) -> "ServiceRegistration":
        """Register on the primary replica, gossip to the others.

        The primary gets full :meth:`LookupService.register` semantics
        (renewal-on-duplicate, the re-registration counter and warning);
        the secondaries absorb silently — gossip must not triple-count
        one application-level registration.
        """
        from .lookup import DEFAULT_PROXY_CODE_BYTES

        if proxy_code_bytes is None:
            proxy_code_bytes = DEFAULT_PROXY_CODE_BYTES
        home = home_node or self._homes.get(name) or self.runtime.server_node
        reg = self.replicas[0].register(
            name, attributes, proxy_code_bytes, home_node=home
        )
        for replica in self.replicas[1:]:
            replica.absorb(
                name, reg.attributes, reg.proxy_code_bytes, home, self.runtime.sim.now
            )
        self._homes[name] = home
        self._specs[name] = (dict(reg.attributes), reg.proxy_code_bytes)
        self._ensure_lease_loop()
        return reg

    def find(self, query: Dict[str, Any]) -> List["ServiceRegistration"]:
        """Query the first replica on a live host (reads are local)."""
        now = self.runtime.sim.now
        for replica in self.replicas:
            if self.runtime.transport.node(replica.host_node).up:
                return replica.find(query, now_ms=now)
        return self.replicas[0].find(query, now_ms=now)

    # -- client path -------------------------------------------------------------
    def lookup(
        self,
        client_node: str,
        name: Optional[str] = None,
        query: Optional[Dict[str, Any]] = None,
    ) -> Generator[Any, Any, "GenericProxy"]:
        """Locate the service, trying replicas primary-first.

        A replica is skipped — and the next one tried — when its host is
        down, the proxy download fails en route (crash or partition), or
        the registration is missing/expired there while a sibling still
        holds it.  Raises the last error when every replica fails.
        """
        from .proxy import GenericProxy  # local import: avoid cycle

        self.lookups += 1
        self.runtime.obs.metrics.inc("smock.lookups")
        transport = self.runtime.transport
        last_error: Optional[BaseException] = None
        for index, replica in enumerate(self.replicas):
            host = replica.host_node
            if not transport.node(host).up:
                last_error = FaultError(f"lookup replica host {host!r} is down")
                continue
            try:
                reg = replica.resolve(name=name, query=query)
            except KeyError as exc:  # LookupError: not registered *here*
                last_error = exc
                continue
            try:
                yield from transport.deliver(host, client_node, reg.proxy_code_bytes)
            except (NetworkError, FaultError) as exc:
                last_error = exc
                continue
            if index > 0:
                self.failovers += 1
                self.runtime.obs.metrics.inc("smock.lookup.failovers")
            self.lookup_log.append((self.runtime.sim.now, client_node, host))
            return GenericProxy(self.runtime, reg, client_node)
        if last_error is not None:
            raise last_error
        from .lookup import LookupError

        raise LookupError(f"no service registered as {name!r}")

    # -- lease machinery ---------------------------------------------------------
    def _ensure_lease_loop(self) -> None:
        if self.lease_config is None or self._running:
            return
        self._running = True
        self._proc = self.runtime.sim.process(self._lease_loop(), name="lookup-leases")

    def stop(self) -> None:
        """Stop renewing/sweeping (lets a bare ``sim.run()`` drain)."""
        self._running = False

    def _lease_loop(self) -> Generator[Any, Any, None]:
        """One heartbeat per interval per (service, replica) pair, then an
        expiry sweep.  Renewals originate from each service's *home* node
        — a crashed home stops renewing and its leases lapse, which is
        the whole point."""
        assert self.lease_config is not None
        sim = self.runtime.sim
        transport = self.runtime.transport
        interval = self.lease_config.renew_interval_ms
        beat = self.lease_config.heartbeat_bytes
        while self._running:
            yield sim.timeout(interval)
            if not self._running:
                return
            for name in sorted(self._homes):
                home = self._homes[name]
                if not transport.node(home).up:
                    continue  # dead services do not renew
                for replica in self.replicas:
                    host = transport.node(replica.host_node)
                    if not host.up:
                        continue
                    try:
                        yield from transport.deliver(home, replica.host_node, beat)
                    except (NetworkError, FaultError):
                        continue  # crashed or partitioned mid-flight
                    attributes, code_bytes = self._specs[name]
                    regrant = replica.absorb(
                        name,
                        attributes,
                        code_bytes,
                        home,
                        sim.now,
                        witness_crashes=host.crashes,
                    )
                    if regrant and self.on_lease_event is not None:
                        # Re-granted after a lapse: the service is back.
                        self.on_lease_event(name, True)
            for replica in self.replicas:
                host = transport.node(replica.host_node)
                if not host.up:
                    continue  # a crashed replica cannot sweep
                for name, witnessed in replica.purge_expired(
                    sim.now, host_crashes=host.crashes
                ):
                    if witnessed and self.on_lease_event is not None:
                        self.on_lease_event(name, False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicatedLookup hosts={self.hosts} "
            f"leases={'on' if self.lease_config else 'off'} "
            f"lookups={self.lookups} failovers={self.failovers}>"
        )
