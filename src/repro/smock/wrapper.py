"""Per-node wrappers for remote component installation (paper §3.2).

"Remote component deployment is simplified by the assumption that all
nodes have a special environment.  Once a component is downloaded on a
node, the node wrapper is responsible for initializing it and connecting
it to other components, according to the required interfaces
specifications."

The wrapper models the three installation phases the paper's Java
runtime performs: code download (the component bundle crosses the
network from the code base), class loading/verification (a fixed
per-component startup cost — Smock "benefits from [Java's] support for
dynamic class loading, verification, and installation"), and instance
initialization + linking.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Type, TYPE_CHECKING

from ..sim import SimNode
from ..spec import ComponentDef
from .component import RuntimeComponent, ServerStub

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SmockRuntime

__all__ = ["NodeWrapper", "DEFAULT_STARTUP_MS"]

#: class-loading + verification + init cost per component instance, ms
DEFAULT_STARTUP_MS = 400.0


class NodeWrapper:
    """The Smock agent running on one node."""

    def __init__(
        self,
        runtime: "SmockRuntime",
        node: SimNode,
        startup_ms: float = DEFAULT_STARTUP_MS,
    ) -> None:
        self.runtime = runtime
        self.node = node
        self.startup_ms = startup_ms
        self.installed: Dict[str, RuntimeComponent] = {}
        self.installs = 0
        self.bytes_downloaded = 0

    def install(
        self,
        unit: ComponentDef,
        component_cls: Type[RuntimeComponent],
        factor_values: Dict[str, Any],
        instance_id: str,
        code_from: Optional[str] = None,
    ) -> Generator[Any, Any, RuntimeComponent]:
        """Process generator: download, verify, initialize one component.

        ``code_from`` names the node holding the component code base
        (the generic server's host); ``None`` skips the download (code
        already cached locally, e.g. for pre-installed primaries).
        """
        if code_from is not None and code_from != self.node.name:
            size = unit.behaviors.code_size_bytes
            yield from self.runtime.transport.deliver(code_from, self.node.name, size)
            self.bytes_downloaded += size
        # Class loading, bytecode verification, constructor.
        yield from self.node.execute(self.startup_ms * self.node.cpu_capacity / 1e3)
        instance = component_cls(
            runtime=self.runtime,
            unit=unit,
            node=self.node,
            factor_values=factor_values,
            instance_id=instance_id,
        )
        self.installed[instance_id] = instance
        self.node.installed[instance_id] = instance
        self.installs += 1
        instance.on_install()
        return instance

    def connect(
        self, instance: RuntimeComponent, interface: str, server: RuntimeComponent
    ) -> ServerStub:
        """Bind one required interface of an installed instance."""
        stub = ServerStub(self.runtime, interface, self.node.name, server)
        instance.bind_server(interface, stub)
        return stub

    def uninstall(self, instance_id: str) -> None:
        self.installed.pop(instance_id, None)
        self.node.installed.pop(instance_id, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NodeWrapper {self.node.name} installed={len(self.installed)}>"
