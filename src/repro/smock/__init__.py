"""The Smock run-time system (paper §3.2): generic proxy/server, node
wrappers, deployment execution, and the runtime facade."""

from .bundle import ServiceBundle
from .component import ForwardingComponent, RuntimeComponent, ServerStub
from .deployment import Deployer, DeploymentError, DeploymentRecord
from .leases import Lease, LeaseConfig, ReplicatedLookup
from .lookup import LookupError, LookupService, ServiceRegistration
from .messages import RequestError, ServiceRequest, ServiceResponse
from .overload import (
    CircuitBreaker,
    OverloadConfig,
    OverloadManager,
    OverloadStats,
    TokenBucket,
)
from .proxy import BindRecord, GenericProxy, RetryPolicy, ServiceProxy
from .runtime import SmockRuntime
from .server import AccessRecord, GenericServer
from .transport import RuntimeTransport
from .wrapper import NodeWrapper

__all__ = [
    "SmockRuntime",
    "ServiceBundle",
    "RuntimeComponent",
    "ForwardingComponent",
    "ServerStub",
    "ServiceRequest",
    "ServiceResponse",
    "RequestError",
    "LookupService",
    "LookupError",
    "ServiceRegistration",
    "Lease",
    "LeaseConfig",
    "ReplicatedLookup",
    "GenericProxy",
    "ServiceProxy",
    "BindRecord",
    "RetryPolicy",
    "GenericServer",
    "AccessRecord",
    "Deployer",
    "DeploymentRecord",
    "DeploymentError",
    "NodeWrapper",
    "RuntimeTransport",
    "OverloadConfig",
    "OverloadManager",
    "OverloadStats",
    "TokenBucket",
    "CircuitBreaker",
]
