"""Overload protection: admission control, throttling, circuit breaking.

The open-loop load layer (:mod:`repro.load`) can offer more work than a
deployment can serve; without protection the runtime queues forever —
latencies blow past client timeouts, retries amplify the offered load,
and goodput collapses even though the servers are running flat out on
work nobody is waiting for anymore.  This module is the server-side
counterweight, three mechanisms behind one runtime knob
(``SmockRuntime(overload_protection=...)``):

- **Admission control** (queue-based load leveling): every component
  serve checks its host node's CPU accept queue against a bound *before*
  charging CPU.  Past the bound the request is shed with a cheap
  retryable failure carrying ``retry_after_ms``, so the queue — and
  therefore served latency — stays bounded while excess demand is
  deferred instead of buffered.
- **Per-client token buckets**: each client node's proxy draws a token
  per attempt (initial sends *and* retries), with deterministic lazy
  refill computed from elapsed simulated time — no refill events exist,
  so a disabled runtime is byte-identical.  An empty bucket fails the
  attempt locally with the time-to-next-token as ``retry_after_ms``,
  which caps what any one client (including its retry storm) can offer.
- **Circuit breaker** (closed/open/half-open) per proxy: a rolling
  windowed error/timeout rate trips the breaker open, fast-failing
  requests client-side for a cooldown instead of feeding a struggling
  backend; a half-open probe budget then tests recovery before closing.
  Backpressure responses (shed/throttled, i.e. ``retry_after_ms`` set)
  do *not* count as breaker failures — they are the protection working,
  not the service failing.

Everything is deterministic on the simulated clock: no RNG, no wall
time, no background processes.  ``overload_protection=False`` (the
default) constructs nothing at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import SimNode, Simulator

__all__ = [
    "OverloadConfig",
    "OverloadStats",
    "TokenBucket",
    "CircuitBreaker",
    "OverloadManager",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs of the overload-protection stack.

    The three mechanisms can be disabled individually (``admission`` /
    ``throttle`` / ``breaker``) for bisection; the runtime-level knob
    (``overload_protection=False``) disables all of them with zero
    construction.
    """

    # -- admission control (server side, per node) ---------------------------
    admission: bool = True
    #: shed when the host node's CPU accept queue is at least this deep
    max_queue: int = 32
    #: Retry-After hint attached to shed responses (clients add jitter)
    shed_retry_after_ms: float = 250.0

    # -- per-client token bucket (client side, per client node) --------------
    throttle: bool = True
    bucket_rate_per_s: float = 200.0
    bucket_burst: float = 50.0

    # -- circuit breaker (client side, per proxy) ----------------------------
    breaker: bool = True
    breaker_window_ms: float = 4_000.0
    breaker_buckets: int = 8
    #: trip when failures/requests over the window reaches this fraction
    breaker_failure_threshold: float = 0.5
    #: ... but only once the window holds at least this many requests
    breaker_min_requests: int = 10
    breaker_cooldown_ms: float = 1_000.0
    #: successful trial requests required to close from half-open
    breaker_half_open_max: int = 3

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.bucket_rate_per_s <= 0 or self.bucket_burst <= 0:
            raise ValueError("token bucket rate and burst must be positive")
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ValueError(
                f"breaker_failure_threshold must be in (0, 1], got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_buckets < 1 or self.breaker_half_open_max < 1:
            raise ValueError("breaker_buckets and breaker_half_open_max must be >= 1")


@dataclass
class OverloadStats:
    """Aggregate protection activity (plain ints; metrics are optional)."""

    shed: int = 0
    throttled: int = 0
    breaker_fast_fails: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready counter snapshot (keys match the metric names)."""
        return {
            "shed": self.shed,
            "throttled": self.throttled,
            "breaker_fast_fails": self.breaker_fast_fails,
        }


class TokenBucket:
    """Deterministic token bucket on the simulated clock.

    Refill is *lazy*: tokens owed since the last interaction are
    credited from ``now_ms`` on each call.  No simulator events are
    scheduled, so an idle bucket costs nothing and never perturbs the
    event sequence.
    """

    __slots__ = ("rate_per_s", "burst", "tokens", "_last_ms")

    def __init__(self, rate_per_s: float, burst: float, now_ms: float = 0.0) -> None:
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_ms = float(now_ms)

    def _refill(self, now_ms: float) -> None:
        elapsed = now_ms - self._last_ms
        if elapsed > 0:
            self.tokens = min(
                self.burst, self.tokens + elapsed * self.rate_per_s / 1000.0
            )
            self._last_ms = now_ms

    def try_take(self, now_ms: float, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; False leaves the bucket as-is."""
        self._refill(now_ms)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def wait_ms(self, now_ms: float, n: float = 1.0) -> float:
        """Simulated ms until ``n`` tokens will be available."""
        self._refill(now_ms)
        deficit = n - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate_per_s * 1000.0


class CircuitBreaker:
    """Three-state breaker over a rolling windowed failure rate.

    The window is ``breaker_buckets`` sub-windows of
    ``breaker_window_ms / breaker_buckets`` ms each, advanced lazily on
    the simulated clock — counting a request ages out sub-windows older
    than the full window, so the observed rate always covers (at most)
    the last ``breaker_window_ms``.
    """

    __slots__ = (
        "config", "state", "trips", "fast_fails",
        "_width_ms", "_counts", "_open_until_ms", "_probes", "_successes",
    )

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.state = BREAKER_CLOSED
        self.trips = 0
        self.fast_fails = 0
        self._width_ms = config.breaker_window_ms / config.breaker_buckets
        #: bucket index -> [requests, failures]
        self._counts: Dict[int, list] = {}
        self._open_until_ms = 0.0
        self._probes = 0
        self._successes = 0

    # -- window plumbing -----------------------------------------------------
    def _bucket(self, now_ms: float) -> list:
        idx = int(now_ms / self._width_ms)
        counts = self._counts
        cell = counts.get(idx)
        if cell is None:
            cell = counts[idx] = [0, 0]
            horizon = idx - self.config.breaker_buckets
            for old in [i for i in counts if i <= horizon]:
                del counts[old]
        return cell

    def window_rates(self, now_ms: float) -> Tuple[int, int]:
        """(requests, failures) currently inside the rolling window."""
        horizon = int(now_ms / self._width_ms) - self.config.breaker_buckets
        requests = failures = 0
        for idx, (req, fail) in self._counts.items():
            if idx > horizon:
                requests += req
                failures += fail
        return requests, failures

    # -- protocol ------------------------------------------------------------
    def allow(self, now_ms: float) -> Tuple[bool, float]:
        """May a request go to the wire now?  ``(allowed, retry_after_ms)``."""
        if self.state == BREAKER_CLOSED:
            return True, 0.0
        if self.state == BREAKER_OPEN:
            if now_ms < self._open_until_ms:
                self.fast_fails += 1
                return False, self._open_until_ms - now_ms
            self.state = BREAKER_HALF_OPEN
            self._probes = 0
            self._successes = 0
        # half-open: admit a bounded probe budget, fast-fail the rest
        if self._probes < self.config.breaker_half_open_max:
            self._probes += 1
            return True, 0.0
        self.fast_fails += 1
        return False, self.config.breaker_cooldown_ms

    def record(self, now_ms: float, ok: bool) -> None:
        """Count one finished attempt (``ok=False`` = error or timeout)."""
        if self.state == BREAKER_HALF_OPEN:
            if not ok:
                self._trip(now_ms)
            else:
                self._successes += 1
                if self._successes >= self.config.breaker_half_open_max:
                    self._close()
            return
        if self.state == BREAKER_OPEN:
            # a late response from before the trip; the window is gone
            return
        cell = self._bucket(now_ms)
        cell[0] += 1
        if not ok:
            cell[1] += 1
            requests, failures = self.window_rates(now_ms)
            if (
                requests >= self.config.breaker_min_requests
                and failures / requests >= self.config.breaker_failure_threshold
            ):
                self._trip(now_ms)

    def _trip(self, now_ms: float) -> None:
        self.state = BREAKER_OPEN
        self.trips += 1
        self._open_until_ms = now_ms + self.config.breaker_cooldown_ms
        self._counts.clear()

    def _close(self) -> None:
        self.state = BREAKER_CLOSED
        self._counts.clear()


class OverloadManager:
    """Runtime-wide owner of the protection stack.

    Constructed only when ``SmockRuntime(overload_protection=...)`` is
    truthy; ``runtime.overload is None`` is the single check every hot
    path performs when the feature is off.
    """

    def __init__(
        self,
        sim: "Simulator",
        config: Optional[OverloadConfig] = None,
        metrics: Any = None,
    ) -> None:
        self.sim = sim
        self.config = config or OverloadConfig()
        self.stats = OverloadStats()
        self._buckets: Dict[str, TokenBucket] = {}
        self._breakers: list = []
        self._metrics = metrics if metrics is not None and metrics.enabled else None

    # -- factories (called at proxy bind time) -------------------------------
    def bucket(self, client_node: str) -> Optional[TokenBucket]:
        """The (shared) token bucket of one client node, or None when
        throttling is disabled."""
        if not self.config.throttle:
            return None
        bucket = self._buckets.get(client_node)
        if bucket is None:
            bucket = self._buckets[client_node] = TokenBucket(
                self.config.bucket_rate_per_s,
                self.config.bucket_burst,
                now_ms=self.sim.now,
            )
        return bucket

    def breaker(self) -> Optional[CircuitBreaker]:
        """A fresh per-proxy circuit breaker, or None when disabled."""
        if not self.config.breaker:
            return None
        breaker = CircuitBreaker(self.config)
        self._breakers.append(breaker)
        return breaker

    # -- server-side admission ----------------------------------------------
    def admit(self, node: "SimNode") -> Optional[float]:
        """Bounded-accept-queue check, *before* the CPU charge.

        Returns None to admit, or a ``retry_after_ms`` hint when the
        node's run queue is at the bound and the request must be shed.
        """
        if not self.config.admission:
            return None
        if node.cpu.queue_length < self.config.max_queue:
            return None
        self.stats.shed += 1
        if self._metrics is not None:
            self._metrics.inc("overload.shed", node=node.name)
        return self.config.shed_retry_after_ms

    # -- client-side accounting ----------------------------------------------
    def note_throttled(self, client_node: str) -> None:
        """Count one client-side rate-limiter delay (caller still sends)."""
        self.stats.throttled += 1
        if self._metrics is not None:
            self._metrics.inc("overload.throttled", client_node=client_node)

    def note_fast_fail(self, client_node: str) -> None:
        """Count one request rejected locally by an open circuit breaker."""
        self.stats.breaker_fast_fails += 1
        if self._metrics is not None:
            self._metrics.inc("overload.breaker_fast_fails", client_node=client_node)

    @property
    def breaker_trips(self) -> int:
        return sum(b.trips for b in self._breakers)

    def snapshot(self) -> Dict[str, int]:
        """Protection activity summary (for CLI tables and artifacts)."""
        out = self.stats.as_dict()
        out["breaker_trips"] = self.breaker_trips
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OverloadManager shed={self.stats.shed} "
            f"throttled={self.stats.throttled} trips={self.breaker_trips}>"
        )
