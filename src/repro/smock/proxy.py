"""Generic and service-specific proxies (Figure 1).

The client downloads a :class:`GenericProxy` from the lookup service.
On first use the proxy forwards the access request (with credentials) to
the generic server, waits for planning + deployment, then "replaces
itself with a service-specific proxy before returning control to the
requesting application" — afterwards every operation goes straight to
the deployed root component with no framework indirection (which is why
the dynamic scenarios of Figure 7 track their static counterparts).

Robustness: a :class:`RetryPolicy` arms the proxy with per-request
timeouts and bounded retry (exponential backoff + jitter, seeded RNG).
Every attempt of one logical operation carries the same idempotency key
so stateful components deduplicate retries that raced a slow success.
With no policy (the default) the request path is byte-identical to the
original fast path — fault tolerance costs nothing until enabled.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from ..sim.resources import Monitor
from .component import RuntimeComponent, ServerStub
from .lookup import ServiceRegistration
from .messages import ServiceRequest, ServiceResponse
from .server import ACCESS_REQUEST_BYTES, ACCESS_RESPONSE_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SmockRuntime

__all__ = ["GenericProxy", "ServiceProxy", "BindRecord", "RetryPolicy"]

_key_counter = itertools.count(1)


@dataclass
class RetryPolicy:
    """Client-side robustness knobs for one proxy.

    ``timeout_ms`` bounds each attempt (it rescues silently-dropped
    messages, whose delivery generators never return); retries back off
    exponentially from ``backoff_base_ms`` with multiplicative
    ``jitter`` drawn from a seeded RNG, so chaos runs stay reproducible.
    """

    timeout_ms: float = 2000.0
    max_retries: int = 4
    backoff_base_ms: float = 50.0
    backoff_factor: float = 2.0
    backoff_cap_ms: float = 2000.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def backoff_ms(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based)."""
        base = min(
            self.backoff_base_ms * (self.backoff_factor ** (attempt - 1)),
            self.backoff_cap_ms,
        )
        if not self.jitter:
            return base
        return base * (1.0 + self.jitter * self._rng.random())


@dataclass
class BindRecord:
    """One-time binding costs as perceived by this client (§4.2)."""

    lookup_ms: float = 0.0
    access_round_trip_ms: float = 0.0
    planning_ms: float = 0.0
    deployment_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (
            self.lookup_ms
            + self.access_round_trip_ms
            + self.planning_ms
            + self.deployment_ms
        )


class ServiceProxy:
    """Direct binding to the deployed root component."""

    def __init__(
        self,
        runtime: "SmockRuntime",
        client_node: str,
        interface: str,
        root: RuntimeComponent,
        user: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.runtime = runtime
        self.client_node = client_node
        self.interface = interface
        self.root = root
        self.user = user
        self.retry_policy = retry_policy
        self._stub = ServerStub(runtime, interface, client_node, root)
        self.latency = Monitor(f"proxy:{client_node}")
        self.retries = 0
        self.timeouts = 0
        # Fast-path eligibility, resolved once at bind time: with tracing
        # and metrics off and no retry policy, request() skips span and
        # registry plumbing entirely.  Tracer/metrics enablement is fixed
        # for an Observability bundle's lifetime, so this cannot go stale;
        # retry_policy is re-checked per request (tests swap it in place).
        obs = runtime.obs
        self._fast = (
            getattr(runtime, "proxy_fast_path", True)
            and not obs.tracer.enabled
            and not obs.metrics.enabled
        )
        #: per-op histogram handles, resolved on first use (the
        #: engine.Simulator pattern) — only populated when metrics are on.
        self._op_hist: Dict[str, Any] = {}

    def rebind(self, root: RuntimeComponent) -> None:
        """Point this proxy at a new root instance (failover replanning).

        Updates both the recorded root *and* the live stub — a proxy
        whose stub still aims at the dead instance would keep failing
        after a nominally successful replan.
        """
        self.root = root
        self._stub = ServerStub(
            self.runtime, self.interface, self.client_node, root
        )

    def request(
        self,
        op: str,
        payload: Optional[Dict[str, Any]] = None,
        size_bytes: int = 512,
        response_is_error: bool = False,
    ) -> Generator[Any, Any, ServiceResponse]:
        """Process generator: one service operation, end to end."""
        sim = self.runtime.sim
        if self._fast and self.retry_policy is None:
            # Same events in the same order as below — the span is a
            # no-op NULL_SPAN and the metrics call a disabled-registry
            # early return, both skipped here.
            start = sim.now
            req = ServiceRequest(
                op=op, payload=dict(payload or {}), size_bytes=size_bytes,
                user=self.user,
            )
            resp = yield from self._stub.request(req)
            self.latency.observe(sim.now - start)
            return resp
        obs = self.runtime.obs
        start = sim.now
        span = obs.tracer.start_span(
            "request", op=op, client_node=self.client_node
        )
        req = ServiceRequest(
            op=op, payload=dict(payload or {}), size_bytes=size_bytes, user=self.user
        )
        if self.retry_policy is None:
            resp = yield from self._stub.request(req)
        else:
            resp = yield from self._robust_request(req)
        elapsed = sim.now - start
        self.latency.observe(elapsed)
        span.finish(status=None if resp.ok else "error")
        metrics = obs.metrics
        if metrics.enabled:
            hist = self._op_hist.get(op)
            if hist is None:
                # Windowed so the telemetry sampler can rotate per-op
                # p50/p99/p999 into time series; cumulative summaries
                # are unchanged in shape.
                hist = self._op_hist[op] = metrics.windowed_histogram(
                    "smock.request_sim_ms", op=op
                )
            hist.observe(elapsed)
            if not resp.ok:
                metrics.inc("smock.request_errors", op=op)
        return resp

    def _robust_request(
        self, req: ServiceRequest
    ) -> Generator[Any, Any, ServiceResponse]:
        """Timeout + bounded-retry wrapper around one logical operation.

        Each attempt races the RPC against a timeout; a late response
        from an abandoned attempt is discarded (its process keeps
        running but nobody reads the value).  All attempts share one
        idempotency key, so a retry that follows a
        response-lost-after-apply cannot double-apply.
        """
        policy = self.retry_policy
        sim = self.runtime.sim
        metrics = self.runtime.obs.metrics
        req.idempotency_key = f"{self.client_node}:{next(_key_counter)}"
        attempts = policy.max_retries + 1
        resp: ServiceResponse = ServiceResponse.failure("unattempted")
        for attempt in range(1, attempts + 1):
            # Fresh request object per attempt: the stub mutates trace
            # and a re-sent message is a new message on the wire.
            attempt_req = ServiceRequest(
                op=req.op,
                payload=dict(req.payload),
                size_bytes=req.size_bytes,
                user=req.user,
                trace=req.trace,
                idempotency_key=req.idempotency_key,
            )
            rpc = sim.process(
                self._stub.request(attempt_req),
                name=f"rpc:{self.client_node}:{req.op}:{attempt}",
            )
            timeout = sim.timeout(policy.timeout_ms)
            # If the rpc process fails outright (a genuine bug — fault
            # errors are converted to failure responses in the stub),
            # the any_of fails and re-raises here.  A timed-out attempt
            # is simply abandoned: it may still complete, but nobody
            # reads its value.
            yield sim.any_of([rpc, timeout])
            if rpc.triggered:
                resp = rpc.value
                if resp.ok or not resp.retryable:
                    if attempt > 1:
                        metrics.inc(
                            "smock.retries", attempt - 1, op=req.op,
                            outcome="ok" if resp.ok else "failed",
                        )
                    return resp
            else:
                self.timeouts += 1
                metrics.inc("smock.request_timeouts", op=req.op)
                resp = ServiceResponse.failure(
                    f"timeout after {policy.timeout_ms:.0f}ms", retryable=True
                )
            if attempt < attempts:
                self.retries += 1
                yield sim.timeout(policy.backoff_ms(attempt))
        metrics.inc(
            "smock.retries", attempts - 1, op=req.op, outcome="exhausted"
        )
        return resp


class GenericProxy:
    """The proxy downloaded from the lookup service.

    Binds lazily: the first :meth:`request` (or an explicit
    :meth:`bind`) performs Figure 1's steps 3-5 and swaps in the
    service-specific proxy.
    """

    def __init__(
        self,
        runtime: "SmockRuntime",
        registration: ServiceRegistration,
        client_node: str,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.runtime = runtime
        self.registration = registration
        self.client_node = client_node
        self.retry_policy = retry_policy
        self.service_proxy: Optional[ServiceProxy] = None
        self.bind_record: Optional[BindRecord] = None

    @property
    def bound(self) -> bool:
        return self.service_proxy is not None

    def bind(
        self,
        context: Optional[Dict[str, Any]] = None,
        interface: Optional[str] = None,
        request_rate: float = 0.0,
        algorithm: Optional[str] = None,
        parent_span: Any = None,
    ) -> Generator[Any, Any, ServiceProxy]:
        """Process generator: contact the generic server, deploy, swap."""
        runtime = self.runtime
        sim = runtime.sim
        context = dict(context or {})
        bundle = runtime.bundle_for(self.registration.name)
        interface = interface or bundle.default_interface
        server = bundle.server
        span = runtime.obs.tracer.start_span(
            "bind",
            parent=parent_span,
            client_node=self.client_node,
            service=self.registration.name,
            interface=interface,
        )

        record = BindRecord()
        t0 = sim.now
        try:
            # Step 3: request + supporting credentials travel to the server.
            yield from runtime.transport.deliver(
                self.client_node, server.host_node, ACCESS_REQUEST_BYTES
            )
            access = yield from server.handle_access(
                self.client_node,
                context,
                interface,
                request_rate=request_rate,
                algorithm=algorithm,
                parent_span=span,
            )
            # The service-specific proxy (binding info) returns to the client.
            yield from runtime.transport.deliver(
                server.host_node, self.client_node, ACCESS_RESPONSE_BYTES
            )
        except BaseException as exc:
            span.finish(status="error", error=repr(exc))
            raise
        record.access_round_trip_ms = sim.now - t0 - access.total_ms
        record.planning_ms = access.planning_ms
        record.deployment_ms = access.deployment.total_ms
        span.finish(
            planning_ms=record.planning_ms, deployment_ms=record.deployment_ms
        )
        runtime.obs.metrics.observe(
            "smock.bind_sim_ms", sim.now - t0, service=self.registration.name
        )

        self.service_proxy = ServiceProxy(
            runtime,
            self.client_node,
            interface,
            access.deployment.root_instance,
            user=context.get("User"),
            retry_policy=self.retry_policy,
        )
        self.bind_record = record
        runtime.bind_records.append(record)
        return self.service_proxy

    def request(
        self,
        op: str,
        payload: Optional[Dict[str, Any]] = None,
        size_bytes: int = 512,
        context: Optional[Dict[str, Any]] = None,
    ) -> Generator[Any, Any, ServiceResponse]:
        """Process generator: bind on first use, then delegate."""
        if self.service_proxy is None:
            yield from self.bind(context=context)
        assert self.service_proxy is not None
        resp = yield from self.service_proxy.request(op, payload, size_bytes)
        return resp
