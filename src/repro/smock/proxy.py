"""Generic and service-specific proxies (Figure 1).

The client downloads a :class:`GenericProxy` from the lookup service.
On first use the proxy forwards the access request (with credentials) to
the generic server, waits for planning + deployment, then "replaces
itself with a service-specific proxy before returning control to the
requesting application" — afterwards every operation goes straight to
the deployed root component with no framework indirection (which is why
the dynamic scenarios of Figure 7 track their static counterparts).

Robustness: a :class:`RetryPolicy` arms the proxy with per-request
timeouts and bounded retry (exponential backoff + jitter, seeded RNG).
Every attempt of one logical operation carries the same idempotency key
so stateful components deduplicate retries that raced a slow success.
With no policy (the default) the request path is byte-identical to the
original fast path — fault tolerance costs nothing until enabled.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from ..sim.resources import Monitor
from .component import RuntimeComponent, ServerStub
from .lookup import ServiceRegistration
from .messages import ServiceRequest, ServiceResponse
from .server import ACCESS_REQUEST_BYTES, ACCESS_RESPONSE_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SmockRuntime

__all__ = ["GenericProxy", "ServiceProxy", "BindRecord", "RetryPolicy"]

_key_counter = itertools.count(1)


@dataclass
class RetryPolicy:
    """Client-side robustness knobs for one proxy.

    ``timeout_ms`` bounds each attempt (it rescues silently-dropped
    messages, whose delivery generators never return); retries back off
    exponentially from ``backoff_base_ms`` with multiplicative
    ``jitter`` drawn from a seeded RNG, so chaos runs stay reproducible.
    """

    timeout_ms: float = 2000.0
    max_retries: int = 4
    backoff_base_ms: float = 50.0
    backoff_factor: float = 2.0
    backoff_cap_ms: float = 2000.0
    jitter: float = 0.5
    seed: int = 0
    #: respect the server's ``retry_after_ms`` backpressure hint: the
    #: retry delay becomes at least the hint (plus jitter), so a crowd
    #: of shed clients spreads out instead of re-converging on the
    #: still-saturated server at backoff-base speed.
    honor_retry_after: bool = True

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def backoff_ms(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based)."""
        base = min(
            self.backoff_base_ms * (self.backoff_factor ** (attempt - 1)),
            self.backoff_cap_ms,
        )
        if not self.jitter:
            return base
        return base * (1.0 + self.jitter * self._rng.random())

    def retry_delay_ms(self, attempt: int, retry_after_ms: Optional[float]) -> float:
        """Backoff for ``attempt``, floored by a Retry-After hint.

        The hint gets its own jitter draw — a thousand clients shed in
        the same millisecond must not all return exactly
        ``retry_after_ms`` later.  Runs without backpressure hints never
        reach the extra draw, so their RNG streams are unchanged.
        """
        delay = self.backoff_ms(attempt)
        if self.honor_retry_after and retry_after_ms:
            floor = retry_after_ms
            if self.jitter:
                floor *= 1.0 + self.jitter * self._rng.random()
            delay = max(delay, floor)
        return delay


@dataclass
class BindRecord:
    """One-time binding costs as perceived by this client (§4.2)."""

    lookup_ms: float = 0.0
    access_round_trip_ms: float = 0.0
    planning_ms: float = 0.0
    deployment_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (
            self.lookup_ms
            + self.access_round_trip_ms
            + self.planning_ms
            + self.deployment_ms
        )


class ServiceProxy:
    """Direct binding to the deployed root component."""

    def __init__(
        self,
        runtime: "SmockRuntime",
        client_node: str,
        interface: str,
        root: RuntimeComponent,
        user: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.runtime = runtime
        self.client_node = client_node
        self.interface = interface
        self.root = root
        self.user = user
        self.retry_policy = retry_policy
        self._stub = ServerStub(runtime, interface, client_node, root)
        self.latency = Monitor(f"proxy:{client_node}")
        #: logical operations issued (counted once, before any retries);
        #: survives rebinds — the autonomic manager derives per-binding
        #: offered request rates from deltas of this counter
        self.requests = 0
        self.retries = 0
        self.timeouts = 0
        self.throttled = 0
        # Overload protection, resolved once at bind time: the breaker
        # is per proxy, the token bucket is shared per client node, and
        # both stay None (zero hot-path work beyond this attribute)
        # unless the runtime was built with overload_protection on.
        overload = getattr(runtime, "overload", None)
        self._breaker = overload.breaker() if overload is not None else None
        self._bucket = (
            overload.bucket(client_node) if overload is not None else None
        )
        # Fast-path eligibility, resolved once at bind time: with tracing
        # and metrics off, no retry policy, and no overload protection,
        # request() skips span and registry plumbing entirely.
        # Tracer/metrics enablement is fixed for an Observability
        # bundle's lifetime, so this cannot go stale; retry_policy is
        # re-checked per request (tests swap it in place).
        obs = runtime.obs
        self._fast = (
            getattr(runtime, "proxy_fast_path", True)
            and not obs.tracer.enabled
            and not obs.metrics.enabled
            and overload is None
        )
        #: per-op histogram handles, resolved on first use (the
        #: engine.Simulator pattern) — only populated when metrics are on.
        self._op_hist: Dict[str, Any] = {}

    def rebind(self, root: RuntimeComponent) -> None:
        """Point this proxy at a new root instance (failover replanning).

        Updates both the recorded root *and* the live stub — a proxy
        whose stub still aims at the dead instance would keep failing
        after a nominally successful replan.
        """
        self.root = root
        self._stub = ServerStub(
            self.runtime, self.interface, self.client_node, root
        )

    def request(
        self,
        op: str,
        payload: Optional[Dict[str, Any]] = None,
        size_bytes: int = 512,
        response_is_error: bool = False,
        user: Optional[str] = None,
    ) -> Generator[Any, Any, ServiceResponse]:
        """Process generator: one service operation, end to end.

        ``user`` overrides the bind-time identity for this one request —
        open-loop load drivers multiplex many simulated users over one
        bound proxy (binding 100k proxies would swamp the planner, and a
        real frontend pools connections the same way).
        """
        sim = self.runtime.sim
        self.requests += 1
        if self._fast and self.retry_policy is None:
            # Same events in the same order as below — the span is a
            # no-op NULL_SPAN and the metrics call a disabled-registry
            # early return, both skipped here.
            start = sim.now
            req = ServiceRequest(
                op=op, payload=dict(payload or {}), size_bytes=size_bytes,
                user=user if user is not None else self.user,
            )
            resp = yield from self._stub.request(req)
            self.latency.observe(sim.now - start)
            return resp
        obs = self.runtime.obs
        start = sim.now
        span = obs.tracer.start_span(
            "request", op=op, client_node=self.client_node
        )
        req = ServiceRequest(
            op=op, payload=dict(payload or {}), size_bytes=size_bytes,
            user=user if user is not None else self.user,
        )
        if self.retry_policy is not None:
            resp = yield from self._robust_request(req)
        elif self._breaker is not None or self._bucket is not None:
            resp = yield from self._guarded_request(req)
        else:
            resp = yield from self._stub.request(req)
        elapsed = sim.now - start
        self.latency.observe(elapsed)
        span.finish(status=None if resp.ok else "error")
        metrics = obs.metrics
        if metrics.enabled:
            hist = self._op_hist.get(op)
            if hist is None:
                # Windowed so the telemetry sampler can rotate per-op
                # p50/p99/p999 into time series; cumulative summaries
                # are unchanged in shape.
                hist = self._op_hist[op] = metrics.windowed_histogram(
                    "smock.request_sim_ms", op=op
                )
            hist.observe(elapsed)
            if not resp.ok:
                metrics.inc("smock.request_errors", op=op)
        return resp

    def _local_reject(self, req: ServiceRequest) -> Optional[ServiceResponse]:
        """Token-bucket + circuit-breaker gate, applied per attempt.

        Returns a fast local failure (no wire traffic, no simulated
        time) when this attempt may not be sent: the client node's
        bucket is empty — initial sends and retries alike draw a token,
        so a retry storm can never offer more than the bucket rate — or
        this proxy's breaker is open.  None admits the attempt.
        """
        sim = self.runtime.sim
        bucket = self._bucket
        if bucket is not None and not bucket.try_take(sim.now):
            self.throttled += 1
            self.runtime.overload.note_throttled(self.client_node)
            return ServiceResponse.failure(
                f"throttled: {self.client_node} token bucket empty",
                retryable=True,
                retry_after_ms=bucket.wait_ms(sim.now),
            )
        breaker = self._breaker
        if breaker is not None:
            allowed, retry_after = breaker.allow(sim.now)
            if not allowed:
                self.runtime.overload.note_fast_fail(self.client_node)
                return ServiceResponse.failure(
                    f"circuit open: {self.client_node} -> {req.op} fast-failed",
                    retryable=True,
                    retry_after_ms=retry_after,
                )
        return None

    def _record_outcome(self, resp: ServiceResponse) -> None:
        """Feed the breaker one finished attempt.

        Backpressure responses (``retry_after_ms`` set: sheds and
        throttles) and non-retryable application rejections are *not*
        breaker failures — only infrastructure errors and timeouts
        count, per the error/timeout-rate tripping rule.
        """
        if self._breaker is not None:
            failed = (
                not resp.ok
                and resp.retryable
                and resp.retry_after_ms is None
            )
            self._breaker.record(self.runtime.sim.now, not failed)

    def _guarded_request(
        self, req: ServiceRequest
    ) -> Generator[Any, Any, ServiceResponse]:
        """Single-attempt path with overload protection, no retry policy."""
        reject = self._local_reject(req)
        if reject is not None:
            return reject
        resp = yield from self._stub.request(req)
        self._record_outcome(resp)
        return resp

    def _robust_request(
        self, req: ServiceRequest
    ) -> Generator[Any, Any, ServiceResponse]:
        """Timeout + bounded-retry wrapper around one logical operation.

        Each attempt races the RPC against a timeout; a late response
        from an abandoned attempt is discarded (its process keeps
        running but nobody reads the value).  All attempts share one
        idempotency key, so a retry that follows a
        response-lost-after-apply cannot double-apply.

        With overload protection on, every attempt (including the
        first) must clear the client token bucket and circuit breaker
        first; rejected attempts cost no wire traffic, and retry delays
        honor the server's Retry-After backpressure hints.
        """
        policy = self.retry_policy
        sim = self.runtime.sim
        metrics = self.runtime.obs.metrics
        req.idempotency_key = f"{self.client_node}:{next(_key_counter)}"
        attempts = policy.max_retries + 1
        resp: ServiceResponse = ServiceResponse.failure("unattempted")
        for attempt in range(1, attempts + 1):
            reject = self._local_reject(req)
            if reject is not None:
                resp = reject
            else:
                # Fresh request object per attempt: the stub mutates trace
                # and a re-sent message is a new message on the wire.
                attempt_req = ServiceRequest(
                    op=req.op,
                    payload=dict(req.payload),
                    size_bytes=req.size_bytes,
                    user=req.user,
                    trace=req.trace,
                    idempotency_key=req.idempotency_key,
                )
                rpc = sim.process(
                    self._stub.request(attempt_req),
                    name=f"rpc:{self.client_node}:{req.op}:{attempt}",
                )
                timeout = sim.timeout(policy.timeout_ms)
                # If the rpc process fails outright (a genuine bug — fault
                # errors are converted to failure responses in the stub),
                # the any_of fails and re-raises here.  A timed-out attempt
                # is simply abandoned: it may still complete, but nobody
                # reads its value.
                yield sim.any_of([rpc, timeout])
                if rpc.triggered:
                    resp = rpc.value
                    self._record_outcome(resp)
                    if resp.ok or not resp.retryable:
                        if attempt > 1:
                            metrics.inc(
                                "smock.retries", attempt - 1, op=req.op,
                                outcome="ok" if resp.ok else "failed",
                            )
                        return resp
                else:
                    self.timeouts += 1
                    metrics.inc("smock.request_timeouts", op=req.op)
                    if self._breaker is not None:
                        self._breaker.record(sim.now, False)
                    resp = ServiceResponse.failure(
                        f"timeout after {policy.timeout_ms:.0f}ms", retryable=True
                    )
            if attempt < attempts:
                self.retries += 1
                yield sim.timeout(
                    policy.retry_delay_ms(attempt, resp.retry_after_ms)
                )
        metrics.inc(
            "smock.retries", attempts - 1, op=req.op, outcome="exhausted"
        )
        return resp


class GenericProxy:
    """The proxy downloaded from the lookup service.

    Binds lazily: the first :meth:`request` (or an explicit
    :meth:`bind`) performs Figure 1's steps 3-5 and swaps in the
    service-specific proxy.
    """

    def __init__(
        self,
        runtime: "SmockRuntime",
        registration: ServiceRegistration,
        client_node: str,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.runtime = runtime
        self.registration = registration
        self.client_node = client_node
        self.retry_policy = retry_policy
        self.service_proxy: Optional[ServiceProxy] = None
        self.bind_record: Optional[BindRecord] = None

    @property
    def bound(self) -> bool:
        return self.service_proxy is not None

    def bind(
        self,
        context: Optional[Dict[str, Any]] = None,
        interface: Optional[str] = None,
        request_rate: float = 0.0,
        algorithm: Optional[str] = None,
        parent_span: Any = None,
    ) -> Generator[Any, Any, ServiceProxy]:
        """Process generator: contact the generic server, deploy, swap."""
        runtime = self.runtime
        sim = runtime.sim
        context = dict(context or {})
        bundle = runtime.bundle_for(self.registration.name)
        interface = interface or bundle.default_interface
        server = bundle.server
        span = runtime.obs.tracer.start_span(
            "bind",
            parent=parent_span,
            client_node=self.client_node,
            service=self.registration.name,
            interface=interface,
        )

        record = BindRecord()
        t0 = sim.now
        try:
            # Step 3: request + supporting credentials travel to the server.
            yield from runtime.transport.deliver(
                self.client_node, server.host_node, ACCESS_REQUEST_BYTES
            )
            access = yield from server.handle_access(
                self.client_node,
                context,
                interface,
                request_rate=request_rate,
                algorithm=algorithm,
                parent_span=span,
            )
            # The service-specific proxy (binding info) returns to the client.
            yield from runtime.transport.deliver(
                server.host_node, self.client_node, ACCESS_RESPONSE_BYTES
            )
        except BaseException as exc:
            span.finish(status="error", error=repr(exc))
            raise
        record.access_round_trip_ms = sim.now - t0 - access.total_ms
        record.planning_ms = access.planning_ms
        record.deployment_ms = access.deployment.total_ms
        span.finish(
            planning_ms=record.planning_ms, deployment_ms=record.deployment_ms
        )
        runtime.obs.metrics.observe(
            "smock.bind_sim_ms", sim.now - t0, service=self.registration.name
        )

        self.service_proxy = ServiceProxy(
            runtime,
            self.client_node,
            interface,
            access.deployment.root_instance,
            user=context.get("User"),
            retry_policy=self.retry_policy,
        )
        self.bind_record = record
        runtime.bind_records.append(record)
        return self.service_proxy

    def request(
        self,
        op: str,
        payload: Optional[Dict[str, Any]] = None,
        size_bytes: int = 512,
        context: Optional[Dict[str, Any]] = None,
    ) -> Generator[Any, Any, ServiceResponse]:
        """Process generator: bind on first use, then delegate."""
        if self.service_proxy is None:
            yield from self.bind(context=context)
        assert self.service_proxy is not None
        resp = yield from self.service_proxy.request(op, payload, size_bytes)
        return resp
