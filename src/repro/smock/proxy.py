"""Generic and service-specific proxies (Figure 1).

The client downloads a :class:`GenericProxy` from the lookup service.
On first use the proxy forwards the access request (with credentials) to
the generic server, waits for planning + deployment, then "replaces
itself with a service-specific proxy before returning control to the
requesting application" — afterwards every operation goes straight to
the deployed root component with no framework indirection (which is why
the dynamic scenarios of Figure 7 track their static counterparts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from ..sim.resources import Monitor
from .component import RuntimeComponent, ServerStub
from .lookup import ServiceRegistration
from .messages import ServiceRequest, ServiceResponse
from .server import ACCESS_REQUEST_BYTES, ACCESS_RESPONSE_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SmockRuntime

__all__ = ["GenericProxy", "ServiceProxy", "BindRecord"]


@dataclass
class BindRecord:
    """One-time binding costs as perceived by this client (§4.2)."""

    lookup_ms: float = 0.0
    access_round_trip_ms: float = 0.0
    planning_ms: float = 0.0
    deployment_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (
            self.lookup_ms
            + self.access_round_trip_ms
            + self.planning_ms
            + self.deployment_ms
        )


class ServiceProxy:
    """Direct binding to the deployed root component."""

    def __init__(
        self,
        runtime: "SmockRuntime",
        client_node: str,
        interface: str,
        root: RuntimeComponent,
        user: Optional[str] = None,
    ) -> None:
        self.runtime = runtime
        self.client_node = client_node
        self.interface = interface
        self.root = root
        self.user = user
        self._stub = ServerStub(runtime, interface, client_node, root)
        self.latency = Monitor(f"proxy:{client_node}")

    def request(
        self,
        op: str,
        payload: Optional[Dict[str, Any]] = None,
        size_bytes: int = 512,
        response_is_error: bool = False,
    ) -> Generator[Any, Any, ServiceResponse]:
        """Process generator: one service operation, end to end."""
        obs = self.runtime.obs
        sim = self.runtime.sim
        start = sim.now
        span = obs.tracer.start_span(
            "request", op=op, client_node=self.client_node
        )
        req = ServiceRequest(
            op=op, payload=dict(payload or {}), size_bytes=size_bytes, user=self.user
        )
        resp = yield from self._stub.request(req)
        elapsed = sim.now - start
        self.latency.observe(elapsed)
        span.finish(status=None if resp.ok else "error")
        obs.metrics.observe("smock.request_sim_ms", elapsed, op=op)
        return resp


class GenericProxy:
    """The proxy downloaded from the lookup service.

    Binds lazily: the first :meth:`request` (or an explicit
    :meth:`bind`) performs Figure 1's steps 3-5 and swaps in the
    service-specific proxy.
    """

    def __init__(
        self,
        runtime: "SmockRuntime",
        registration: ServiceRegistration,
        client_node: str,
    ) -> None:
        self.runtime = runtime
        self.registration = registration
        self.client_node = client_node
        self.service_proxy: Optional[ServiceProxy] = None
        self.bind_record: Optional[BindRecord] = None

    @property
    def bound(self) -> bool:
        return self.service_proxy is not None

    def bind(
        self,
        context: Optional[Dict[str, Any]] = None,
        interface: Optional[str] = None,
        request_rate: float = 0.0,
        algorithm: Optional[str] = None,
        parent_span: Any = None,
    ) -> Generator[Any, Any, ServiceProxy]:
        """Process generator: contact the generic server, deploy, swap."""
        runtime = self.runtime
        sim = runtime.sim
        context = dict(context or {})
        bundle = runtime.bundle_for(self.registration.name)
        interface = interface or bundle.default_interface
        server = bundle.server
        span = runtime.obs.tracer.start_span(
            "bind",
            parent=parent_span,
            client_node=self.client_node,
            service=self.registration.name,
            interface=interface,
        )

        record = BindRecord()
        t0 = sim.now
        try:
            # Step 3: request + supporting credentials travel to the server.
            yield from runtime.transport.deliver(
                self.client_node, server.host_node, ACCESS_REQUEST_BYTES
            )
            access = yield from server.handle_access(
                self.client_node,
                context,
                interface,
                request_rate=request_rate,
                algorithm=algorithm,
                parent_span=span,
            )
            # The service-specific proxy (binding info) returns to the client.
            yield from runtime.transport.deliver(
                server.host_node, self.client_node, ACCESS_RESPONSE_BYTES
            )
        except BaseException as exc:
            span.finish(status="error", error=repr(exc))
            raise
        record.access_round_trip_ms = sim.now - t0 - access.total_ms
        record.planning_ms = access.planning_ms
        record.deployment_ms = access.deployment.total_ms
        span.finish(
            planning_ms=record.planning_ms, deployment_ms=record.deployment_ms
        )
        runtime.obs.metrics.observe(
            "smock.bind_sim_ms", sim.now - t0, service=self.registration.name
        )

        self.service_proxy = ServiceProxy(
            runtime,
            self.client_node,
            interface,
            access.deployment.root_instance,
            user=context.get("User"),
        )
        self.bind_record = record
        runtime.bind_records.append(record)
        return self.service_proxy

    def request(
        self,
        op: str,
        payload: Optional[Dict[str, Any]] = None,
        size_bytes: int = 512,
        context: Optional[Dict[str, Any]] = None,
    ) -> Generator[Any, Any, ServiceResponse]:
        """Process generator: bind on first use, then delegate."""
        if self.service_proxy is None:
            yield from self.bind(context=context)
        assert self.service_proxy is not None
        resp = yield from self.service_proxy.request(op, payload, size_bytes)
        return resp
